//! A minimal, dependency-free drop-in for the subset of the `proptest` API
//! this workspace's property tests use (the build environment is offline).
//!
//! The real proptest does guided generation and shrinking; this shim does
//! straightforward random sampling: each `proptest!` test body runs for a
//! fixed number of cases with inputs drawn from the declared strategies
//! using a deterministic per-test RNG, so failures are reproducible.
//! `prop_assert*` map onto the standard assertion macros (a failure panics
//! with the generated inputs' values in scope via the assertion message),
//! and `prop_assume!` skips the current case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of random cases each property runs.
pub const NUM_CASES: u32 = 48;

/// Anything that can produce a value for a `proptest!` parameter.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, f64);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeStrategy, Strategy};
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeStrategy,
    }

    /// Vector of values from `element`, with length drawn from `size`
    /// (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeStrategy>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Length specification for [`collection::vec`].
pub enum SizeStrategy {
    /// Exactly this many elements.
    Fixed(usize),
    /// Length drawn uniformly from the half-open range.
    Between(usize, usize),
}

impl SizeStrategy {
    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            Self::Fixed(n) => n,
            Self::Between(lo, hi) => rng.random_range(lo..hi),
        }
    }
}

impl From<usize> for SizeStrategy {
    fn from(n: usize) -> Self {
        Self::Fixed(n)
    }
}

impl From<Range<usize>> for SizeStrategy {
    fn from(r: Range<usize>) -> Self {
        Self::Between(r.start, r.end)
    }
}

/// Deterministic per-test RNG; seeded from the test name so adding tests
/// does not perturb existing ones.
#[must_use]
pub fn case_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`NUM_CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut prop_rng = $crate::case_rng(stringify!($name));
            for _prop_case in 0..$crate::NUM_CASES {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)*
                $body
            }
        }
    )*};
}

/// Asserts inside a property body (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 3u32..17, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_strategies_honor_sizes(
            fixed in collection::vec(0u64..10, 7),
            ranged in collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert!(fixed.iter().all(|&v| v < 10));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
