//! A fixed-size lock-free trace ring for postmortem debugging of the
//! adversarial session paths.
//!
//! The ring records one structured [`TraceEvent`] per traced *stage* of
//! a session-protocol interaction (span id, session id, pipeline stage,
//! raw message-type byte, outcome, stage nanoseconds) into a bounded
//! buffer that writers can never block on and never grow: each write
//! claims a monotonically increasing ticket with one `fetch_add` and
//! publishes into slot `ticket % capacity` under a per-slot seqlock (the
//! sequence is stored odd while a write is in flight, even once the slot
//! is valid). Readers retry torn slots and skip in-flight ones, so a
//! reader concurrent with heavy writing gets a *best-effort consistent*
//! sample — which is exactly the contract a postmortem ring needs; it is
//! debugging telemetry, not accounting (the registry's counters are the
//! accounting path).
//!
//! ## Spans
//!
//! Every message the reactor decodes is assigned a span id, and each
//! tier that touches the message records its own event under that id:
//! [`TraceStage::Decode`] when the reactor slices the envelope off the
//! socket, [`TraceStage::Execute`] when a worker finishes handling it,
//! [`TraceStage::WalAppend`] when the durable store fsyncs the batch it
//! carried, and [`TraceStage::ReplApply`] when a follower re-applies the
//! shipped record (there the span id *is* the leader-assigned record
//! position, so lag is attributable per stage). Filtering one span id
//! out of a `TraceRing::events()` tail therefore reconstructs the
//! decode→absorb→fsync→ack timeline of a single REPORT.
//!
//! The span id crosses tier boundaries without threading a parameter
//! through every backend signature: the executing worker parks it in a
//! thread-local ([`set_current_span`]) and the storage tier reads it
//! back ([`current_span`]) — the absorb/append path runs on the same
//! thread that decoded the job.
//!
//! Tracing is off until [`TraceRing::set_enabled`] turns it on (or the
//! ring is built with [`TraceRing::enabled_with`]), so the disabled cost
//! on the session path is one relaxed load.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How a traced interaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The message was handled and a success reply was written.
    Ok,
    /// The message was rejected (protocol violation, backend error) and
    /// an error reply was written or the session was cut.
    Error,
    /// The peer disconnected (clean BYE or vanished mid-session).
    Disconnect,
}

impl TraceOutcome {
    fn to_u8(self) -> u8 {
        match self {
            Self::Ok => 0,
            Self::Error => 1,
            Self::Disconnect => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Ok,
            1 => Self::Error,
            _ => Self::Disconnect,
        }
    }
}

/// Which pipeline stage recorded the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// The reactor sliced the message's envelope off the socket and
    /// assigned the span id (`ns` is 0 — an arrival marker, not a
    /// duration).
    Decode,
    /// A worker finished handling the message (`ns` covers decode of the
    /// body through reply construction, including any storage work the
    /// nested stages break out).
    Execute,
    /// The durable store appended (and per its fsync policy, synced) the
    /// WAL record the message produced (`ns` is the append+fsync time;
    /// `session` is 0 — the storage tier correlates by span id).
    WalAppend,
    /// A follower applied a replicated record; the span id is the
    /// leader-assigned record position.
    ReplApply,
}

impl TraceStage {
    fn to_u8(self) -> u8 {
        match self {
            Self::Decode => 0,
            Self::Execute => 1,
            Self::WalAppend => 2,
            Self::ReplApply => 3,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Decode,
            2 => Self::WalAppend,
            3 => Self::ReplApply,
            _ => Self::Execute,
        }
    }
}

/// One structured session event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Correlates the stages of one message's journey: assigned by the
    /// reactor at decode (monotone per server), or the leader-assigned
    /// record position for [`TraceStage::ReplApply`] spans. 0 for events
    /// with no message context (e.g. a session teardown).
    pub span: u64,
    /// Server-assigned session id (0 for storage-tier stages, which
    /// correlate by span instead).
    pub session: u64,
    /// Which pipeline stage recorded this event.
    pub stage: TraceStage,
    /// Raw message-type byte (`MSG_*` from [`crate::net::proto`]; 0 for
    /// events with no parsed type, e.g. a peer that sent garbage).
    pub msg_type: u8,
    /// How the interaction ended.
    pub outcome: TraceOutcome,
    /// Stage wall time in nanoseconds (0 for arrival markers).
    pub ns: u64,
}

thread_local! {
    /// The span id of the message the current thread is executing, if
    /// any — parked by the worker, read by the storage tier.
    static CURRENT_SPAN: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Parks (or clears) the span id of the message the current thread is
/// handling, so tiers deeper in the call stack can tag their trace
/// events without a parameter threaded through every signature.
pub fn set_current_span(span: Option<u64>) {
    CURRENT_SPAN.with(|s| s.set(span));
}

/// The span id parked by [`set_current_span`], if any.
#[must_use]
pub fn current_span() -> Option<u64> {
    CURRENT_SPAN.with(Cell::get)
}

// One ring slot. `seq` encodes the publication state: 0 = never written,
// `2t + 1` = ticket t's write in flight, `2t + 2` = ticket t published.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    span: AtomicU64,
    session: AtomicU64,
    // msg_type | outcome << 8 | stage << 16, packed so a slot stays a
    // handful of atomics.
    meta: AtomicU64,
    ns: AtomicU64,
}

/// The fixed-size lock-free event ring. See the [module docs](self) for
/// the concurrency contract.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    enabled: AtomicBool,
}

impl TraceRing {
    /// A ring holding the last `capacity` events (clamped to ≥ 1),
    /// disabled until [`TraceRing::set_enabled`].
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    span: AtomicU64::new(0),
                    session: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    ns: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            enabled: AtomicBool::new(false),
        }
    }

    /// A ring that starts enabled.
    #[must_use]
    pub fn enabled_with(capacity: usize) -> Self {
        let ring = Self::new(capacity);
        ring.set_enabled(true);
        ring
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether recording is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Total events ever recorded (monotone; events beyond capacity have
    /// overwritten the oldest slots).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records one event (no-op while disabled). Never blocks: one
    /// `fetch_add` claims a ticket, then the slot is published under its
    /// seqlock.
    pub fn record(&self, event: TraceEvent) {
        if !self.enabled() {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Mark in flight (odd), publish fields, then mark valid (even).
        // Two writers lapping each other on one slot leave it with the
        // higher ticket's data or a seq readers detect as torn — either
        // way readers never observe a half-written event as valid.
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.span.store(event.span, Ordering::Relaxed);
        slot.session.store(event.session, Ordering::Relaxed);
        slot.meta.store(
            u64::from(event.msg_type)
                | u64::from(event.outcome.to_u8()) << 8
                | u64::from(event.stage.to_u8()) << 16,
            Ordering::Relaxed,
        );
        slot.ns.store(event.ns, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Best-effort snapshot of the ring: the surviving events sorted
    /// oldest → newest, each tagged with its ticket (the monotone event
    /// number). Slots being overwritten concurrently are skipped.
    #[must_use]
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // Read seq, fields, seq again; keep only stable even reads.
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let span = slot.span.load(Ordering::Relaxed);
            let session = slot.session.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let ns = slot.ns.load(Ordering::Relaxed);
            let after = slot.seq.load(Ordering::Acquire);
            if after != before {
                continue;
            }
            out.push((
                (before - 2) / 2,
                TraceEvent {
                    span,
                    session,
                    stage: TraceStage::from_u8(((meta >> 16) & 0xff) as u8),
                    msg_type: (meta & 0xff) as u8,
                    outcome: TraceOutcome::from_u8(((meta >> 8) & 0xff) as u8),
                    ns,
                },
            ));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(session: u64, ns: u64) -> TraceEvent {
        TraceEvent {
            span: session,
            session,
            stage: TraceStage::Execute,
            msg_type: 0x03,
            outcome: TraceOutcome::Ok,
            ns,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = TraceRing::new(4);
        ring.record(ev(1, 10));
        assert_eq!(ring.recorded(), 0);
        assert!(ring.events().is_empty());
        ring.set_enabled(true);
        ring.record(ev(1, 10));
        assert_eq!(ring.recorded(), 1);
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn ring_keeps_the_newest_capacity_events_in_order() {
        let ring = TraceRing::enabled_with(4);
        for i in 0..10u64 {
            ring.record(ev(i, i * 100));
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        let tickets: Vec<u64> = events.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, vec![6, 7, 8, 9]);
        for (ticket, event) in events {
            assert_eq!(event.session, ticket);
            assert_eq!(event.ns, ticket * 100);
        }
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let ring = std::sync::Arc::new(TraceRing::enabled_with(8));
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        // session encodes writer, ns and span encode the
                        // writer too — a torn slot would mix them.
                        ring.record(ev(w * 1000, w * 1000));
                        let _ = i;
                    }
                });
            }
            for _ in 0..50 {
                for (_, event) in ring.events() {
                    assert_eq!(event.session, event.ns, "torn slot observed");
                    assert_eq!(event.span, event.ns, "torn slot observed");
                }
            }
        });
        assert_eq!(ring.recorded(), 2000);
    }

    #[test]
    fn stage_and_span_roundtrip_through_a_slot() {
        let ring = TraceRing::enabled_with(8);
        for (i, stage) in [
            TraceStage::Decode,
            TraceStage::Execute,
            TraceStage::WalAppend,
            TraceStage::ReplApply,
        ]
        .into_iter()
        .enumerate()
        {
            ring.record(TraceEvent {
                span: 700 + i as u64,
                session: 9,
                stage,
                msg_type: 0x02,
                outcome: TraceOutcome::Ok,
                ns: 5,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].1.stage, TraceStage::Decode);
        assert_eq!(events[2].1.stage, TraceStage::WalAppend);
        assert_eq!(events[3].1.stage, TraceStage::ReplApply);
        assert_eq!(events[3].1.span, 703);
    }

    #[test]
    fn current_span_is_thread_local() {
        assert_eq!(current_span(), None);
        set_current_span(Some(41));
        assert_eq!(current_span(), Some(41));
        std::thread::spawn(|| assert_eq!(current_span(), None))
            .join()
            .unwrap();
        set_current_span(None);
        assert_eq!(current_span(), None);
    }
}
