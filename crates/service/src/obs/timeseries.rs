//! The metrics time-series ring: a background sampler freezes whole
//! [`RegistrySnapshot`]s on a fixed interval into a bounded ring, and
//! because snapshots support exact [`RegistrySnapshot::subtract`], any
//! two adjacent samples yield a **lossless** per-interval delta — "what
//! was the ingest rate over the last minute" is integer arithmetic over
//! frozen integer statistics, not an approximation.
//!
//! The ring is the backing store for the `METRICS_RANGE` session message
//! and the ops endpoint's `GET /metrics/range`; both serve
//! [`MetricsRange`] — the newest N samples plus the sampling interval —
//! through the same total, never-panic codec discipline as every other
//! wire surface in the crate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::error::WireError;
use crate::obs::expose::RegistrySnapshot;
use crate::obs::instruments::OpsInstruments;
use crate::obs::registry::MetricsRegistry;
use crate::wire::{put_varint, Reader};

/// Cap on samples in one wire [`MetricsRange`] — bounds hostile headers
/// and the reply size (each sample embeds a full snapshot).
pub const MAX_RANGE_SAMPLES: usize = 1024;

/// One frozen sample: a whole registry snapshot stamped with its
/// monotone sequence number and wall-clock milliseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSample {
    /// Monotone per-ring sequence number (0, 1, 2, … across the ring's
    /// lifetime; samples beyond capacity evict the oldest).
    pub seq: u64,
    /// Wall-clock sample time, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// The frozen registry.
    pub snapshot: RegistrySnapshot,
}

impl TimeSample {
    /// Appends the canonical wire encoding
    /// (`seq:varint at_unix_ms:varint snapshot`) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.seq);
        put_varint(out, self.at_unix_ms);
        self.snapshot.encode_into(out);
    }

    /// Decodes one sample from the reader's position, leaving the reader
    /// past it. Total: malformed input is a typed error, never a panic.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed input.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = r.varint()?;
        let at_unix_ms = r.varint()?;
        let snapshot = RegistrySnapshot::decode_from(r)?;
        Ok(Self {
            seq,
            at_unix_ms,
            snapshot,
        })
    }
}

/// The newest N samples plus the ring's sampling interval — the payload
/// of `METRICS_RANGE_OK` and `GET /metrics/range`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRange {
    /// The sampler's fixed interval in milliseconds.
    pub interval_ms: u64,
    /// Samples oldest → newest.
    pub samples: Vec<TimeSample>,
}

impl MetricsRange {
    /// Appends the canonical wire encoding
    /// (`interval_ms:varint n:varint sample × n`) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.interval_ms);
        put_varint(out, self.samples.len().min(MAX_RANGE_SAMPLES) as u64);
        for sample in self.samples.iter().take(MAX_RANGE_SAMPLES) {
            sample.encode_into(out);
        }
    }

    /// Decodes one range from the reader's position. Total: the sample
    /// count is capped before allocation and every nested snapshot
    /// decode is itself total.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed input.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let interval_ms = r.varint()?;
        let n = r.varint()?;
        if n > MAX_RANGE_SAMPLES as u64 {
            return Err(WireError::SizeOverCap(n));
        }
        let n = n as usize;
        if r.remaining() < n.saturating_mul(3) {
            return Err(WireError::Truncated);
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(TimeSample::decode_from(r)?);
        }
        Ok(Self {
            interval_ms,
            samples,
        })
    }

    /// Exact per-interval deltas between adjacent samples: element `i`
    /// is `samples[i+1] − samples[i]` (counters and histograms subtract
    /// exactly; gauges are levels and pass through at the newer sample's
    /// value), stamped with the newer sample's seq and time. Pairs whose
    /// subtraction fails (samples from different registries) are
    /// skipped — between samples of one live registry the counters are
    /// monotone, so nothing is skipped in practice.
    #[must_use]
    pub fn deltas(&self) -> Vec<TimeSample> {
        self.samples
            .windows(2)
            .filter_map(|pair| {
                let mut delta = pair[1].snapshot.clone();
                delta.subtract(&pair[0].snapshot).ok()?;
                Some(TimeSample {
                    seq: pair[1].seq,
                    at_unix_ms: pair[1].at_unix_ms,
                    snapshot: delta,
                })
            })
            .collect()
    }

    /// The `GET /metrics/range` body (and the CI ring-dump artifact): a
    /// JSON object with the interval and one flat-JSON metrics object
    /// per sample.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n\"interval_ms\": {},\n\"samples\": [",
            self.interval_ms
        );
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"seq\": {}, \"at_unix_ms\": {}, \"metrics\": {}}}",
                sample.seq,
                sample.at_unix_ms,
                sample.snapshot.render_json().trim_end()
            );
        }
        out.push_str("\n]\n}\n");
        out
    }
}

#[derive(Debug, Default)]
struct RingInner {
    next_seq: u64,
    samples: VecDeque<TimeSample>,
}

/// The bounded sample ring. Push is a mutex-guarded append-and-evict;
/// reads clone out the newest N samples — contention is one sampler
/// thread against occasional probes, not a hot path.
#[derive(Debug)]
pub struct TimeSeriesRing {
    capacity: usize,
    interval: Duration,
    inner: Mutex<RingInner>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

impl TimeSeriesRing {
    /// A ring holding the last `capacity` samples (clamped to ≥ 2, so a
    /// delta always has a pair) taken every `interval`.
    #[must_use]
    pub fn new(capacity: usize, interval: Duration) -> Self {
        Self {
            capacity: capacity.max(2),
            interval,
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sampling interval the ring was built for.
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.inner).samples.len()
    }

    /// Whether the ring holds no samples yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes `snapshot` into the ring stamped with the current wall
    /// clock, evicting the oldest sample at capacity. Returns the
    /// sample's sequence number.
    pub fn push(&self, snapshot: RegistrySnapshot) -> u64 {
        self.push_at(snapshot, unix_ms())
    }

    /// [`TimeSeriesRing::push`] with an explicit timestamp (tests pin
    /// time; the sampler passes the wall clock).
    pub fn push_at(&self, snapshot: RegistrySnapshot, at_unix_ms: u64) -> u64 {
        let mut inner = lock(&self.inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.samples.len() == self.capacity {
            inner.samples.pop_front();
        }
        inner.samples.push_back(TimeSample {
            seq,
            at_unix_ms,
            snapshot,
        });
        seq
    }

    /// The newest `max` samples (oldest → newest) plus the interval —
    /// the `METRICS_RANGE` reply. `max` is clamped to
    /// [`MAX_RANGE_SAMPLES`].
    #[must_use]
    pub fn range(&self, max: usize) -> MetricsRange {
        let max = max.min(MAX_RANGE_SAMPLES);
        let inner = lock(&self.inner);
        let skip = inner.samples.len().saturating_sub(max);
        MetricsRange {
            interval_ms: self.interval.as_millis() as u64,
            samples: inner.samples.iter().skip(skip).cloned().collect(),
        }
    }
}

/// The background sampler: one named thread freezing `registry` into
/// `ring` every [`TimeSeriesRing::interval`]. Stops (and joins) on drop
/// or [`Sampler::stop`]; the stop flag is polled every ≤ 50ms so
/// shutdown never waits a full interval.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampler thread. It samples once immediately (so the
    /// ring is never empty while the server runs), then on every
    /// interval tick.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the thread cannot be spawned.
    pub fn start(
        registry: Arc<MetricsRegistry>,
        ring: Arc<TimeSeriesRing>,
        obs: OpsInstruments,
    ) -> Result<Self, std::io::Error> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ldp-obs-sampler".into())
            .spawn(move || {
                let interval = ring.interval();
                loop {
                    ring.push(registry.snapshot());
                    obs.ts_samples.incr();
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if thread_stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let nap = (interval - slept).min(Duration::from_millis(50));
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                }
            })?;
        Ok(Self {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops and joins the sampler thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_at(count: u64) -> RegistrySnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("t.frames").add(count);
        registry.gauge("t.level").set(count * 10);
        registry.snapshot()
    }

    #[test]
    fn ring_bounds_and_orders_samples() {
        let ring = TimeSeriesRing::new(3, Duration::from_secs(1));
        assert!(ring.is_empty());
        for i in 0..5u64 {
            assert_eq!(ring.push_at(registry_at(i), 1000 + i), i);
        }
        assert_eq!(ring.len(), 3);
        let range = ring.range(10);
        assert_eq!(range.interval_ms, 1000);
        let seqs: Vec<u64> = range.samples.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, order kept");
        // max clamps the window to the newest samples.
        let two = ring.range(2);
        assert_eq!(two.samples[0].seq, 3);
    }

    #[test]
    fn deltas_are_exact_and_gauges_stay_levels() {
        let ring = TimeSeriesRing::new(8, Duration::from_secs(1));
        for i in 0..4u64 {
            // Counter totals 0, 10, 30, 60 → deltas 10, 20, 30.
            ring.push_at(registry_at(i * (i + 1) * 5), i);
        }
        let deltas = ring.range(10).deltas();
        assert_eq!(deltas.len(), 3);
        for (i, delta) in deltas.iter().enumerate() {
            let newer = i as u64 + 1; // index of the newer sample in the pair
            assert_eq!(delta.snapshot.counter("t.frames"), Some(newer * 10));
            // The gauge is the newer sample's level, untouched by subtract.
            assert_eq!(
                delta.snapshot.gauge("t.level"),
                Some(newer * (newer + 1) * 5 * 10)
            );
        }
    }

    #[test]
    fn range_codec_roundtrips_and_rejects_soup() {
        let ring = TimeSeriesRing::new(4, Duration::from_millis(250));
        for i in 0..3u64 {
            ring.push_at(registry_at(i * 7), 500 + i * 250);
        }
        let range = ring.range(MAX_RANGE_SAMPLES);
        let mut bytes = Vec::new();
        range.encode_into(&mut bytes);
        let mut r = Reader::new(&bytes);
        let decoded = MetricsRange::decode_from(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(decoded, range);
        let mut re = Vec::new();
        decoded.encode_into(&mut re);
        assert_eq!(re, bytes, "re-encode differs");
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            match MetricsRange::decode_from(&mut r) {
                Err(_) => {}
                // A cut can land on a whole-sample boundary; the outer
                // message decoder rejects the truncation by its own
                // expect_consumed. Here totality (no panic) is the claim.
                Ok(prefix) => assert!(prefix.samples.len() <= range.samples.len()),
            }
        }
        // Over-cap sample count is refused before allocation.
        let mut hostile = Vec::new();
        put_varint(&mut hostile, 1000);
        put_varint(&mut hostile, u64::MAX);
        let mut r = Reader::new(&hostile);
        assert!(matches!(
            MetricsRange::decode_from(&mut r),
            Err(WireError::SizeOverCap(_))
        ));
    }

    #[test]
    fn sampler_fills_the_ring_and_stops_promptly() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = OpsInstruments::register(&registry);
        let ring = Arc::new(TimeSeriesRing::new(16, Duration::from_millis(10)));
        let mut sampler =
            Sampler::start(Arc::clone(&registry), Arc::clone(&ring), obs.clone()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ring.len() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ring.len() >= 3, "sampler never filled the ring");
        sampler.stop();
        let frozen = ring.len();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(ring.len(), frozen, "sampler kept running after stop");
        assert!(obs.ts_samples.get() >= 3);
        // The sampler's own samples carry the ops counter: exact algebra
        // applies to the ops plane's metrics about itself too.
        let range = ring.range(MAX_RANGE_SAMPLES);
        assert!(range.samples.len() >= 3);
        assert!(!range.render_json().is_empty());
    }

    #[test]
    fn json_dump_names_every_sample() {
        let ring = TimeSeriesRing::new(4, Duration::from_secs(2));
        ring.push_at(registry_at(5), 77);
        let json = ring.range(4).render_json();
        assert!(json.contains("\"interval_ms\": 2000"));
        assert!(json.contains("\"at_unix_ms\": 77"));
        assert!(json.contains("\"t.frames\": 5"));
    }
}
