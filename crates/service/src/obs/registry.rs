//! The metrics registry and its instruments: lock-free counters, gauges,
//! and log-bucketed latency histograms.
//!
//! The design mirrors the aggregation pipeline itself. Every mechanism in
//! this codebase is an *exact mergeable integer statistic* — shards absorb
//! independently and `merge` reproduces the single-writer state bit for
//! bit. Telemetry obeys the same algebra: instruments are plain `u64`
//! atomics updated with relaxed `fetch_add` (no lock anywhere on an
//! update path), and their frozen values ([`HistoSnapshot`],
//! [`super::RegistrySnapshot`]) carry exact `merge`/`subtract` operations
//! with checked arithmetic, so per-shard and per-worker instruments fan in
//! losslessly — the differential tests prove merged per-shard histograms
//! bit-identical to a single-writer run, exactly like `MergeableServer`.
//!
//! * [`Counter`] — monotone event count (`add`/`incr`).
//! * [`Gauge`] — last-written or high-water level (`set`/`record_max`).
//!   Gauges use `SeqCst` ordering so a flag-like gauge (the durable
//!   layer's wedge indicator) keeps fail-stop semantics.
//! * [`Histo`] — a latency/size histogram over power-of-two buckets:
//!   bucket 0 holds the value 0, bucket `i ≥ 1` holds `2^(i-1) ..= 2^i - 1`.
//!   Recording is three relaxed `fetch_add`s; there is no floating point
//!   anywhere, so histogram state is exact integer statistics like
//!   everything else in the pipeline.
//!
//! Registration (name → instrument) takes a mutex, but only at
//! construction time: components resolve their instruments once and hold
//! the `Arc`s, so the hot paths never touch the registry again.
//!
//! Like `LdpService::num_reports`, reading an instrument while writers
//! are active is racy by nature (a histogram's `count` can momentarily
//! disagree with its bucket sum mid-record) and exact when quiesced — the
//! multi-writer exactness tests pin the quiesced totals to the acked
//! frame counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::obs::expose::{MetricEntry, MetricValue, RegistrySnapshot};

/// Number of histogram buckets: bucket 0 for the value 0, buckets
/// `1 ..= 64` for the 64 power-of-two magnitude classes of a `u64`.
pub const HISTO_BUCKETS: usize = 65;

/// Errors of the exact telemetry algebra (merge/subtract on frozen
/// instrument values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsError {
    /// A subtraction would drive a count below zero: the subtrahend was
    /// never merged into this value. Mirrors
    /// `OracleError::SubtractUnderflow` one layer up — the operation is
    /// rejected and the value is unchanged.
    Underflow,
    /// A merge would overflow a `u64` count. Unreachable for real
    /// telemetry (2^64 events), but the algebra stays total rather than
    /// wrapping silently.
    Overflow,
    /// Two metrics under one name have different kinds (a counter merged
    /// into a histogram) — the operands were never snapshots of one
    /// registry layout.
    KindMismatch,
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Underflow => write!(f, "metric subtraction underflow"),
            Self::Overflow => write!(f, "metric merge overflow"),
            Self::KindMismatch => write!(f, "metric kind mismatch under one name"),
        }
    }
}

impl std::error::Error for ObsError {}

// --- counter -----------------------------------------------------------

/// A monotone event counter (lock-free, relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total (racy while writers are active, exact quiesced).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// --- gauge -------------------------------------------------------------

/// A last-written / high-water level. Uses `SeqCst` ordering so a gauge
/// can serve as a cross-thread flag (the durable layer's wedge indicator
/// must be observed by every ingest path immediately after it is set).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst);
    }

    /// Raises the level to `v` if `v` is higher (high-water tracking).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::SeqCst);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

// --- histogram ---------------------------------------------------------

/// A live latency/size histogram over power-of-two buckets (lock-free:
/// one recording is three relaxed `fetch_add`s).
#[derive(Debug)]
pub struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histo {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a value lands in: 0 for 0, otherwise the value's bit
    /// length (`1 ..= 64`), so bucket `i` spans `2^(i-1) ..= 2^i - 1`.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive value range `[lo, hi]` of bucket `i` (clamped to the
    /// last bucket for out-of-range `i`).
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i.min(HISTO_BUCKETS - 1) {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturation instead of wrap-around is unobtainable from a single
        // atomic; a wrapped sum is detectable against count × bucket
        // bounds and irrelevant for realistic totals (< 2^64 ns ≈ 584
        // years).
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since `started` (saturating at
    /// `u64::MAX` — ~584 years).
    pub fn record_elapsed(&self, started: Instant) {
        self.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    /// Freezes the current state. Racy while writers are active (the
    /// count can momentarily disagree with the bucket sum mid-record),
    /// exact when quiesced.
    #[must_use]
    pub fn snapshot(&self) -> HistoSnapshot {
        HistoSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: exact integer bucket counts with the same
/// merge/subtract discipline as the mechanism servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistoSnapshot {
    /// An empty snapshot (the identity of `merge`).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Rebuilds a snapshot from raw parts (the exposition codec's
    /// constructor).
    #[must_use]
    pub fn from_parts(buckets: [u64; HISTO_BUCKETS], count: u64, sum: u64) -> Self {
        Self {
            buckets,
            count,
            sum,
        }
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTO_BUCKETS] {
        &self.buckets
    }

    /// Count in bucket `i` (0 for out-of-range `i`).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `phi`-quantile: the inclusive upper edge of
    /// the first bucket at which the cumulative count reaches
    /// `ceil(phi × count)`. Returns 0 when the histogram is empty; `phi`
    /// is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile_bound(&self, phi: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let phi = phi.clamp(0.0, 1.0);
        // ceil without floating-point rounding surprises at the edges.
        let target = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return Histo::bucket_bounds(i).1;
            }
        }
        u64::MAX
    }

    /// Merges `other` in: per-bucket, count, and sum addition — exactly
    /// the snapshot a single histogram recording both observation streams
    /// would hold. **All-or-nothing**: on overflow nothing is merged.
    ///
    /// # Errors
    ///
    /// [`ObsError::Overflow`] if any count would exceed `u64::MAX`.
    pub fn merge(&mut self, other: &Self) -> Result<(), ObsError> {
        let mut staged = self.clone();
        for (mine, theirs) in staged.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.checked_add(*theirs).ok_or(ObsError::Overflow)?;
        }
        staged.count = staged
            .count
            .checked_add(other.count)
            .ok_or(ObsError::Overflow)?;
        // The sum wraps by design (see `Histo::record`), so merge wraps
        // identically — (a + b) mod 2^64 keeps merge ≡ single-writer.
        staged.sum = staged.sum.wrapping_add(other.sum);
        *self = staged;
        Ok(())
    }

    /// The exact inverse of [`HistoSnapshot::merge`]: removes a
    /// previously merged snapshot, bit for bit. **All-or-nothing**: on
    /// underflow nothing is subtracted.
    ///
    /// # Errors
    ///
    /// [`ObsError::Underflow`] if any of `other`'s counts exceeds this
    /// snapshot's (it was never merged in).
    pub fn subtract(&mut self, other: &Self) -> Result<(), ObsError> {
        let mut staged = self.clone();
        for (mine, theirs) in staged.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.checked_sub(*theirs).ok_or(ObsError::Underflow)?;
        }
        staged.count = staged
            .count
            .checked_sub(other.count)
            .ok_or(ObsError::Underflow)?;
        staged.sum = staged.sum.wrapping_sub(other.sum);
        *self = staged;
        Ok(())
    }
}

// --- registry ----------------------------------------------------------

/// One registered instrument (shared: the registry holds one `Arc`, the
/// instrumented component holds another).
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A level / high-water gauge.
    Gauge(Arc<Gauge>),
    /// A log-bucketed histogram.
    Histo(Arc<Histo>),
}

/// A named collection of instruments shared across the service tiers.
///
/// Registration (`counter`/`gauge`/`histo`) is get-or-create under a
/// mutex — a cold path run once per component at construction. Updates go
/// through the returned `Arc`s and never touch the registry, so the hot
/// paths stay lock-free. [`MetricsRegistry::snapshot`] freezes every
/// instrument into a [`RegistrySnapshot`] for exposition (the METRICS
/// session message, `render`, the bench dumps).
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} metrics)", self.len())
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // Registration mutations are single BTreeMap inserts, so a poisoned
    // mutex still guards a consistent map — recover like the service
    // tier's staged-write locks instead of cascading a panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or registers the counter `name`.
    ///
    /// Registering a name that already holds a *different* instrument
    /// kind is a programming error; the existing registration is kept
    /// (exposition stays consistent) and a detached instrument is
    /// returned, which the tier-coverage tests surface as a missing
    /// metric.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Gets or registers the gauge `name` (kind-collision semantics as
    /// [`MetricsRegistry::counter`]).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Gets or registers the histogram `name` (kind-collision semantics
    /// as [`MetricsRegistry::counter`]).
    #[must_use]
    pub fn histo(&self, name: &str) -> Arc<Histo> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histo(Arc::new(Histo::new())))
        {
            Metric::Histo(h) => Arc::clone(h),
            _ => Arc::new(Histo::new()),
        }
    }

    /// Number of registered instruments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Freezes every instrument into an exposition snapshot (sorted by
    /// name). Individual values are read with the usual
    /// racy-while-active / exact-when-quiesced contract.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self
            .lock()
            .iter()
            .map(|(name, metric)| MetricEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histo(h) => MetricValue::Histo(Box::new(h.snapshot())),
                },
            })
            .collect();
        RegistrySnapshot::from_entries(entries)
    }

    /// Human-readable text dump (see [`RegistrySnapshot::render`]).
    #[must_use]
    pub fn render(&self) -> String {
        self.snapshot().render()
    }

    /// Flat-JSON dump (see [`RegistrySnapshot::render_json`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_total_and_ordered() {
        assert_eq!(Histo::bucket_index(0), 0);
        assert_eq!(Histo::bucket_index(1), 1);
        assert_eq!(Histo::bucket_index(2), 2);
        assert_eq!(Histo::bucket_index(3), 2);
        assert_eq!(Histo::bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 7, 1024, u64::MAX / 2, u64::MAX] {
            let i = Histo::bucket_index(v);
            let (lo, hi) = Histo::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {i}");
        }
    }

    #[test]
    fn registry_shares_instruments_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x.events");
        let b = registry.counter("x.events");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(registry.len(), 1);
        // Kind collision keeps the first registration and returns a
        // detached instrument.
        let detached = registry.gauge("x.events");
        detached.set(99);
        assert_eq!(registry.snapshot().counter("x.events"), Some(4));
    }

    #[test]
    fn quantile_bound_walks_the_cumulative_counts() {
        let h = Histo::new();
        for v in [0u64, 1, 1, 3, 100, 100, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.quantile_bound(0.0), 0);
        assert_eq!(s.quantile_bound(1.0), 8191); // bucket of 5000
        assert!(s.quantile_bound(0.5) >= 3);
        assert_eq!(HistoSnapshot::empty().quantile_bound(0.5), 0);
    }
}
