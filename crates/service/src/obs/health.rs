//! The component health model: a pure function from a frozen
//! [`RegistrySnapshot`] to per-component verdicts and one node verdict.
//!
//! Health is *derived*, never stored: every signal it reads — the
//! [`names::STORAGE_WEDGED`] gauge, the WAL append-latency percentiles,
//! the reactor's queue high-water mark, the open-session count, the
//! replication lag gauge — already lives in the registry, so the verdict
//! a remote `HEALTH` probe sees, the verbose STATUS embeds, and the ops
//! endpoint's `GET /health` serves are all the same computation over the
//! same snapshot. A component only appears in the report when its tier's
//! signals are present in the snapshot (a plain in-memory server has no
//! storage component), so the report's shape tracks the node's actual
//! composition.
//!
//! The wire codec follows the crate's codec discipline: total decoding
//! (malformed bytes are a typed [`WireError`], never a panic), declared
//! sizes capped before allocation, canonical re-encoding.

use crate::error::WireError;
use crate::obs::expose::RegistrySnapshot;
use crate::obs::instruments::names;
use crate::wire::{put_varint, Reader};

/// Cap on components in one wire report (the service defines three;
/// the cap just bounds hostile headers).
pub const MAX_HEALTH_COMPONENTS: usize = 64;
/// Cap on one component name's byte length.
pub const MAX_COMPONENT_BYTES: usize = 64;
/// Cap on one detail string's byte length.
pub const MAX_HEALTH_DETAIL_BYTES: usize = 256;

/// A component's (or the node's) health verdict, worst-wins ordered:
/// `Healthy < Degraded < Unhealthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All signals inside their thresholds.
    Healthy,
    /// Operable but outside a threshold (latency, backlog, lag).
    Degraded,
    /// Not operable (the store wedged fail-stop, lag past the hard
    /// threshold).
    Unhealthy,
}

impl HealthState {
    fn to_u8(self) -> u8 {
        match self {
            Self::Healthy => 0,
            Self::Degraded => 1,
            Self::Unhealthy => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Self::Healthy),
            1 => Ok(Self::Degraded),
            2 => Ok(Self::Unhealthy),
            _ => Err(WireError::Malformed("unknown health state byte")),
        }
    }

    /// The state's canonical name (`Healthy` / `Degraded` / `Unhealthy`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Healthy => "Healthy",
            Self::Degraded => "Degraded",
            Self::Unhealthy => "Unhealthy",
        }
    }
}

/// The thresholds [`evaluate`] judges a snapshot against. Every field
/// has a production-shaped default; tests inject tighter ones to flip
/// verdicts deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthThresholds {
    /// Degraded when the WAL append (group-commit incl. fsync) p99
    /// bucket bound exceeds this many nanoseconds.
    pub wal_append_p99_ns: u64,
    /// Degraded when a session's parsed-but-undispatched backlog
    /// high-water mark reaches this many messages.
    pub queue_depth_hw: u64,
    /// Degraded when this many sessions are open simultaneously.
    pub sessions_open: u64,
    /// Degraded when replication lag reaches this many records.
    pub follower_lag_degraded: u64,
    /// Unhealthy when replication lag reaches this many records.
    pub follower_lag_unhealthy: u64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        Self {
            // One WAL group commit slower than 250ms at p99 means the
            // disk is in trouble, not just busy.
            wal_append_p99_ns: 250_000_000,
            // The reactor's per-session inbox holds 32 parsed messages;
            // sustained high-water near it means workers are behind.
            queue_depth_hw: 24,
            // Far above the tested 10k-session concurrency gate.
            sessions_open: 50_000,
            follower_lag_degraded: 4_096,
            follower_lag_unhealthy: 262_144,
        }
    }
}

/// One component's verdict with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentHealth {
    /// The component (`storage`, `net`, `repl`).
    pub component: String,
    /// The verdict.
    pub state: HealthState,
    /// Why — the signal and threshold that produced the state.
    pub detail: String,
}

/// The node's health: per-component verdicts rolled into one
/// worst-wins node verdict.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// The components present in the judged snapshot, in evaluation
    /// order (`storage`, `net`, `repl`).
    pub components: Vec<ComponentHealth>,
}

impl HealthReport {
    /// The node verdict: the worst component state (Healthy when no
    /// component reported — an empty registry has nothing wrong).
    #[must_use]
    pub fn verdict(&self) -> HealthState {
        self.components
            .iter()
            .map(|c| c.state)
            .max()
            .unwrap_or(HealthState::Healthy)
    }

    /// The state of `component`, if it was evaluated.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&ComponentHealth> {
        self.components.iter().find(|c| c.component == name)
    }

    // --- wire codec ----------------------------------------------------

    /// Appends the canonical wire encoding to `out`:
    /// `n:varint (name_len name state(1B) detail_len detail) × n`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.components.len() as u64);
        for c in &self.components {
            let name = c.component.as_bytes();
            put_varint(out, name.len() as u64);
            out.extend_from_slice(name);
            out.push(c.state.to_u8());
            let detail = c.detail.as_bytes();
            put_varint(out, detail.len().min(MAX_HEALTH_DETAIL_BYTES) as u64);
            out.extend_from_slice(&detail[..detail.len().min(MAX_HEALTH_DETAIL_BYTES)]);
        }
    }

    /// Decodes one report from the reader's position, leaving the reader
    /// past it (the STATUS_OK decoder reads it mid-payload). Total:
    /// malformed input is a typed error, never a panic; declared sizes
    /// are capped before allocation.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed input.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.varint()?;
        if n > MAX_HEALTH_COMPONENTS as u64 {
            return Err(WireError::SizeOverCap(n));
        }
        let n = n as usize;
        if r.remaining() < n.saturating_mul(3) {
            return Err(WireError::Truncated);
        }
        let mut components = Vec::with_capacity(n);
        for _ in 0..n {
            let name_len = r.varint()?;
            if name_len > MAX_COMPONENT_BYTES as u64 {
                return Err(WireError::SizeOverCap(name_len));
            }
            let component = std::str::from_utf8(r.bytes(name_len as usize)?)
                .map_err(|_| WireError::Malformed("component name not UTF-8"))?
                .to_string();
            if component.is_empty() {
                return Err(WireError::Malformed("empty component name"));
            }
            let state = HealthState::from_u8(r.u8()?)?;
            let detail_len = r.varint()?;
            if detail_len > MAX_HEALTH_DETAIL_BYTES as u64 {
                return Err(WireError::SizeOverCap(detail_len));
            }
            let detail = std::str::from_utf8(r.bytes(detail_len as usize)?)
                .map_err(|_| WireError::Malformed("health detail not UTF-8"))?
                .to_string();
            components.push(ComponentHealth {
                component,
                state,
                detail,
            });
        }
        Ok(Self { components })
    }

    /// Decodes a standalone buffer; trailing bytes are an error.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed input or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let report = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after health report"));
        }
        Ok(report)
    }

    /// The `GET /health` body: the verdict and each component as JSON.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"verdict\": \"{}\",\n  \"components\": [",
            self.verdict().as_str()
        );
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"component\": \"{}\", \"state\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(&c.component),
                c.state.as_str(),
                json_escape(&c.detail)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Judges `snapshot` against `thresholds`. Components appear only when
/// their tier's signals are present in the snapshot:
///
/// * `storage` — [`names::STORAGE_WEDGED`] set ⇒ Unhealthy (fail-stop);
///   WAL append p99 past [`HealthThresholds::wal_append_p99_ns`] ⇒
///   Degraded.
/// * `net` — open sessions past [`HealthThresholds::sessions_open`] or
///   queue high-water past [`HealthThresholds::queue_depth_hw`] ⇒
///   Degraded.
/// * `repl` — [`names::REPL_FOLLOWER_LAG_RECORDS`] past the degraded /
///   unhealthy lag thresholds ⇒ Degraded / Unhealthy (on a leader the
///   gauge tracks its slowest follower; on a follower, its own lag
///   behind the leader's announced tail).
#[must_use]
pub fn evaluate(snapshot: &RegistrySnapshot, thresholds: &HealthThresholds) -> HealthReport {
    let mut components = Vec::new();

    if let Some(wedged) = snapshot.gauge(names::STORAGE_WEDGED) {
        let (state, detail) = if wedged != 0 {
            (
                HealthState::Unhealthy,
                "store wedged fail-stop: a WAL append or fsync failed; \
                 ingest is refused until restart"
                    .to_string(),
            )
        } else {
            let p99 = snapshot
                .histo(names::WAL_APPEND_NS)
                .filter(|h| h.count() > 0)
                .map_or(0, |h| h.quantile_bound(0.99));
            if p99 > thresholds.wal_append_p99_ns {
                (
                    HealthState::Degraded,
                    format!(
                        "WAL append p99 ≤ {p99}ns exceeds the {}ns threshold",
                        thresholds.wal_append_p99_ns
                    ),
                )
            } else {
                (
                    HealthState::Healthy,
                    format!("not wedged; WAL append p99 ≤ {p99}ns"),
                )
            }
        };
        components.push(ComponentHealth {
            component: "storage".to_string(),
            state,
            detail,
        });
    }

    if let Some(open) = snapshot.gauge(names::NET_SESSIONS_OPEN) {
        let hw = snapshot.gauge(names::NET_QUEUE_DEPTH_HW).unwrap_or(0);
        let (state, detail) = if open >= thresholds.sessions_open {
            (
                HealthState::Degraded,
                format!(
                    "{open} open sessions at/above the {} threshold",
                    thresholds.sessions_open
                ),
            )
        } else if hw >= thresholds.queue_depth_hw {
            (
                HealthState::Degraded,
                format!(
                    "session backlog high-water {hw} at/above the {} threshold",
                    thresholds.queue_depth_hw
                ),
            )
        } else {
            (
                HealthState::Healthy,
                format!("{open} open sessions, backlog high-water {hw}"),
            )
        };
        components.push(ComponentHealth {
            component: "net".to_string(),
            state,
            detail,
        });
    }

    if let Some(lag) = snapshot.gauge(names::REPL_FOLLOWER_LAG_RECORDS) {
        let (state, detail) = if lag >= thresholds.follower_lag_unhealthy {
            (
                HealthState::Unhealthy,
                format!(
                    "replication lag {lag} records at/above the {} hard threshold",
                    thresholds.follower_lag_unhealthy
                ),
            )
        } else if lag >= thresholds.follower_lag_degraded {
            (
                HealthState::Degraded,
                format!(
                    "replication lag {lag} records at/above the {} threshold",
                    thresholds.follower_lag_degraded
                ),
            )
        } else {
            (
                HealthState::Healthy,
                format!("replication lag {lag} records"),
            )
        };
        components.push(ComponentHealth {
            component: "repl".to_string(),
            state,
            detail,
        });
    }

    HealthReport { components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MetricsRegistry;

    fn snapshot_with(build: impl FnOnce(&MetricsRegistry)) -> RegistrySnapshot {
        let registry = MetricsRegistry::new();
        build(&registry);
        registry.snapshot()
    }

    #[test]
    fn empty_snapshot_is_healthy_with_no_components() {
        let report = evaluate(&RegistrySnapshot::default(), &HealthThresholds::default());
        assert_eq!(report.verdict(), HealthState::Healthy);
        assert!(report.components.is_empty());
    }

    #[test]
    fn wedged_store_is_unhealthy_and_wins_the_verdict() {
        let snapshot = snapshot_with(|r| {
            r.gauge(names::STORAGE_WEDGED).set(1);
            r.gauge(names::NET_SESSIONS_OPEN).set(1);
        });
        let report = evaluate(&snapshot, &HealthThresholds::default());
        assert_eq!(report.verdict(), HealthState::Unhealthy);
        assert_eq!(
            report.component("storage").unwrap().state,
            HealthState::Unhealthy
        );
        assert_eq!(report.component("net").unwrap().state, HealthState::Healthy);
    }

    #[test]
    fn follower_lag_flips_degraded_then_unhealthy() {
        let thresholds = HealthThresholds {
            follower_lag_degraded: 10,
            follower_lag_unhealthy: 100,
            ..HealthThresholds::default()
        };
        for (lag, want) in [
            (0, HealthState::Healthy),
            (9, HealthState::Healthy),
            (10, HealthState::Degraded),
            (99, HealthState::Degraded),
            (100, HealthState::Unhealthy),
        ] {
            let snapshot = snapshot_with(|r| r.gauge(names::REPL_FOLLOWER_LAG_RECORDS).set(lag));
            let report = evaluate(&snapshot, &thresholds);
            assert_eq!(report.verdict(), want, "lag {lag}");
        }
    }

    #[test]
    fn slow_wal_and_deep_queues_degrade_without_unhealthy() {
        let thresholds = HealthThresholds {
            wal_append_p99_ns: 1_000,
            queue_depth_hw: 8,
            ..HealthThresholds::default()
        };
        let snapshot = snapshot_with(|r| {
            r.gauge(names::STORAGE_WEDGED).set(0);
            for _ in 0..100 {
                r.histo(names::WAL_APPEND_NS).record(1_000_000);
            }
            r.gauge(names::NET_SESSIONS_OPEN).set(3);
            r.gauge(names::NET_QUEUE_DEPTH_HW).set(9);
        });
        let report = evaluate(&snapshot, &thresholds);
        assert_eq!(report.verdict(), HealthState::Degraded);
        assert_eq!(
            report.component("storage").unwrap().state,
            HealthState::Degraded
        );
        assert_eq!(
            report.component("net").unwrap().state,
            HealthState::Degraded
        );
    }

    #[test]
    fn codec_roundtrips_canonically_and_rejects_soup() {
        let snapshot = snapshot_with(|r| {
            r.gauge(names::STORAGE_WEDGED).set(1);
            r.gauge(names::NET_SESSIONS_OPEN).set(2);
            r.gauge(names::REPL_FOLLOWER_LAG_RECORDS).set(3);
        });
        let report = evaluate(&snapshot, &HealthThresholds::default());
        let mut bytes = Vec::new();
        report.encode_into(&mut bytes);
        let decoded = HealthReport::decode(&bytes).unwrap();
        assert_eq!(decoded, report);
        let mut re = Vec::new();
        decoded.encode_into(&mut re);
        assert_eq!(re, bytes, "re-encode differs");
        for cut in 0..bytes.len() {
            assert!(HealthReport::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        // Unknown state byte and over-cap counts are typed errors.
        assert!(HealthReport::decode(&[1, 1, b'x', 9, 0]).is_err());
        assert!(HealthReport::decode(&[0xFF, 0xFF, 0x7F]).is_err());
    }

    #[test]
    fn json_rendering_names_the_verdict() {
        let snapshot = snapshot_with(|r| r.gauge(names::REPL_FOLLOWER_LAG_RECORDS).set(0));
        let report = evaluate(&snapshot, &HealthThresholds::default());
        let json = report.render_json();
        assert!(json.contains("\"verdict\": \"Healthy\""));
        assert!(json.contains("\"component\": \"repl\""));
    }
}
