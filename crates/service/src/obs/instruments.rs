//! Per-tier instrument bundles: each tier resolves its instruments from
//! the shared registry once, at attach time, and holds the `Arc`s so its
//! hot paths never touch the registry again.
//!
//! The canonical metric names live in [`names`]; the README
//! "Observability" table documents each one's type, unit, and tier.

use std::sync::Arc;

use crate::obs::registry::{Counter, Gauge, Histo, MetricsRegistry};

/// The canonical metric names, one constant per registered instrument,
/// so tests and operators reference names instead of retyping strings.
pub mod names {
    /// Histogram, ns: wall time of one shard-tier batch absorb.
    pub const SHARD_ABSORB_NS: &str = "shard.absorb_ns";
    /// Counter, frames: frames committed by the shard tier.
    pub const SHARD_FRAMES_ACCEPTED: &str = "shard.frames_accepted";
    /// Counter, frames: frames rejected by the shard tier (whole batch on
    /// an all-or-nothing failure).
    pub const SHARD_FRAMES_REJECTED: &str = "shard.frames_rejected";

    /// Histogram, ns: wall time of one published-snapshot refresh
    /// (merge + freeze + swap).
    pub const SERVICE_REFRESH_NS: &str = "service.refresh_ns";
    /// Counter, refreshes: snapshot refreshes completed.
    pub const SERVICE_REFRESHES: &str = "service.refreshes";
    /// Gauge, version: version stamp of the currently published snapshot.
    pub const SERVICE_SNAPSHOT_VERSION: &str = "service.snapshot_version";
    /// Counter, refreshes: refreshes served by the delta path (only
    /// shards that absorbed since the last freeze were re-cloned and
    /// swapped into the retained merge).
    pub const SERVICE_REFRESHES_DELTA: &str = "service.refreshes_delta";
    /// Counter, refreshes: refreshes that rebuilt the merge from scratch
    /// (the first refresh, the refresh after an epoch seal, or any
    /// refresh with the delta path disabled).
    pub const SERVICE_REFRESHES_FULL: &str = "service.refreshes_full";
    /// Counter, shards: unchanged shards a delta refresh reused without
    /// cloning or merging.
    pub const SERVICE_REFRESH_SHARDS_REUSED: &str = "service.refresh_shards_reused";

    /// Histogram, ns: wall time of one lockstep epoch seal across all
    /// shard rings.
    pub const WINDOW_SEAL_NS: &str = "window.seal_ns";
    /// Counter, epochs: epochs sealed (lockstep sweeps, not per shard).
    pub const WINDOW_EPOCHS_SEALED: &str = "window.epochs_sealed";
    /// Histogram, ns: wall time of one ring rotation's exact subtract of
    /// the retired epoch.
    pub const WINDOW_ROTATE_NS: &str = "window.rotate_ns";
    /// Counter, epochs: epochs retired out of the ring (per shard ring).
    pub const WINDOW_ROTATIONS: &str = "window.rotations";

    /// Counter, sessions: sessions accepted off the listener.
    pub const NET_SESSIONS_OPENED: &str = "net.sessions_opened";
    /// Counter, sessions: sessions fully torn down.
    pub const NET_SESSIONS_CLOSED: &str = "net.sessions_closed";
    /// Gauge, sessions: sessions currently open (held by the reactor).
    pub const NET_SESSIONS_OPEN: &str = "net.sessions_open";
    /// Counter, frames: frames absorbed into the backend over the socket.
    pub const NET_FRAMES_ABSORBED: &str = "net.frames_absorbed";
    /// Counter, frames: frames rejected at the session layer.
    pub const NET_FRAMES_REJECTED: &str = "net.frames_rejected";
    /// Counter, bytes: session-message bytes read (length prefix + body).
    pub const NET_BYTES_IN: &str = "net.bytes_in";
    /// Counter, bytes: session-message bytes written.
    pub const NET_BYTES_OUT: &str = "net.bytes_out";
    /// Gauge, messages: high-water mark of a session's parsed-but-
    /// undispatched message backlog (pipelining depth).
    pub const NET_QUEUE_DEPTH_HW: &str = "net.queue_depth_hw";
    /// Histogram, ns: REPORT handling latency (absorb + reply write).
    pub const NET_REPORT_NS: &str = "net.report_ns";
    /// Histogram, ns: QUERY handling latency.
    pub const NET_QUERY_NS: &str = "net.query_ns";
    /// Histogram, ns: SEAL handling latency.
    pub const NET_SEAL_NS: &str = "net.seal_ns";
    /// Histogram, ns: STATUS / METRICS handling latency.
    pub const NET_STATUS_NS: &str = "net.status_ns";

    /// Histogram, ns: one WAL group-commit append including fsync.
    pub const WAL_APPEND_NS: &str = "wal.append_ns";
    /// Histogram, frames: group-commit batch size (frames per record).
    pub const WAL_BATCH_FRAMES: &str = "wal.batch_frames";
    /// Counter, records: WAL records appended.
    pub const WAL_RECORDS: &str = "wal.records";
    /// Counter, frames: frames appended to the WAL.
    pub const WAL_FRAMES: &str = "wal.frames";
    /// Histogram, ns: wall time of one checkpoint (append + rotate +
    /// state write + prune).
    pub const STORAGE_CHECKPOINT_NS: &str = "storage.checkpoint_ns";
    /// Counter, checkpoints: checkpoints completed.
    pub const STORAGE_CHECKPOINTS: &str = "storage.checkpoints";
    /// Counter, failures: auto-checkpoints that failed (ingest continued).
    pub const STORAGE_CHECKPOINT_FAILURES: &str = "storage.checkpoint_failures";
    /// Gauge, flag: 1 once the store wedged fail-stop, else 0.
    pub const STORAGE_WEDGED: &str = "storage.wedged";
    /// Counter, records: WAL records replayed by recovery at open.
    pub const STORAGE_REPLAY_RECORDS: &str = "storage.replay_records";
    /// Counter, frames: frames replayed by recovery at open.
    pub const STORAGE_REPLAY_FRAMES: &str = "storage.replay_frames";

    /// Gauge, sessions: follower sessions currently subscribed to this
    /// leader's WAL stream.
    pub const REPL_FOLLOWERS: &str = "repl.followers";
    /// Gauge, records: records the slowest subscribed follower has yet
    /// to acknowledge (0 with no followers).
    pub const REPL_FOLLOWER_LAG_RECORDS: &str = "repl.follower_lag_records";
    /// Counter, records: replicated WAL records a follower has applied
    /// and persisted to its own log.
    pub const REPL_RECORDS_APPLIED: &str = "repl.records_applied";

    /// Counter, requests: HTTP requests answered by the ops scrape
    /// endpoint (any status).
    pub const OPS_HTTP_REQUESTS: &str = "ops.http_requests";
    /// Counter, requests: ops scrape requests answered with a non-200
    /// status (bad request, unknown path, wrong method).
    pub const OPS_HTTP_ERRORS: &str = "ops.http_errors";
    /// Counter, samples: registry snapshots frozen into the time-series
    /// ring by the background sampler.
    pub const OPS_TS_SAMPLES: &str = "ops.ts_samples";
}

/// Shard-tier instruments (`crate::ShardedAggregator` and the service's
/// per-shard absorb paths).
#[derive(Debug, Clone)]
pub struct ShardInstruments {
    /// [`names::SHARD_ABSORB_NS`].
    pub absorb_ns: Arc<Histo>,
    /// [`names::SHARD_FRAMES_ACCEPTED`].
    pub frames_accepted: Arc<Counter>,
    /// [`names::SHARD_FRAMES_REJECTED`].
    pub frames_rejected: Arc<Counter>,
}

impl ShardInstruments {
    /// Resolves the shard-tier instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            absorb_ns: registry.histo(names::SHARD_ABSORB_NS),
            frames_accepted: registry.counter(names::SHARD_FRAMES_ACCEPTED),
            frames_rejected: registry.counter(names::SHARD_FRAMES_REJECTED),
        }
    }
}

/// Service-tier instruments (`crate::LdpService` snapshot publication).
#[derive(Debug, Clone)]
pub struct ServiceInstruments {
    /// [`names::SERVICE_REFRESH_NS`].
    pub refresh_ns: Arc<Histo>,
    /// [`names::SERVICE_REFRESHES`].
    pub refreshes: Arc<Counter>,
    /// [`names::SERVICE_SNAPSHOT_VERSION`].
    pub snapshot_version: Arc<Gauge>,
    /// [`names::SERVICE_REFRESHES_DELTA`].
    pub refreshes_delta: Arc<Counter>,
    /// [`names::SERVICE_REFRESHES_FULL`].
    pub refreshes_full: Arc<Counter>,
    /// [`names::SERVICE_REFRESH_SHARDS_REUSED`].
    pub refresh_shards_reused: Arc<Counter>,
}

impl ServiceInstruments {
    /// Resolves the service-tier instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            refresh_ns: registry.histo(names::SERVICE_REFRESH_NS),
            refreshes: registry.counter(names::SERVICE_REFRESHES),
            snapshot_version: registry.gauge(names::SERVICE_SNAPSHOT_VERSION),
            refreshes_delta: registry.counter(names::SERVICE_REFRESHES_DELTA),
            refreshes_full: registry.counter(names::SERVICE_REFRESHES_FULL),
            refresh_shards_reused: registry.counter(names::SERVICE_REFRESH_SHARDS_REUSED),
        }
    }
}

/// Window-tier instruments (`crate::EpochRing` sealing and rotation).
#[derive(Debug, Clone)]
pub struct WindowInstruments {
    /// [`names::WINDOW_SEAL_NS`].
    pub seal_ns: Arc<Histo>,
    /// [`names::WINDOW_EPOCHS_SEALED`].
    pub epochs_sealed: Arc<Counter>,
    /// [`names::WINDOW_ROTATE_NS`].
    pub rotate_ns: Arc<Histo>,
    /// [`names::WINDOW_ROTATIONS`].
    pub rotations: Arc<Counter>,
}

impl WindowInstruments {
    /// Resolves the window-tier instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            seal_ns: registry.histo(names::WINDOW_SEAL_NS),
            epochs_sealed: registry.counter(names::WINDOW_EPOCHS_SEALED),
            rotate_ns: registry.histo(names::WINDOW_ROTATE_NS),
            rotations: registry.counter(names::WINDOW_ROTATIONS),
        }
    }
}

/// Net-tier instruments (`crate::net::LdpServer` sessions). These are
/// the *only* accounting path for drain totals: `ServerStats` is read
/// back out of these counters.
#[derive(Debug, Clone)]
pub struct NetInstruments {
    /// [`names::NET_SESSIONS_OPENED`].
    pub sessions_opened: Arc<Counter>,
    /// [`names::NET_SESSIONS_CLOSED`].
    pub sessions_closed: Arc<Counter>,
    /// [`names::NET_SESSIONS_OPEN`].
    pub sessions_open: Arc<Gauge>,
    /// [`names::NET_FRAMES_ABSORBED`].
    pub frames_absorbed: Arc<Counter>,
    /// [`names::NET_FRAMES_REJECTED`].
    pub frames_rejected: Arc<Counter>,
    /// [`names::NET_BYTES_IN`].
    pub bytes_in: Arc<Counter>,
    /// [`names::NET_BYTES_OUT`].
    pub bytes_out: Arc<Counter>,
    /// [`names::NET_QUEUE_DEPTH_HW`].
    pub queue_depth_hw: Arc<Gauge>,
    /// [`names::NET_REPORT_NS`].
    pub report_ns: Arc<Histo>,
    /// [`names::NET_QUERY_NS`].
    pub query_ns: Arc<Histo>,
    /// [`names::NET_SEAL_NS`].
    pub seal_ns: Arc<Histo>,
    /// [`names::NET_STATUS_NS`].
    pub status_ns: Arc<Histo>,
}

impl NetInstruments {
    /// Resolves the net-tier instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            sessions_opened: registry.counter(names::NET_SESSIONS_OPENED),
            sessions_closed: registry.counter(names::NET_SESSIONS_CLOSED),
            sessions_open: registry.gauge(names::NET_SESSIONS_OPEN),
            frames_absorbed: registry.counter(names::NET_FRAMES_ABSORBED),
            frames_rejected: registry.counter(names::NET_FRAMES_REJECTED),
            bytes_in: registry.counter(names::NET_BYTES_IN),
            bytes_out: registry.counter(names::NET_BYTES_OUT),
            queue_depth_hw: registry.gauge(names::NET_QUEUE_DEPTH_HW),
            report_ns: registry.histo(names::NET_REPORT_NS),
            query_ns: registry.histo(names::NET_QUERY_NS),
            seal_ns: registry.histo(names::NET_SEAL_NS),
            status_ns: registry.histo(names::NET_STATUS_NS),
        }
    }
}

/// Storage-tier instruments (`crate::storage::DurableService` WAL,
/// checkpointing, recovery, and the fail-stop wedge flag — the gauge *is*
/// the wedge state, there is no shadow copy).
#[derive(Debug, Clone)]
pub struct StorageInstruments {
    /// [`names::WAL_APPEND_NS`].
    pub append_ns: Arc<Histo>,
    /// [`names::WAL_BATCH_FRAMES`].
    pub batch_frames: Arc<Histo>,
    /// [`names::WAL_RECORDS`].
    pub wal_records: Arc<Counter>,
    /// [`names::WAL_FRAMES`].
    pub wal_frames: Arc<Counter>,
    /// [`names::STORAGE_CHECKPOINT_NS`].
    pub checkpoint_ns: Arc<Histo>,
    /// [`names::STORAGE_CHECKPOINTS`].
    pub checkpoints: Arc<Counter>,
    /// [`names::STORAGE_CHECKPOINT_FAILURES`].
    pub checkpoint_failures: Arc<Counter>,
    /// [`names::STORAGE_WEDGED`].
    pub wedged: Arc<Gauge>,
    /// [`names::STORAGE_REPLAY_RECORDS`].
    pub replay_records: Arc<Counter>,
    /// [`names::STORAGE_REPLAY_FRAMES`].
    pub replay_frames: Arc<Counter>,
}

impl StorageInstruments {
    /// Resolves the storage-tier instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            append_ns: registry.histo(names::WAL_APPEND_NS),
            batch_frames: registry.histo(names::WAL_BATCH_FRAMES),
            wal_records: registry.counter(names::WAL_RECORDS),
            wal_frames: registry.counter(names::WAL_FRAMES),
            checkpoint_ns: registry.histo(names::STORAGE_CHECKPOINT_NS),
            checkpoints: registry.counter(names::STORAGE_CHECKPOINTS),
            checkpoint_failures: registry.counter(names::STORAGE_CHECKPOINT_FAILURES),
            wedged: registry.gauge(names::STORAGE_WEDGED),
            replay_records: registry.counter(names::STORAGE_REPLAY_RECORDS),
            replay_frames: registry.counter(names::STORAGE_REPLAY_FRAMES),
        }
    }
}

/// Replication-tier instruments. On a leader the two gauges track its
/// subscribed followers; on a follower the counter tracks applied
/// records. Both sides register the full bundle so the exposition shape
/// does not depend on the role.
#[derive(Debug, Clone)]
pub struct ReplInstruments {
    /// [`names::REPL_FOLLOWERS`].
    pub followers: Arc<Gauge>,
    /// [`names::REPL_FOLLOWER_LAG_RECORDS`].
    pub follower_lag_records: Arc<Gauge>,
    /// [`names::REPL_RECORDS_APPLIED`].
    pub records_applied: Arc<Counter>,
}

impl ReplInstruments {
    /// Resolves the replication-tier instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            followers: registry.gauge(names::REPL_FOLLOWERS),
            follower_lag_records: registry.gauge(names::REPL_FOLLOWER_LAG_RECORDS),
            records_applied: registry.counter(names::REPL_RECORDS_APPLIED),
        }
    }
}

/// Ops-plane instruments (the HTTP scrape endpoint and the time-series
/// sampler) — the ops plane measures itself with the same registry it
/// exposes.
#[derive(Debug, Clone)]
pub struct OpsInstruments {
    /// [`names::OPS_HTTP_REQUESTS`].
    pub http_requests: Arc<Counter>,
    /// [`names::OPS_HTTP_ERRORS`].
    pub http_errors: Arc<Counter>,
    /// [`names::OPS_TS_SAMPLES`].
    pub ts_samples: Arc<Counter>,
}

impl OpsInstruments {
    /// Resolves the ops-plane instruments from `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            http_requests: registry.counter(names::OPS_HTTP_REQUESTS),
            http_errors: registry.counter(names::OPS_HTTP_ERRORS),
            ts_samples: registry.counter(names::OPS_TS_SAMPLES),
        }
    }
}
