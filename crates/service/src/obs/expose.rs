//! Exposition: frozen registry snapshots, their exact merge/subtract
//! algebra, the wire codec behind the METRICS session message and the
//! verbose STATUS_OK section, and the text/JSON renderers used by
//! `examples/observability.rs` and the bench bins.
//!
//! The wire encoding reuses the report codec's primitives
//! ([`crate::wire::Reader`] / [`crate::wire::put_varint`]) and inherits
//! its contracts: decoding is **total** (malformed bytes yield a
//! [`WireError`], never a panic), declared sizes are capped
//! ([`MAX_METRICS`], [`MAX_NAME_BYTES`]) before any allocation, and
//! encoding is canonical — `decode(encode(s)) == s` and re-encoding
//! reproduces the bytes:
//!
//! ```text
//! snapshot := n:varint  entry × n                      (n ≤ MAX_METRICS)
//! entry    := name_len:varint  name  kind(1B)  payload
//!             (names UTF-8, ≤ MAX_NAME_BYTES, strictly ascending)
//! kind 0 counter  payload := value:varint
//! kind 1 gauge    payload := value:varint
//! kind 2 histo    payload := count:varint  sum:varint  k:varint
//!                            (bucket(1B)  count:varint) × k
//!             (k ≤ 65, bucket indexes strictly ascending < 65,
//!              only nonzero buckets encoded)
//! ```

use crate::error::WireError;
use crate::obs::registry::{Histo, HistoSnapshot, ObsError, HISTO_BUCKETS};
use crate::wire::{put_varint, Reader};

/// Cap on the number of metrics in one snapshot — far above what the
/// service registers, low enough that a hostile header cannot balloon
/// memory.
pub const MAX_METRICS: usize = 4096;
/// Cap on one metric name's byte length.
pub const MAX_NAME_BYTES: usize = 200;

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTO: u8 = 2;

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(u64),
    /// A frozen histogram (boxed: its fixed bucket array dwarfs the
    /// scalar kinds).
    Histo(Box<HistoSnapshot>),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// The registry name (dotted, `tier.metric`).
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen view of a whole [`crate::obs::MetricsRegistry`]: the payload
/// of the METRICS session message and the verbose STATUS_OK section.
///
/// Snapshots obey the same exact algebra as the mechanism servers:
/// [`RegistrySnapshot::merge`] folds counters by addition, gauges by max,
/// and histograms by exact bucket addition, and
/// [`RegistrySnapshot::subtract`] is merge's exact inverse — so per-shard
/// or per-process snapshots fan in losslessly, just like
/// `MergeableServer` state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    entries: Vec<MetricEntry>,
}

impl RegistrySnapshot {
    /// Builds a snapshot from entries, sorting by name; of duplicate
    /// names the first (in sorted input order) wins, so the entry list is
    /// always strictly ascending — the canonical form the codec encodes.
    #[must_use]
    pub fn from_entries(mut entries: Vec<MetricEntry>) -> Self {
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries.dedup_by(|b, a| a.name == b.name);
        Self { entries }
    }

    /// The entries, sorted by name.
    #[must_use]
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// The counter `name`, if present with that kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`, if present with that kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if present with that kind.
    #[must_use]
    pub fn histo(&self, name: &str) -> Option<&HistoSnapshot> {
        match self.get(name)? {
            MetricValue::Histo(h) => Some(h),
            _ => None,
        }
    }

    /// Merges `other` in by name union: counters add, gauges take the
    /// max, histograms merge exactly ([`HistoSnapshot::merge`]); metrics
    /// only in `other` are copied in. **All-or-nothing**: on any error
    /// this snapshot is unchanged.
    ///
    /// # Errors
    ///
    /// [`ObsError::KindMismatch`] if a shared name holds different kinds;
    /// [`ObsError::Overflow`] if a count would overflow.
    pub fn merge(&mut self, other: &Self) -> Result<(), ObsError> {
        let mut staged = self.entries.clone();
        for theirs in &other.entries {
            match staged.binary_search_by(|e| e.name.cmp(&theirs.name)) {
                Err(at) => staged.insert(at, theirs.clone()),
                Ok(at) => match (&mut staged[at].value, &theirs.value) {
                    (MetricValue::Counter(mine), MetricValue::Counter(v)) => {
                        *mine = mine.checked_add(*v).ok_or(ObsError::Overflow)?;
                    }
                    (MetricValue::Gauge(mine), MetricValue::Gauge(v)) => {
                        *mine = (*mine).max(*v);
                    }
                    (MetricValue::Histo(mine), MetricValue::Histo(h)) => {
                        mine.merge(h)?;
                    }
                    _ => return Err(ObsError::KindMismatch),
                },
            }
        }
        self.entries = staged;
        Ok(())
    }

    /// The exact inverse of [`RegistrySnapshot::merge`] for the additive
    /// kinds: counters and histograms in `other` are subtracted exactly;
    /// gauges are levels, not totals, so they are left unchanged. Every
    /// name in `other` must exist here with the same kind.
    /// **All-or-nothing**: on any error this snapshot is unchanged.
    ///
    /// # Errors
    ///
    /// [`ObsError::Underflow`] if a metric in `other` is missing here or
    /// its counts were never merged in; [`ObsError::KindMismatch`] if a
    /// shared name holds different kinds.
    pub fn subtract(&mut self, other: &Self) -> Result<(), ObsError> {
        let mut staged = self.entries.clone();
        for theirs in &other.entries {
            let at = staged
                .binary_search_by(|e| e.name.cmp(&theirs.name))
                .map_err(|_| ObsError::Underflow)?;
            match (&mut staged[at].value, &theirs.value) {
                (MetricValue::Counter(mine), MetricValue::Counter(v)) => {
                    *mine = mine.checked_sub(*v).ok_or(ObsError::Underflow)?;
                }
                (MetricValue::Gauge(_), MetricValue::Gauge(_)) => {}
                (MetricValue::Histo(mine), MetricValue::Histo(h)) => {
                    mine.subtract(h)?;
                }
                _ => return Err(ObsError::KindMismatch),
            }
        }
        self.entries = staged;
        Ok(())
    }

    // --- wire codec ----------------------------------------------------

    /// Appends the canonical wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.entries.len() as u64);
        for entry in &self.entries {
            let name = entry.name.as_bytes();
            put_varint(out, name.len() as u64);
            out.extend_from_slice(name);
            match &entry.value {
                MetricValue::Counter(v) => {
                    out.push(KIND_COUNTER);
                    put_varint(out, *v);
                }
                MetricValue::Gauge(v) => {
                    out.push(KIND_GAUGE);
                    put_varint(out, *v);
                }
                MetricValue::Histo(h) => {
                    out.push(KIND_HISTO);
                    put_varint(out, h.count());
                    put_varint(out, h.sum());
                    let nonzero: Vec<(usize, u64)> = h
                        .buckets()
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c != 0)
                        .map(|(i, &c)| (i, c))
                        .collect();
                    put_varint(out, nonzero.len() as u64);
                    for (i, c) in nonzero {
                        out.push(i as u8);
                        put_varint(out, c);
                    }
                }
            }
        }
    }

    /// Encodes into a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 24);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one snapshot from the reader's position, leaving the
    /// reader past it (the STATUS_OK decoder reads it mid-payload).
    ///
    /// Total: every malformed input — truncation, over-cap counts, names
    /// that are not UTF-8 or not strictly ascending, unknown kind bytes,
    /// out-of-range or unordered bucket indexes — is a typed error, never
    /// a panic. Declared counts are validated against the bytes actually
    /// present before any allocation.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed input.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.varint()?;
        if n > MAX_METRICS as u64 {
            return Err(WireError::SizeOverCap(n));
        }
        let n = n as usize;
        // Each entry costs ≥ 3 bytes (empty-name length, kind, one
        // value byte are already impossible below, but 3 is a safe
        // floor) — bound the Vec reservation by what the buffer can hold.
        if r.remaining() < n.saturating_mul(3) {
            return Err(WireError::Truncated);
        }
        let mut entries = Vec::with_capacity(n);
        let mut prev_name: Option<String> = None;
        for _ in 0..n {
            let name_len = r.varint()?;
            if name_len > MAX_NAME_BYTES as u64 {
                return Err(WireError::SizeOverCap(name_len));
            }
            let name = std::str::from_utf8(r.bytes(name_len as usize)?)
                .map_err(|_| WireError::Malformed("metric name not UTF-8"))?
                .to_string();
            if name.is_empty() {
                return Err(WireError::Malformed("empty metric name"));
            }
            if let Some(prev) = &prev_name {
                if *prev >= name {
                    return Err(WireError::Malformed("metric names not strictly ascending"));
                }
            }
            let value = match r.u8()? {
                KIND_COUNTER => MetricValue::Counter(r.varint()?),
                KIND_GAUGE => MetricValue::Gauge(r.varint()?),
                KIND_HISTO => {
                    let count = r.varint()?;
                    let sum = r.varint()?;
                    let k = r.varint()?;
                    if k > HISTO_BUCKETS as u64 {
                        return Err(WireError::SizeOverCap(k));
                    }
                    let mut buckets = [0u64; HISTO_BUCKETS];
                    let mut prev_bucket: Option<u8> = None;
                    for _ in 0..k {
                        let i = r.u8()?;
                        if i as usize >= HISTO_BUCKETS {
                            return Err(WireError::Malformed("histogram bucket index ≥ 65"));
                        }
                        if prev_bucket.is_some_and(|p| p >= i) {
                            return Err(WireError::Malformed(
                                "histogram buckets not strictly ascending",
                            ));
                        }
                        prev_bucket = Some(i);
                        let c = r.varint()?;
                        if c == 0 {
                            return Err(WireError::Malformed("zero bucket encoded"));
                        }
                        buckets[i as usize] = c;
                    }
                    MetricValue::Histo(Box::new(HistoSnapshot::from_parts(buckets, count, sum)))
                }
                _ => return Err(WireError::Malformed("unknown metric kind byte")),
            };
            prev_name = Some(name.clone());
            entries.push(MetricEntry { name, value });
        }
        Ok(Self { entries })
    }

    /// Decodes a standalone buffer; trailing bytes are an error.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed input or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let snapshot = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after snapshot"));
        }
        Ok(snapshot)
    }

    // --- renderers ------------------------------------------------------

    /// Human-readable text dump, one line per metric; histograms show
    /// count, sum, integer mean, and p50/p99/max bucket upper bounds.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for entry in &self.entries {
            match &entry.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter {} {v}", entry.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge   {} {v}", entry.name);
                }
                MetricValue::Histo(h) => {
                    let mean = if h.count() == 0 {
                        0
                    } else {
                        h.sum() / h.count()
                    };
                    let _ = writeln!(
                        out,
                        "histo   {} count={} sum={} mean={} p50<={} p99<={} max<={}",
                        entry.name,
                        h.count(),
                        h.sum(),
                        mean,
                        h.quantile_bound(0.50),
                        h.quantile_bound(0.99),
                        h.quantile_bound(1.0),
                    );
                }
            }
        }
        out
    }

    /// Prometheus text exposition (format version 0.0.4), the body of
    /// the ops endpoint's `GET /metrics`: dotted names sanitized to
    /// `[a-zA-Z0-9_]`, one `# TYPE` line per metric, histograms rendered
    /// **cumulatively** as `name_bucket{le="…"}` / `name_sum` /
    /// `name_count`, with the log-histogram bucket upper bounds
    /// ([`Histo::bucket_bounds`]) as the `le` edges. Only buckets that
    /// hold samples emit a line (plus the mandatory `+Inf` edge), so the
    /// output stays proportional to the data, and the cumulative counts
    /// are monotone by construction — the format-validity test parses
    /// this output back and checks both properties.
    #[must_use]
    pub fn render_prom(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for entry in &self.entries {
            let name = prom_name(&entry.name);
            match &entry.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histo(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let hi = Histo::bucket_bounds(i).1;
                        if hi == u64::MAX {
                            // The top bucket's upper edge is infinity;
                            // the explicit +Inf line below carries it.
                            continue;
                        }
                        let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Flat-JSON dump in the same shape as the bench emitter: one
    /// top-level numeric field per scalar, histograms flattened to
    /// `name.count` / `name.sum` / `name.p50` / `name.p99` / `name.max`.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut fields: Vec<(String, u64)> = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            match &entry.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    fields.push((entry.name.clone(), *v));
                }
                MetricValue::Histo(h) => {
                    fields.push((format!("{}.count", entry.name), h.count()));
                    fields.push((format!("{}.sum", entry.name), h.sum()));
                    fields.push((format!("{}.p50", entry.name), h.quantile_bound(0.50)));
                    fields.push((format!("{}.p99", entry.name), h.quantile_bound(0.99)));
                    fields.push((format!("{}.max", entry.name), h.quantile_bound(1.0)));
                }
            }
        }
        let mut out = String::from("{");
        for (i, (name, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{name}\": {v}");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Maps a dotted registry name onto the Prometheus name charset: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit is
/// prefixed with `_` (metric names must not start with a digit).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistrySnapshot {
        let h = Histo::new();
        for v in [0u64, 1, 5, 5, 900, 70_000] {
            h.record(v);
        }
        RegistrySnapshot::from_entries(vec![
            MetricEntry {
                name: "a.counter".into(),
                value: MetricValue::Counter(42),
            },
            MetricEntry {
                name: "b.gauge".into(),
                value: MetricValue::Gauge(7),
            },
            MetricEntry {
                name: "c.histo".into(),
                value: MetricValue::Histo(Box::new(h.snapshot())),
            },
        ])
    }

    #[test]
    fn roundtrip_is_canonical() {
        let s = sample();
        let bytes = s.encode();
        let decoded = RegistrySnapshot::decode(&bytes).expect("decode own encoding");
        assert_eq!(decoded, s);
        assert_eq!(decoded.encode(), bytes, "re-encode differs");
    }

    #[test]
    fn truncation_is_an_error_at_every_boundary() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                RegistrySnapshot::decode(&bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(RegistrySnapshot::decode(&trailing).is_err());
    }

    #[test]
    fn merge_then_subtract_roundtrips_bit_identically() {
        let mut a = sample();
        let before = a.clone();
        let b = sample();
        a.merge(&b).unwrap();
        assert_eq!(a.counter("a.counter"), Some(84));
        a.subtract(&b).unwrap();
        assert_eq!(a, before);
        // Subtracting something never merged is rejected, state unchanged.
        let mut tiny = RegistrySnapshot::from_entries(vec![MetricEntry {
            name: "a.counter".into(),
            value: MetricValue::Counter(1),
        }]);
        let saved = tiny.clone();
        assert_eq!(tiny.subtract(&b), Err(ObsError::Underflow));
        assert_eq!(tiny, saved);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sanitized() {
        let s = sample();
        let prom = s.render_prom();
        assert!(prom.contains("# TYPE a_counter counter\na_counter 42\n"));
        assert!(prom.contains("# TYPE b_gauge gauge\nb_gauge 7\n"));
        assert!(prom.contains("# TYPE c_histo histogram\n"));
        // 6 samples: the +Inf edge and the _count line agree exactly.
        assert!(prom.contains("c_histo_bucket{le=\"+Inf\"} 6\n"));
        assert!(prom.contains("c_histo_count 6\n"));
        // Cumulative counts are monotone across the bucket lines.
        let mut last = 0u64;
        for line in prom.lines().filter(|l| l.starts_with("c_histo_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone cumulative bucket: {line}");
            last = v;
        }
        assert_eq!(prom_name("9weird.na-me"), "_9weird_na_me");
    }

    #[test]
    fn renderers_cover_every_kind() {
        let s = sample();
        let text = s.render();
        assert!(text.contains("counter a.counter 42"));
        assert!(text.contains("gauge   b.gauge 7"));
        assert!(text.contains("histo   c.histo count=6"));
        let json = s.render_json();
        assert!(json.contains("\"a.counter\": 42"));
        assert!(json.contains("\"c.histo.count\": 6"));
    }
}
