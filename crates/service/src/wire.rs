//! The versioned binary wire format for client reports.
//!
//! Every report a client can produce — flat one-hots through any oracle,
//! hierarchical-histogram level reports, budget-split multi-level reports,
//! both Haar variants, and 2-D grid reports — encodes into one
//! self-delimiting *frame*:
//!
//! ```text
//! frame   := magic(2B = "LQ")  version(1B)  kind(1B)  payload        (v1)
//!          | magic(2B = "LQ")  version(1B = 2)  kind(1B)
//!            epoch:varint  payload                                   (v2)
//! varint  := LEB128, at most 10 bytes, no 64-bit overflow
//!
//! kind 0  Flat      payload := oracle_report
//! kind 1  Hh        payload := depth:varint  oracle_report
//! kind 2  HhSplit   payload := layers:varint  oracle_report × layers
//! kind 3  HaarHrr   payload := depth:varint  hrr_report
//! kind 4  HaarOue   payload := depth:varint  unary_report
//! kind 5  Hh2d      payload := dx:varint  dy:varint  oracle_report
//!
//! oracle_report := tag(1B) body
//!   tag 0 OUE   body := unary_report
//!   tag 1 OLH   body := a:varint b:varint range:varint value:varint
//!   tag 2 HRR   body := hrr_report
//!   tag 3 SUE   body := unary_report
//!
//! unary_report := domain:varint  word:8B-LE × ⌈domain/64⌉
//! hrr_report   := domain:varint  index:varint  sign(1B: 0 ⇒ −1, 1 ⇒ +1)
//! ```
//!
//! Frames are concatenable: [`decode_frame`] reports how many bytes it
//! consumed, so a batch is just frames back to back (see
//! [`crate::loadgen::EncodedStream`]). Decoding is total — malformed or
//! truncated input yields a [`WireError`], never a panic, and declared
//! sizes are capped by [`MAX_WIRE_DOMAIN`] before any allocation so a
//! hostile header cannot balloon memory.
//!
//! Version negotiation: the version byte is bumped on any incompatible
//! change; decoders reject versions they do not know
//! ([`WireError::UnsupportedVersion`]) rather than guessing. Version 2
//! extends the header with an epoch id for the windowed streaming path
//! ([`crate::EpochRing`]): [`decode_epoch_frame`] accepts both versions
//! (v1 frames carry no epoch), while the strict v1 [`decode_frame`]
//! rejects v2 frames outright.

use ldp_freq_oracle::{AnyReport, HrrReport, OlhReport, OueReport, UniversalHash};
use ldp_ranges::{HaarHrrReport, HaarOueReport, Hh2dReport, HhReport, HhSplitReport};

use crate::error::WireError;

/// First magic byte (`'L'`).
pub const MAGIC: [u8; 2] = *b"LQ";
/// The original (epoch-less) wire version.
pub const VERSION: u8 = 1;
/// The epoch-extended wire version: identical to v1 except that one
/// varint epoch id sits between the kind byte and the payload. Decoders
/// that only know v1 reject these frames
/// ([`WireError::UnsupportedVersion`]) instead of misparsing the epoch id
/// as payload.
pub const VERSION_EPOCH: u8 = 2;
/// Upper bound on any declared domain/size field — the paper's largest
/// experiments use `D = 2^22`; we leave headroom to `2^26` (the paper's
/// *population* scale) before calling a header hostile.
pub const MAX_WIRE_DOMAIN: u64 = 1 << 26;

const KIND_FLAT: u8 = 0;
const KIND_HH: u8 = 1;
const KIND_HH_SPLIT: u8 = 2;
const KIND_HAAR_HRR: u8 = 3;
const KIND_HAAR_OUE: u8 = 4;
const KIND_HH2D: u8 = 5;

const TAG_OUE: u8 = 0;
const TAG_OLH: u8 = 1;
const TAG_HRR: u8 = 2;
const TAG_SUE: u8 = 3;

// --- primitive writers -------------------------------------------------

/// Appends one LEB128 varint — the writer dual of [`Reader::varint`],
/// exposed so the session-protocol codecs ([`crate::net`]) share the
/// frame format's primitives instead of reimplementing them.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

// --- primitive readers -------------------------------------------------

/// Cursor over a frame buffer, exposed so downstream report types can
/// implement [`WireReport`] too.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer, starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails at end of buffer.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads one LEB128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncation or 64-bit overflow.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 63 && bits > 1 {
                return Err(WireError::BadVarint);
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::BadVarint)
    }

    /// Bytes left to read — bound any size-driven allocation by this
    /// before reserving memory, so a tiny frame with a huge declared size
    /// cannot balloon allocations.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// A varint validated against [`MAX_WIRE_DOMAIN`] and narrowed.
    ///
    /// # Errors
    ///
    /// Fails on a bad varint or a value above the cap.
    pub fn size(&mut self) -> Result<usize, WireError> {
        let v = self.varint()?;
        if v > MAX_WIRE_DOMAIN {
            return Err(WireError::SizeOverCap(v));
        }
        Ok(v as usize)
    }
}

// --- sub-codecs --------------------------------------------------------

fn put_unary(out: &mut Vec<u8>, report: &OueReport) {
    put_varint(out, report.domain() as u64);
    for w in report.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn get_unary(r: &mut Reader<'_>) -> Result<OueReport, WireError> {
    let domain = r.size()?;
    if domain == 0 {
        return Err(WireError::Malformed("unary report over empty domain"));
    }
    let n_words = domain.div_ceil(64);
    // The declared domain implies n_words*8 payload bytes; reject frames
    // too short to hold them *before* allocating, so a ~15-byte hostile
    // header cannot cost an up-to-8-MiB allocation.
    if r.remaining() < n_words * 8 {
        return Err(WireError::Truncated);
    }
    // One bulk read for the whole bit vector: the per-word bounds checks
    // collapse into a single range check and the conversion loop below
    // auto-vectorizes over exact 8-byte chunks.
    let raw = r.bytes(n_words * 8)?;
    let words: Vec<u64> = raw
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect();
    OueReport::try_from_words(domain, words)
        .ok_or(WireError::Malformed("bits set past unary domain"))
}

fn put_hrr(out: &mut Vec<u8>, report: &HrrReport) {
    put_varint(out, report.domain() as u64);
    put_varint(out, report.index() as u64);
    out.push(u8::from(report.bit() > 0));
}

fn get_hrr(r: &mut Reader<'_>) -> Result<HrrReport, WireError> {
    let domain = r.size()?;
    let index = r.size()?;
    if domain == 0 || index >= domain {
        return Err(WireError::Malformed("HRR index outside domain"));
    }
    let sign = match r.u8()? {
        0 => -1i8,
        1 => 1i8,
        _ => return Err(WireError::Malformed("HRR sign byte not 0/1")),
    };
    Ok(HrrReport::from_parts(domain, index, sign))
}

fn put_olh(out: &mut Vec<u8>, report: &OlhReport) {
    let (a, b) = report.hash().parts();
    put_varint(out, a);
    put_varint(out, b);
    put_varint(out, report.hash().range() as u64);
    put_varint(out, report.value() as u64);
}

fn get_olh(r: &mut Reader<'_>) -> Result<OlhReport, WireError> {
    let a = r.varint()?;
    let b = r.varint()?;
    let range = r.size()?;
    let value = r.size()?;
    if range < 2 {
        return Err(WireError::Malformed("OLH hash range below 2"));
    }
    if !(1..ldp_freq_oracle::hash::MERSENNE_P).contains(&a)
        || b >= ldp_freq_oracle::hash::MERSENNE_P
    {
        return Err(WireError::Malformed("OLH hash coefficients out of field"));
    }
    if value >= range {
        return Err(WireError::Malformed("OLH value outside hash range"));
    }
    Ok(OlhReport::from_parts(
        UniversalHash::from_parts(a, b, range),
        value,
    ))
}

fn put_any(out: &mut Vec<u8>, report: &AnyReport) {
    match report {
        AnyReport::Oue(r) => {
            out.push(TAG_OUE);
            put_unary(out, r);
        }
        AnyReport::Olh(r) => {
            out.push(TAG_OLH);
            put_olh(out, r);
        }
        AnyReport::Hrr(r) => {
            out.push(TAG_HRR);
            put_hrr(out, r);
        }
        AnyReport::Sue(r) => {
            out.push(TAG_SUE);
            put_unary(out, r);
        }
    }
}

fn get_any(r: &mut Reader<'_>) -> Result<AnyReport, WireError> {
    match r.u8()? {
        TAG_OUE => Ok(AnyReport::Oue(get_unary(r)?)),
        TAG_OLH => Ok(AnyReport::Olh(get_olh(r)?)),
        TAG_HRR => Ok(AnyReport::Hrr(get_hrr(r)?)),
        TAG_SUE => Ok(AnyReport::Sue(get_unary(r)?)),
        t => Err(WireError::UnknownOracleTag(t)),
    }
}

// --- public trait ------------------------------------------------------

/// A report type with a wire representation.
///
/// `encode_frame` appends one self-delimiting frame; [`decode_frame`]
/// parses one frame from the front of a buffer and returns the bytes it
/// consumed, so concatenated frames stream naturally.
pub trait WireReport: Sized {
    /// The frame's kind byte.
    const KIND: u8;

    /// Appends this report's payload (everything after the kind byte).
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Parses the payload.
    ///
    /// # Errors
    ///
    /// Any malformed payload yields a [`WireError`].
    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Appends one full frame (header + payload) to `out`.
    fn encode_frame(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(Self::KIND);
        self.encode_payload(out);
    }

    /// Encodes one full frame into a fresh buffer.
    fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_frame(&mut out);
        out
    }
}

impl WireReport for AnyReport {
    const KIND: u8 = KIND_FLAT;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_any(out, self);
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        get_any(r)
    }
}

impl WireReport for HhReport {
    const KIND: u8 = KIND_HH;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.depth()));
        put_any(out, self.inner());
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let depth = r.size()? as u32;
        Ok(Self::from_parts(depth, get_any(r)?))
    }
}

impl WireReport for HhSplitReport {
    const KIND: u8 = KIND_HH_SPLIT;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_varint(out, self.layers().len() as u64);
        for layer in self.layers() {
            put_any(out, layer);
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.size()?;
        if n == 0 || n > 64 {
            return Err(WireError::Malformed(
                "split report layer count out of range",
            ));
        }
        let layers = (0..n).map(|_| get_any(r)).collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_layers(layers))
    }
}

impl WireReport for HaarHrrReport {
    const KIND: u8 = KIND_HAAR_HRR;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.depth()));
        put_hrr(out, &self.inner());
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let depth = r.size()? as u32;
        Ok(Self::from_parts(depth, get_hrr(r)?))
    }
}

impl WireReport for HaarOueReport {
    const KIND: u8 = KIND_HAAR_OUE;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.depth()));
        put_unary(out, self.inner());
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let depth = r.size()? as u32;
        Ok(Self::from_parts(depth, get_unary(r)?))
    }
}

impl WireReport for Hh2dReport {
    const KIND: u8 = KIND_HH2D;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        let (dx, dy) = self.depths();
        put_varint(out, u64::from(dx));
        put_varint(out, u64::from(dy));
        put_any(out, self.inner());
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let dx = r.size()? as u32;
        let dy = r.size()? as u32;
        Ok(Self::from_parts(dx, dy, get_any(r)?))
    }
}

/// Decodes one frame of type `T` from the front of `buf`, returning the
/// report and the number of bytes consumed.
///
/// # Errors
///
/// Fails on truncated input, bad magic/version, a kind byte that does not
/// match `T`, or a malformed payload.
pub fn decode_frame<T: WireReport>(buf: &[u8]) -> Result<(T, usize), WireError> {
    let mut r = Reader::new(buf);
    let magic = [r.u8()?, r.u8()?];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    if kind != T::KIND {
        return Err(WireError::UnknownKind(kind));
    }
    let report = T::decode_payload(&mut r)?;
    Ok((report, r.pos))
}

/// Appends one epoch-tagged (version 2) frame to `out`: the v1 header
/// with the version byte bumped and `epoch` spliced in before the
/// payload.
pub fn encode_epoch_frame<T: WireReport>(report: &T, epoch: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_EPOCH);
    out.push(T::KIND);
    put_varint(out, epoch);
    report.encode_payload(out);
}

/// Decodes one frame of type `T` accepting both wire versions, returning
/// the epoch id (`None` for an epoch-less v1 frame), the report, and the
/// number of bytes consumed.
///
/// Decoding stays total: the epoch id is an ordinary varint (truncation
/// and overflow are errors, any 64-bit value is structurally valid — its
/// freshness is the *service's* policy question, not the codec's), and
/// every v1 rejection path applies unchanged.
///
/// # Errors
///
/// Fails on truncated input, bad magic, a version other than 1 or 2, a
/// kind byte that does not match `T`, a malformed epoch varint, or a
/// malformed payload.
pub fn decode_epoch_frame<T: WireReport>(buf: &[u8]) -> Result<(Option<u64>, T, usize), WireError> {
    let mut r = Reader::new(buf);
    let magic = [r.u8()?, r.u8()?];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION && version != VERSION_EPOCH {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    if kind != T::KIND {
        return Err(WireError::UnknownKind(kind));
    }
    let epoch = if version == VERSION_EPOCH {
        Some(r.varint()?)
    } else {
        None
    };
    let report = T::decode_payload(&mut r)?;
    Ok((epoch, report, r.pos))
}

/// Decodes a buffer of back-to-back frames into reports.
///
/// # Errors
///
/// Fails on the first malformed frame; trailing garbage is an error, not
/// silently ignored.
pub fn decode_all<T: WireReport>(mut buf: &[u8]) -> Result<Vec<T>, WireError> {
    let mut reports = Vec::new();
    while !buf.is_empty() {
        let (report, used) = decode_frame::<T>(buf)?;
        reports.push(report);
        buf = &buf[used..];
    }
    Ok(reports)
}

/// Walks a REPORT-style batch (back-to-back raw wire frames, declared
/// `count`) under a negotiated wire version, handing each decoded report
/// — with its optional epoch tag — to `sink` as it is produced. Every
/// frame is decoded straight from its borrowed subslice of `frames`, so
/// a consumer that absorbs in place never materializes the batch: this
/// is the zero-copy spine under both the network REPORT path and the
/// collecting [`crate::storage`] decoder, which therefore reject hostile
/// batches identically.
///
/// Returns the number of frames decoded (equal to `count` on success).
///
/// # Errors
///
/// A malformed frame, a count/payload mismatch, or a `sink` rejection
/// surfaces as [`ServiceError::BadFrame`] with the offending index.
pub(crate) fn for_each_frame<R: WireReport>(
    wire_version: u8,
    count: u64,
    frames: &[u8],
    mut sink: impl FnMut(Option<u64>, R) -> Result<(), crate::error::ServiceError>,
) -> Result<u64, crate::error::ServiceError> {
    let bad =
        |index: usize, source: crate::error::ServiceError| crate::error::ServiceError::BadFrame {
            index,
            report_type: crate::error::report_type_name::<R>(),
            source: Box::new(source),
        };
    let mut decoded = 0u64;
    let mut buf = frames;
    while !buf.is_empty() {
        if decoded >= count {
            return Err(bad(
                count as usize,
                WireError::Malformed("batch holds more frames than declared").into(),
            ));
        }
        let index = decoded as usize;
        let (epoch, report, used) = if wire_version == VERSION_EPOCH {
            decode_epoch_frame::<R>(buf).map_err(|e| bad(index, e.into()))?
        } else {
            let (report, used) = decode_frame::<R>(buf).map_err(|e| bad(index, e.into()))?;
            (None, report, used)
        };
        sink(epoch, report).map_err(|e| bad(index, e))?;
        decoded += 1;
        buf = &buf[used..];
    }
    if decoded < count {
        return Err(bad(
            decoded as usize,
            WireError::Malformed("batch declared more frames than it holds").into(),
        ));
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::{AnyOracle, Epsilon, FrequencyOracle, PointOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip<T: WireReport>(report: &T) -> T {
        let frame = report.to_frame();
        let (decoded, used) = decode_frame::<T>(&frame).expect("roundtrip decode");
        assert_eq!(used, frame.len(), "frame not fully consumed");
        // Re-encoding the decoded report must reproduce the bytes exactly.
        assert_eq!(decoded.to_frame(), frame, "re-encode mismatch");
        decoded
    }

    #[test]
    fn any_report_roundtrips_every_oracle() {
        let mut rng = StdRng::seed_from_u64(401);
        let eps = Epsilon::new(1.1);
        for kind in [
            FrequencyOracle::Oue,
            FrequencyOracle::Olh,
            FrequencyOracle::Hrr,
            FrequencyOracle::Sue,
        ] {
            let oracle = AnyOracle::new(kind, 64, eps).unwrap();
            for v in [0usize, 31, 63] {
                let report = oracle.encode(v, &mut rng).unwrap();
                let decoded = roundtrip(&report);
                // Absorbing original and decoded must agree exactly.
                let mut a = oracle.clone();
                let mut b = oracle.clone();
                a.absorb(&report).unwrap();
                b.absorb(&decoded).unwrap();
                assert_eq!(a.estimate(), b.estimate(), "{kind}");
            }
        }
    }

    #[test]
    fn unary_domain_not_multiple_of_64_roundtrips() {
        let mut rng = StdRng::seed_from_u64(402);
        let oracle = AnyOracle::new(FrequencyOracle::Oue, 37, Epsilon::new(0.9)).unwrap();
        let report = oracle.encode(36, &mut rng).unwrap();
        roundtrip(&report);
    }

    #[test]
    fn truncation_is_an_error_everywhere() {
        let mut rng = StdRng::seed_from_u64(403);
        let oracle = AnyOracle::new(FrequencyOracle::Oue, 128, Epsilon::new(1.1)).unwrap();
        let frame = oracle.encode(5, &mut rng).unwrap().to_frame();
        for cut in 0..frame.len() {
            assert!(
                decode_frame::<AnyReport>(&frame[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn bad_headers_are_rejected() {
        let mut rng = StdRng::seed_from_u64(404);
        let oracle = AnyOracle::new(FrequencyOracle::Hrr, 16, Epsilon::new(1.1)).unwrap();
        let frame = oracle.encode(3, &mut rng).unwrap().to_frame();

        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_frame::<AnyReport>(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = frame.clone();
        bad_version[2] = 99;
        assert!(matches!(
            decode_frame::<AnyReport>(&bad_version),
            Err(WireError::UnsupportedVersion(99))
        ));

        let mut bad_kind = frame.clone();
        bad_kind[3] = 42;
        assert!(matches!(
            decode_frame::<AnyReport>(&bad_kind),
            Err(WireError::UnknownKind(42))
        ));
    }

    #[test]
    fn hostile_sizes_do_not_allocate() {
        // kind=Flat, tag=OUE, domain = 2^40 — must be rejected by the cap,
        // not attempted.
        let mut frame = vec![MAGIC[0], MAGIC[1], VERSION, KIND_FLAT, TAG_OUE];
        put_varint(&mut frame, 1 << 40);
        assert!(matches!(
            decode_frame::<AnyReport>(&frame),
            Err(WireError::SizeOverCap(_))
        ));

        // A domain *under* the cap but far larger than the frame must be
        // rejected as truncated before the word buffer is allocated (the
        // allocation-amplification guard).
        let mut tiny = vec![MAGIC[0], MAGIC[1], VERSION, KIND_FLAT, TAG_OUE];
        put_varint(&mut tiny, MAX_WIRE_DOMAIN);
        assert!(tiny.len() < 16);
        assert!(matches!(
            decode_frame::<AnyReport>(&tiny),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn hrr_sign_and_index_are_validated() {
        let mut frame = vec![MAGIC[0], MAGIC[1], VERSION, KIND_FLAT, TAG_HRR];
        put_varint(&mut frame, 8); // domain
        put_varint(&mut frame, 9); // index out of domain
        frame.push(1);
        assert!(matches!(
            decode_frame::<AnyReport>(&frame),
            Err(WireError::Malformed(_))
        ));

        let mut frame = vec![MAGIC[0], MAGIC[1], VERSION, KIND_FLAT, TAG_HRR];
        put_varint(&mut frame, 8);
        put_varint(&mut frame, 3);
        frame.push(7); // sign byte must be 0/1
        assert!(matches!(
            decode_frame::<AnyReport>(&frame),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn epoch_frames_roundtrip_and_v1_stays_epochless() {
        let mut rng = StdRng::seed_from_u64(406);
        let oracle = AnyOracle::new(FrequencyOracle::Hrr, 32, Epsilon::new(1.1)).unwrap();
        let report = oracle.encode(7, &mut rng).unwrap();

        for epoch in [0u64, 1, 41, u64::MAX] {
            let mut frame = Vec::new();
            encode_epoch_frame(&report, epoch, &mut frame);
            let (got_epoch, decoded, used) = decode_epoch_frame::<AnyReport>(&frame).unwrap();
            assert_eq!(got_epoch, Some(epoch));
            assert_eq!(used, frame.len());
            assert_eq!(decoded.to_frame(), report.to_frame());
            // The strict v1 decoder must refuse the v2 frame, not
            // misparse the epoch varint as payload.
            assert!(matches!(
                decode_frame::<AnyReport>(&frame),
                Err(WireError::UnsupportedVersion(2))
            ));
        }

        // A v1 frame decodes through the epoch-aware entry point with no
        // epoch attached, consuming the same bytes either way.
        let v1 = report.to_frame();
        let (epoch, _, used) = decode_epoch_frame::<AnyReport>(&v1).unwrap();
        assert_eq!(epoch, None);
        assert_eq!(used, v1.len());
    }

    #[test]
    fn hostile_epoch_headers_are_rejected() {
        let mut rng = StdRng::seed_from_u64(407);
        let oracle = AnyOracle::new(FrequencyOracle::Hrr, 16, Epsilon::new(1.1)).unwrap();
        let report = oracle.encode(3, &mut rng).unwrap();
        let mut frame = Vec::new();
        encode_epoch_frame(&report, 99, &mut frame);

        // Every truncation prefix errors — including cuts inside the
        // epoch varint.
        for cut in 0..frame.len() {
            assert!(
                decode_epoch_frame::<AnyReport>(&frame[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }

        // An epoch varint overflowing 64 bits is rejected.
        let mut overflow = vec![MAGIC[0], MAGIC[1], VERSION_EPOCH, KIND_FLAT];
        overflow.extend_from_slice(&[0xFF; 10]);
        assert!(matches!(
            decode_epoch_frame::<AnyReport>(&overflow),
            Err(WireError::BadVarint)
        ));

        // An unknown version is rejected by the epoch-aware decoder too.
        let mut v3 = frame.clone();
        v3[2] = 3;
        assert!(matches!(
            decode_epoch_frame::<AnyReport>(&v3),
            Err(WireError::UnsupportedVersion(3))
        ));

        // Hostile payload sizes stay capped behind the epoch header.
        let mut huge = vec![MAGIC[0], MAGIC[1], VERSION_EPOCH, KIND_FLAT];
        put_varint(&mut huge, 17); // epoch
        huge.push(TAG_OUE);
        put_varint(&mut huge, 1 << 40); // domain over the cap
        assert!(matches!(
            decode_epoch_frame::<AnyReport>(&huge),
            Err(WireError::SizeOverCap(_))
        ));
    }

    #[test]
    fn concatenated_frames_stream() {
        let mut rng = StdRng::seed_from_u64(405);
        let oracle = AnyOracle::new(FrequencyOracle::Sue, 20, Epsilon::new(1.3)).unwrap();
        let mut buf = Vec::new();
        let originals: Vec<AnyReport> = (0..10)
            .map(|i| oracle.encode(i % 20, &mut rng).unwrap())
            .collect();
        for r in &originals {
            r.encode_frame(&mut buf);
        }
        let decoded = decode_all::<AnyReport>(&buf).unwrap();
        assert_eq!(decoded.len(), originals.len());
        for (a, b) in originals.iter().zip(&decoded) {
            assert_eq!(a.to_frame(), b.to_frame());
        }
        // Trailing garbage is an error.
        buf.push(0xFF);
        assert!(decode_all::<AnyReport>(&buf).is_err());
    }
}
