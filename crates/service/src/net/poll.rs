//! Readiness polling for the reactor: a thin `epoll` wrapper on Linux
//! plus a portable fallback, both std-only.
//!
//! The build environment bakes in no external crates (same spirit as the
//! `rand`/`proptest` shims), so the Linux backend declares the four
//! syscalls it needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`) as direct `extern "C"` bindings against the libc that std
//! already links. Everything platform-specific stays inside this module;
//! the reactor sees only [`Poller`], [`Event`], and [`Interest`].
//!
//! The portable backend ([`Poller::new`] with `portable = true`, and the
//! automatic fallback on every non-Linux target) emulates readiness by
//! reporting every registered token ready each tick: all sockets are
//! non-blocking, so a spurious `WouldBlock` costs one syscall and no
//! correctness. It exists so non-Linux builds work and so Linux CI can
//! exercise the exact code path those builds will run.

use std::io;
use std::time::Duration;

/// Token of the accept listener in reactor event streams.
pub(crate) const TOKEN_LISTENER: u64 = u64::MAX;
/// Token reserved for the wake channel (never surfaced as an [`Event`]).
pub(crate) const TOKEN_WAKE: u64 = u64::MAX - 1;

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Readiness to read (or accept).
    pub read: bool,
    /// Readiness to write.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub(crate) const READ: Self = Self {
        read: true,
        write: false,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the source was registered under.
    pub token: u64,
    /// The source is (probably) readable; includes peer hangup, which a
    /// subsequent `read` surfaces as EOF.
    pub readable: bool,
    /// The source is (probably) writable.
    pub writable: bool,
}

/// Something the poller can watch. On Unix this exposes the raw fd; the
/// portable backend tracks tokens only, so elsewhere the trait is empty.
pub(crate) trait Pollable {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd;
}

impl Pollable for std::net::TcpStream {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

impl Pollable for std::net::TcpListener {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

/// The readiness facade: epoll on Linux (unless the portable backend is
/// forced), the tick-based portable backend everywhere else.
pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Portable(portable::Portable),
}

impl Poller {
    /// Opens a poller. `portable` forces the fallback backend (used by
    /// tests to exercise the non-Linux path on Linux CI); `tick` bounds
    /// how long the portable backend sleeps between readiness sweeps.
    pub(crate) fn new(portable: bool, tick: Duration) -> Self {
        #[cfg(target_os = "linux")]
        if !portable {
            if let Ok(ep) = epoll::Epoll::new() {
                return Self::Epoll(ep);
            }
        }
        let _ = portable;
        Self::Portable(portable::Portable::new(tick))
    }

    /// Starts watching `src` under `token`.
    pub(crate) fn register(
        &self,
        src: &impl Pollable,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => ep.ctl(epoll::CTL_ADD, src.raw_fd(), token, interest),
            Self::Portable(p) => {
                p.register(token, interest);
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered source.
    pub(crate) fn reregister(
        &self,
        src: &impl Pollable,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => ep.ctl(epoll::CTL_MOD, src.raw_fd(), token, interest),
            Self::Portable(p) => {
                p.register(token, interest);
                Ok(())
            }
        }
    }

    /// Stops watching a source. Dropping the socket afterwards closes it;
    /// the explicit deregistration keeps the portable backend's token map
    /// in sync with the kernel's view.
    pub(crate) fn deregister(&self, src: &impl Pollable, token: u64) {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => {
                let _ = ep.ctl(
                    epoll::CTL_DEL,
                    src.raw_fd(),
                    token,
                    Interest {
                        read: false,
                        write: false,
                    },
                );
            }
            Self::Portable(p) => p.deregister(token),
        }
    }

    /// Blocks until at least one source is ready, the timeout elapses, or
    /// [`Poller::wake`] is called, appending notifications to `out`
    /// (cleared first). `None` means "no deadline" — the epoll backend
    /// waits indefinitely, the portable backend sweeps every tick.
    pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) {
        out.clear();
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => ep.wait(out, timeout),
            Self::Portable(p) => p.wait(out, timeout),
        }
    }

    /// Interrupts a concurrent [`Poller::wait`] from any thread.
    pub(crate) fn wake(&self) {
        match self {
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => ep.wake(),
            Self::Portable(p) => p.wake(),
        }
    }
}

/// Raises this process's soft open-file limit to its hard limit (Linux
/// only), returning the resulting soft limit. The reactor converts the
/// session ceiling from worker-pool width to file-descriptor count, so
/// high-concurrency harnesses (the `net_concurrency` benchmark) call this
/// first; elsewhere it returns `None` and changes nothing.
#[must_use]
pub fn raise_nofile_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        use std::os::raw::c_int;

        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }
        extern "C" {
            fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
            fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
        }
        const RLIMIT_NOFILE: c_int = 7;

        let mut rl = RLimit { cur: 0, max: 0 };
        // SAFETY: `rl` outlives both calls and matches the kernel's
        // 64-bit rlimit layout on Linux.
        unsafe {
            if getrlimit(RLIMIT_NOFILE, &mut rl) != 0 {
                return None;
            }
            if rl.cur < rl.max {
                let want = RLimit {
                    cur: rl.max,
                    max: rl.max,
                };
                if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                    rl.cur = rl.max;
                }
            }
        }
        Some(rl.cur)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The Linux backend: `epoll` in level-triggered mode plus an
    //! `eventfd` wake channel, bound directly against libc.

    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::{c_int, c_uint, c_void};
    use std::time::Duration;

    use super::{Event, Interest, TOKEN_WAKE};

    // `struct epoll_event` is packed on x86 so the 64-bit data field
    // sits at offset 4; other architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    pub(crate) const CTL_ADD: c_int = 1;
    pub(crate) const CTL_DEL: c_int = 2;
    pub(crate) const CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    pub(crate) struct Epoll {
        ep: OwnedFd,
        wakefd: OwnedFd,
    }

    impl Epoll {
        pub(crate) fn new() -> io::Result<Self> {
            // SAFETY: plain syscalls; negative returns are checked before
            // the fds are adopted.
            let ep = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `ep` is a freshly returned, owned descriptor.
            let ep = unsafe { OwnedFd::from_raw_fd(ep) };
            // SAFETY: as above.
            let wfd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if wfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `wfd` is a freshly returned, owned descriptor.
            let wakefd = unsafe { OwnedFd::from_raw_fd(wfd) };
            let this = Self { ep, wakefd };
            this.ctl(CTL_ADD, this.wakefd.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
            Ok(this)
        }

        pub(crate) fn ctl(
            &self,
            op: c_int,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut mask = 0;
            if interest.read {
                mask |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.write {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: mask,
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event for the duration of the
            // call (DEL ignores it entirely on modern kernels).
            let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) {
            const MAX_EVENTS: usize = 1024;
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 100µs deadline does not busy-spin at 0ms.
                Some(d) => c_int::try_from(d.as_millis().clamp(1, 60_000)).unwrap_or(60_000),
            };
            // SAFETY: the buffer outlives the call and its length bounds
            // `maxevents`.
            let n = unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    buf.as_mut_ptr(),
                    MAX_EVENTS as c_int,
                    timeout_ms,
                )
            };
            // EINTR and transient failures surface as an empty sweep; the
            // reactor re-waits.
            for ev in buf.iter().take(usize::try_from(n).unwrap_or(0)) {
                let (bits, token) = (ev.events, ev.data);
                if token == TOKEN_WAKE {
                    self.drain_wake();
                    continue;
                }
                out.push(Event {
                    token,
                    // Errors and hangups count as readable so the next
                    // read observes the failure/EOF and tears down.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
        }

        pub(crate) fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // SAFETY: valid 8-byte buffer; an EAGAIN (counter saturated)
            // still leaves the fd readable, which is all wake needs.
            let _ = unsafe { write(self.wakefd.as_raw_fd(), one.as_ptr().cast(), one.len()) };
        }

        fn drain_wake(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: valid 8-byte buffer; the fd is non-blocking, so
            // this never hangs and one read resets the counter.
            let _ = unsafe { read(self.wakefd.as_raw_fd(), buf.as_mut_ptr().cast(), buf.len()) };
        }
    }
}

pub(crate) mod portable {
    //! The fallback backend: no kernel readiness at all. Every registered
    //! token is reported ready each sweep; the sweep rate is bounded by
    //! the tick, and [`Portable::wake`] interrupts the sleep early. All
    //! reactor sockets are non-blocking, so spurious readiness costs a
    //! `WouldBlock` and nothing else.

    use std::collections::BTreeMap;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    use super::{Event, Interest};

    struct State {
        interests: BTreeMap<u64, Interest>,
        woken: bool,
    }

    pub(crate) struct Portable {
        state: Mutex<State>,
        cv: Condvar,
        tick: Duration,
    }

    impl Portable {
        pub(crate) fn new(tick: Duration) -> Self {
            Self {
                state: Mutex::new(State {
                    interests: BTreeMap::new(),
                    woken: false,
                }),
                cv: Condvar::new(),
                tick: tick.max(Duration::from_micros(100)),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, State> {
            self.state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub(crate) fn register(&self, token: u64, interest: Interest) {
            self.lock().interests.insert(token, interest);
        }

        pub(crate) fn deregister(&self, token: u64) {
            self.lock().interests.remove(&token);
        }

        pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) {
            let mut s = self.lock();
            if !s.woken {
                let sleep = timeout.unwrap_or(self.tick).min(self.tick);
                let (guard, _) = self
                    .cv
                    .wait_timeout(s, sleep)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                s = guard;
            }
            s.woken = false;
            for (&token, &interest) in &s.interests {
                if interest.read || interest.write {
                    out.push(Event {
                        token,
                        readable: interest.read,
                        writable: interest.write,
                    });
                }
            }
        }

        pub(crate) fn wake(&self) {
            self.lock().woken = true;
            // notify_all, not notify_one: today only the reactor thread
            // waits, but a single lost notification here would stall a
            // non-Linux reactor for a full tick — broadcast is free and
            // immune to a second waiter ever being added.
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// The Linux backend reports accept-readiness and wake interrupts.
    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_listener_readiness() {
        let poller = Poller::new(false, Duration::from_millis(1));
        assert!(matches!(poller, Poller::Epoll(_)), "epoll must be chosen");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(&listener, 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty.
        poller.wait(&mut events, Some(Duration::from_millis(1)));
        assert!(events.iter().all(|e| e.token != 7));

        let _conn = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(500)));
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending connection not reported readable: {events:?}"
        );
        poller.deregister(&listener, 7);
    }

    /// Wake interrupts an indefinite wait (both backends).
    #[test]
    fn wake_interrupts_wait() {
        for portable in [false, true] {
            let poller = std::sync::Arc::new(Poller::new(portable, Duration::from_millis(50)));
            let waker = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                waker.wake();
            });
            let mut events = Vec::new();
            let started = std::time::Instant::now();
            poller.wait(&mut events, Some(Duration::from_secs(5)));
            assert!(
                started.elapsed() < Duration::from_secs(4),
                "wake did not interrupt the wait"
            );
            handle.join().unwrap();
        }
    }

    /// The portable backend reports every registered token each sweep and
    /// drops deregistered ones.
    #[test]
    fn portable_backend_sweeps_registered_tokens() {
        let poller = Poller::new(true, Duration::from_millis(1));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller.register(&listener, 3, Interest::READ).unwrap();
        poller
            .register(
                &listener,
                4,
                Interest {
                    read: true,
                    write: true,
                },
            )
            .unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, None);
        let three = events.iter().find(|e| e.token == 3).unwrap();
        assert!(three.readable && !three.writable);
        let four = events.iter().find(|e| e.token == 4).unwrap();
        assert!(four.readable && four.writable);

        poller.deregister(&listener, 3);
        poller.wait(&mut events, None);
        assert!(events.iter().all(|e| e.token != 3));
    }
}
