//! The readiness-driven session engine behind [`crate::net::LdpServer`].
//!
//! One reactor thread owns every socket: it accepts non-blocking
//! connections, accumulates partial reads into per-session buffers,
//! slices complete length-prefixed envelopes out of them, and hands
//! *batches* of decoded message bodies to a small worker pool (the
//! [`JobQueue`]) that executes them against the shared backend. Workers
//! never touch sockets: each finished [`Job`] comes back as a [`JobDone`]
//! carrying encoded replies, which the reactor flushes with vectored
//! writes through per-session output queues. A session therefore costs
//! one file descriptor and a few buffers — not an OS thread — which is
//! what moves the node's session ceiling from worker-pool width to the
//! file-descriptor limit.
//!
//! Ordering: at most one job per session is in flight at a time, and a
//! job carries the session's queued messages in arrival order, so replies
//! are generated and flushed in exactly the order a blocking
//! request-reply loop would have produced — pipelined clients just stop
//! paying a round trip per message.
//!
//! Backpressure: a session whose inbox (parsed-but-undispatched
//! messages) or output queue grows past its cap has read interest
//! dropped until the backlog drains, and the number of in-flight jobs is
//! bounded by the configured queue depth — fan-in is bounded at every
//! stage, never unbounded.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::net::poll::{Event, Interest, Poller, TOKEN_LISTENER};
use crate::net::proto::{ErrorCode, Hello, RemoteError, ServerMsg, MAX_MESSAGE_BYTES};
use crate::obs::instruments::NetInstruments;
use crate::obs::{TraceEvent, TraceOutcome, TraceRing, TraceStage};

/// Parsed-but-undispatched messages a session may hold before its read
/// interest is shed (per-session pipelining bound).
const INBOX_CAP: usize = 32;
/// Output-queue bytes a session may hold before its read interest is
/// shed — a peer that stops reading its replies stops being read.
const OUT_SOFT_CAP: usize = 8 * 1024 * 1024;
/// Reply chunks gathered into one vectored write.
const MAX_IOV: usize = 64;
/// Stack scratch for one read syscall.
const READ_CHUNK: usize = 16 * 1024;
/// How long accepting pauses after a hard accept failure (EMFILE and
/// friends) — the listener is deregistered for the pause so a
/// level-triggered poller does not busy-loop on the still-pending
/// connection.
const ACCEPT_PAUSE: Duration = Duration::from_millis(50);

/// Wraps an encoded message body in the 4-byte little-endian length
/// envelope the session protocol frames everything with.
pub(crate) fn envelope(body: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&u32::try_from(body.len()).unwrap_or(u32::MAX).to_le_bytes());
    buf.extend_from_slice(body);
    buf
}

/// A batch of complete message bodies from one session, executed by a
/// worker against the backend. An empty body is the hostile-envelope
/// sentinel (declared length zero or over the cap): the executor answers
/// it with a typed protocol error and closes, mirroring the blocking
/// engine's behavior byte for byte.
pub(crate) struct Job {
    /// Slab token of the originating session.
    pub token: u64,
    /// Trace-facing session id.
    pub session: u64,
    /// Negotiated handshake state at dispatch time.
    pub hello: Option<Hello>,
    /// The session entered replication mode (REPLICATE accepted).
    pub repl: bool,
    /// Message bodies in arrival order, each paired with the span id the
    /// reactor assigned at envelope decode. The span follows the message
    /// through worker execute and the storage tiers, so one trace tail
    /// reconstructs a single message's cross-tier timeline.
    pub bodies: Vec<(u64, Vec<u8>)>,
}

/// What a worker hands back after executing a [`Job`].
pub(crate) struct JobDone {
    /// Slab token of the originating session.
    pub token: u64,
    /// Handshake state after the batch (a HELLO inside the batch
    /// upgrades it).
    pub hello: Option<Hello>,
    /// Encoded reply bodies in order; the reactor envelopes and flushes
    /// them.
    pub replies: Vec<Vec<u8>>,
    /// The session entered replication mode during this job.
    pub repl: bool,
    /// A server-push source to install on the session (a REPLICATE
    /// stream). The reactor pumps it whenever the output queue has
    /// headroom.
    pub push: Option<Box<dyn PushSource>>,
    /// Close the session once the replies are flushed (BYE, fatal
    /// protocol error, failed handshake).
    pub close: bool,
}

/// What one [`PushSource::pull`] produced.
pub(crate) enum Pull {
    /// Encoded message bodies to envelope and queue, in order.
    Bodies(Vec<Vec<u8>>),
    /// Nothing available right now — pull again after the next wake or
    /// tick (the source's producer rings [`Poller::wake`] on progress).
    Idle,
    /// The stream is over: optionally queue one final body (a typed
    /// error), then close the session once flushed.
    End(Option<Vec<u8>>),
}

/// A server-push byte source owned by one session — the long-lived
/// half of a replication stream. The reactor pulls whenever the
/// session's output queue is below [`OUT_SOFT_CAP`], so the cap *is*
/// the bounded per-follower send buffer: a slow or stalled follower
/// stops costing memory at the cap, not at the log size. `max_bytes`
/// is the remaining headroom; a pull may return less, never much more
/// than one record over. Dropping the source (session teardown) must
/// release anything it registered.
pub(crate) trait PushSource: Send {
    fn pull(&mut self, max_bytes: usize) -> Pull;
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocking MPMC handoff from the reactor to the worker pool. `pop`
/// blocks until a job arrives or the queue closes; closing drains
/// nothing (the reactor only closes after in-flight work hit zero).
pub(crate) struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    pub(crate) fn push(&self, job: Job) {
        lock(&self.state).0.push_back(job);
        self.ready.notify_one();
    }

    pub(crate) fn pop(&self) -> Option<Job> {
        let mut s = lock(&self.state);
        loop {
            if let Some(job) = s.0.pop_front() {
                return Some(job);
            }
            if s.1 {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn close(&self) {
        lock(&self.state).1 = true;
        self.ready.notify_all();
    }
}

/// State shared between the reactor thread, the worker pool, and the
/// server handle: the job handoff, the completion mailbox, the poller
/// (whose `wake` is the completion doorbell), and the shutdown flag.
pub(crate) struct ReactorShared {
    /// Reactor → workers.
    pub jobs: JobQueue,
    /// Workers → reactor; unbounded so a worker can never deadlock
    /// against a full completion channel while the reactor is blocked.
    pub completions: Mutex<Vec<JobDone>>,
    /// The readiness source; also the reactor's doorbell.
    pub poller: Poller,
    /// Set by [`crate::net::LdpServer::shutdown`]; flips the reactor
    /// into its drain loop.
    pub shutdown: AtomicBool,
}

impl ReactorShared {
    /// Delivers a finished job back to the reactor and rings it.
    pub(crate) fn complete(&self, done: JobDone) {
        lock(&self.completions).push(done);
        self.poller.wake();
    }
}

/// Reactor tuning derived from [`crate::net::NetConfig`].
pub(crate) struct ReactorKnobs {
    /// Poll tick — bounds how stale the shutdown flag and idle clocks
    /// can get.
    pub idle_poll: Duration,
    /// Mid-message patience during drain, in ticks of `idle_poll`.
    pub drain_patience: u32,
    /// Evict sessions quiescent for longer than this (off when `None`).
    pub idle_timeout: Option<Duration>,
    /// Max jobs in flight across all sessions.
    pub inflight_cap: usize,
}

struct Session {
    stream: TcpStream,
    /// Trace-facing id (monotonic accept order).
    id: u64,
    /// Partial-read accumulator: raw bytes, possibly mid-envelope.
    inbuf: Vec<u8>,
    /// Complete message bodies awaiting dispatch, each with its
    /// decode-assigned span id.
    inbox: VecDeque<(u64, Vec<u8>)>,
    /// Enveloped replies awaiting flush.
    outq: VecDeque<Vec<u8>>,
    /// Bytes of `outq[0]` already written.
    out_head: usize,
    /// Total bytes queued in `outq` (backpressure accounting).
    out_bytes: usize,
    /// Negotiated handshake, updated from [`JobDone`].
    hello: Option<Hello>,
    /// The session is in replication mode (only REPL_ACK/BYE accepted).
    repl: bool,
    /// Installed push stream (replication records), pumped while the
    /// output queue has headroom.
    push: Option<Box<dyn PushSource>>,
    /// A job for this session is in flight.
    busy: bool,
    /// Close once `outq` flushes (BYE, fatal error, idle eviction).
    closing: bool,
    /// Read side saw EOF, a read error, or a hostile envelope.
    read_gone: bool,
    /// Write side failed; nothing further can be delivered.
    write_dead: bool,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// Last byte received (idle-eviction clock).
    last_rx: Instant,
    /// Last byte moved either way (drain-patience clock).
    progress_at: Instant,
}

impl Session {
    fn quiescent(&self) -> bool {
        !self.busy
            && self.inbox.is_empty()
            && self.inbuf.is_empty()
            && self.outq.is_empty()
            && !self.closing
    }
}

struct Slot {
    gen: u32,
    sess: Option<Session>,
}

fn token_of(gen: u32, idx: usize) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

/// The reactor thread's state. Constructed by the server, consumed by
/// [`Reactor::run`] on a dedicated thread.
pub(crate) struct Reactor {
    listener: TcpListener,
    shared: Arc<ReactorShared>,
    knobs: ReactorKnobs,
    obs: NetInstruments,
    trace: Option<Arc<TraceRing>>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    open: usize,
    inflight: usize,
    next_id: u64,
    /// Next span id; spans are per-server monotone so ids from different
    /// sessions never collide. Starts at 1 — span 0 is the "no span"
    /// sentinel used by events not tied to a decoded message.
    next_span: u64,
    /// `Some(deadline)` while accepting is paused after a hard accept
    /// error; the listener is re-registered once the deadline passes.
    accept_paused_until: Option<Instant>,
    listener_registered: bool,
}

impl Reactor {
    /// Wires a reactor over an already-bound non-blocking listener and
    /// registers it with the poller.
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<ReactorShared>,
        knobs: ReactorKnobs,
        obs: NetInstruments,
        trace: Option<Arc<TraceRing>>,
    ) -> std::io::Result<Self> {
        shared
            .poller
            .register(&listener, TOKEN_LISTENER, Interest::READ)?;
        Ok(Self {
            listener,
            shared,
            knobs,
            obs,
            trace,
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            inflight: 0,
            next_id: 0,
            next_span: 1,
            accept_paused_until: None,
            listener_registered: true,
        })
    }

    /// The event loop. Runs until shutdown has been requested *and*
    /// every session is torn down with no job in flight, then closes the
    /// job queue so the workers exit.
    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let draining = self
                .shared
                .shutdown
                .load(std::sync::atomic::Ordering::SeqCst);
            if draining {
                self.unregister_listener();
            } else {
                self.maybe_resume_accepting();
            }
            self.shared
                .poller
                .wait(&mut events, Some(self.knobs.idle_poll));
            let done = std::mem::take(&mut *lock(&self.shared.completions));
            for d in done {
                self.apply(d);
            }
            for &ev in &events {
                if ev.token == TOKEN_LISTENER {
                    if !draining {
                        self.accept_ready();
                    }
                } else {
                    self.session_event(ev);
                }
            }
            self.dispatch_ready();
            if draining {
                self.drain_tick();
                if self.open == 0 && self.inflight == 0 {
                    break;
                }
            } else {
                self.pump_push_all();
                if self.knobs.idle_timeout.is_some() {
                    self.evict_idle();
                }
            }
        }
        self.shared.jobs.close();
    }

    fn unregister_listener(&mut self) {
        if self.listener_registered {
            self.shared
                .poller
                .deregister(&self.listener, TOKEN_LISTENER);
            self.listener_registered = false;
        }
    }

    fn maybe_resume_accepting(&mut self) {
        if let Some(deadline) = self.accept_paused_until {
            if Instant::now() >= deadline {
                match self
                    .shared
                    .poller
                    .register(&self.listener, TOKEN_LISTENER, Interest::READ)
                {
                    Ok(()) => {
                        self.accept_paused_until = None;
                        self.listener_registered = true;
                    }
                    Err(_) => {
                        self.accept_paused_until = Some(Instant::now() + ACCEPT_PAUSE);
                    }
                }
            }
        }
    }

    /// Accepts until the listener would block. A hard failure (EMFILE
    /// under fd pressure being the realistic one) pauses accepting for
    /// [`ACCEPT_PAUSE`] instead of spinning on a level-triggered
    /// readiness that cannot be consumed.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.unregister_listener();
                    self.accept_paused_until = Some(Instant::now() + ACCEPT_PAUSE);
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            // Counted as a served-and-closed session so opened == closed
            // stays an invariant (the blocking engine did the same for a
            // connection that failed socket setup).
            self.obs.sessions_opened.incr();
            self.obs.sessions_closed.incr();
            return;
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot { gen: 0, sess: None });
            self.slots.len() - 1
        });
        let gen = self.slots[idx].gen;
        let token = token_of(gen, idx);
        debug_assert!(token < TOKEN_WAKE_GUARD, "slab token hit a reserved value");
        if self
            .shared
            .poller
            .register(&stream, token, Interest::READ)
            .is_err()
        {
            self.free.push(idx);
            self.obs.sessions_opened.incr();
            self.obs.sessions_closed.incr();
            return;
        }
        let now = Instant::now();
        let id = self.next_id;
        self.next_id += 1;
        self.slots[idx].sess = Some(Session {
            stream,
            id,
            inbuf: Vec::new(),
            inbox: VecDeque::new(),
            outq: VecDeque::new(),
            out_head: 0,
            out_bytes: 0,
            hello: None,
            repl: false,
            push: None,
            busy: false,
            closing: false,
            read_gone: false,
            write_dead: false,
            registered: Interest::READ,
            last_rx: now,
            progress_at: now,
        });
        self.open += 1;
        self.obs.sessions_opened.incr();
        self.obs.sessions_open.set(self.open as u64);
    }

    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = usize::try_from(token & 0xFFFF_FFFF).ok()?;
        let gen = u32::try_from(token >> 32).ok()?;
        let slot = self.slots.get(idx)?;
        (slot.gen == gen && slot.sess.is_some()).then_some(idx)
    }

    fn session_event(&mut self, ev: Event) {
        let Some(idx) = self.resolve(ev.token) else {
            // Stale token: the session was torn down after the event was
            // harvested (or the slot was even reused — the generation
            // tag is what makes reuse safe to ignore).
            return;
        };
        if ev.readable {
            self.do_read(idx);
        }
        if self.slots[idx].sess.is_some() && ev.writable {
            self.do_flush(idx);
        }
        if self.slots[idx].sess.is_some() {
            self.update_interest(idx);
            self.maybe_teardown(idx);
        }
    }

    /// Drains the socket into the session's partial-read buffer, then
    /// slices complete envelopes out of it.
    fn do_read(&mut self, idx: usize) {
        {
            let s = self.slots[idx].sess.as_mut().expect("resolved session");
            let mut buf = [0u8; READ_CHUNK];
            loop {
                if s.read_gone || s.closing {
                    break;
                }
                // Backpressure: stop pulling bytes while the inbox or
                // output queue is saturated; interest recomputation will
                // also shed read readiness until the backlog drains.
                if s.inbox.len() >= INBOX_CAP || s.out_bytes >= OUT_SOFT_CAP {
                    break;
                }
                match s.stream.read(&mut buf) {
                    Ok(0) => {
                        s.read_gone = true;
                        break;
                    }
                    Ok(n) => {
                        s.inbuf.extend_from_slice(&buf[..n]);
                        let now = Instant::now();
                        s.last_rx = now;
                        s.progress_at = now;
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        s.read_gone = true;
                        break;
                    }
                }
            }
        }
        self.parse_inbuf(idx);
    }

    /// Extracts complete envelopes into the inbox, assigning each one a
    /// fresh span id (and recording the span's Decode arrival event —
    /// `ns` 0, it is a marker, not a duration). A hostile declared
    /// length (zero or over the cap) enqueues the empty-body sentinel —
    /// sequenced *after* every previously queued message, exactly where
    /// the blocking engine would have tripped over it — and stops the
    /// read side for good.
    fn parse_inbuf(&mut self, idx: usize) {
        let (mut in_bytes, mut hw) = (0u64, 0u64);
        {
            let s = self.slots[idx].sess.as_mut().expect("resolved session");
            let mut off = 0;
            while !s.closing && s.inbox.len() < INBOX_CAP {
                let rest = &s.inbuf[off..];
                if rest.len() < 4 {
                    break;
                }
                let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                if len == 0 || len > MAX_MESSAGE_BYTES {
                    let span = self.next_span;
                    self.next_span += 1;
                    if let Some(trace) = &self.trace {
                        trace.record(TraceEvent {
                            span,
                            session: s.id,
                            stage: TraceStage::Decode,
                            msg_type: 0,
                            outcome: TraceOutcome::Error,
                            ns: 0,
                        });
                    }
                    s.inbox.push_back((span, Vec::new()));
                    s.read_gone = true;
                    s.inbuf.clear();
                    off = 0;
                    break;
                }
                if rest.len() < 4 + len {
                    break;
                }
                let body = rest[4..4 + len].to_vec();
                let span = self.next_span;
                self.next_span += 1;
                if let Some(trace) = &self.trace {
                    trace.record(TraceEvent {
                        span,
                        session: s.id,
                        stage: TraceStage::Decode,
                        msg_type: body.first().copied().unwrap_or(0),
                        outcome: TraceOutcome::Ok,
                        ns: 0,
                    });
                }
                s.inbox.push_back((span, body));
                // Envelope + body, counted once decoded off the socket —
                // same accounting point as the blocking engine.
                in_bytes += 4 + len as u64;
                off += 4 + len;
            }
            if off > 0 {
                s.inbuf.drain(..off);
            }
            hw = hw.max(s.inbox.len() as u64);
        }
        if in_bytes > 0 {
            self.obs.bytes_in.add(in_bytes);
        }
        self.obs.queue_depth_hw.record_max(hw);
    }

    /// Flushes the output queue with vectored writes until it would
    /// block or empties.
    fn do_flush(&mut self, idx: usize) {
        let mut out_bytes = 0u64;
        {
            let s = self.slots[idx].sess.as_mut().expect("resolved session");
            while !s.outq.is_empty() && !s.write_dead {
                let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(s.outq.len().min(MAX_IOV));
                for (k, chunk) in s.outq.iter().take(MAX_IOV).enumerate() {
                    let from = if k == 0 { s.out_head } else { 0 };
                    iov.push(IoSlice::new(&chunk[from..]));
                }
                match s.stream.write_vectored(&iov) {
                    Ok(0) => {
                        s.write_dead = true;
                    }
                    Ok(mut n) => {
                        out_bytes += n as u64;
                        s.out_bytes -= n.min(s.out_bytes);
                        s.progress_at = Instant::now();
                        while n > 0 {
                            let rem = s.outq[0].len() - s.out_head;
                            if n >= rem {
                                n -= rem;
                                s.out_head = 0;
                                s.outq.pop_front();
                            } else {
                                s.out_head += n;
                                n = 0;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        s.write_dead = true;
                    }
                }
            }
        }
        if out_bytes > 0 {
            self.obs.bytes_out.add(out_bytes);
        }
    }

    /// Recomputes and (only when changed) re-registers poller interest.
    fn update_interest(&mut self, idx: usize) {
        let token = token_of(self.slots[idx].gen, idx);
        let Some(s) = self.slots[idx].sess.as_mut() else {
            return;
        };
        let read = !s.read_gone
            && !s.closing
            && !s.write_dead
            && s.inbox.len() < INBOX_CAP
            && s.out_bytes < OUT_SOFT_CAP;
        let write = !s.outq.is_empty() && !s.write_dead;
        let want = Interest { read, write };
        if want == s.registered {
            return;
        }
        match self.shared.poller.reregister(&s.stream, token, want) {
            Ok(()) => s.registered = want,
            Err(_) => {
                // The fd is unusable; mark both sides dead so the next
                // teardown check reclaims the session.
                s.read_gone = true;
                s.write_dead = true;
            }
        }
    }

    /// Hands a ready session's queued messages to the worker pool — the
    /// whole inbox as one job, one job in flight per session.
    fn dispatch_ready(&mut self) {
        for idx in 0..self.slots.len() {
            if self.inflight >= self.knobs.inflight_cap {
                break;
            }
            let gen = self.slots[idx].gen;
            let Some(s) = self.slots[idx].sess.as_mut() else {
                continue;
            };
            if s.busy || s.closing || s.write_dead || s.inbox.is_empty() {
                continue;
            }
            let bodies: Vec<(u64, Vec<u8>)> = s.inbox.drain(..).collect();
            s.busy = true;
            let job = Job {
                token: token_of(gen, idx),
                session: s.id,
                hello: s.hello,
                repl: s.repl,
                bodies,
            };
            self.inflight += 1;
            self.shared.jobs.push(job);
        }
    }

    /// Applies one finished job: reply enqueue, handshake upgrade,
    /// close-after-flush, then an immediate flush attempt and a fresh
    /// look at the inbox (bytes may have queued behind the cap).
    fn apply(&mut self, done: JobDone) {
        self.inflight -= 1;
        let Some(idx) = self.resolve(done.token) else {
            return;
        };
        {
            let s = self.slots[idx].sess.as_mut().expect("resolved session");
            s.busy = false;
            s.hello = done.hello;
            s.repl |= done.repl;
            if done.push.is_some() {
                s.push = done.push;
            }
            s.closing |= done.close;
            for body in &done.replies {
                let env = envelope(body);
                s.out_bytes += env.len();
                s.outq.push_back(env);
            }
        }
        self.parse_inbuf(idx);
        self.pump_push(idx);
        self.do_flush(idx);
        self.update_interest(idx);
        self.maybe_teardown(idx);
    }

    /// Pulls from every session's installed push stream (one sweep per
    /// event-loop iteration — the hub's append waker rings the poller,
    /// so a fresh record is pumped on the very next iteration).
    fn pump_push_all(&mut self) {
        for idx in 0..self.slots.len() {
            let pumpable = self.slots[idx]
                .sess
                .as_ref()
                .is_some_and(|s| s.push.is_some());
            if !pumpable {
                continue;
            }
            self.pump_push(idx);
            self.do_flush(idx);
            self.update_interest(idx);
            self.maybe_teardown(idx);
        }
    }

    /// Fills the session's output queue from its push stream up to the
    /// [`OUT_SOFT_CAP`] headroom — the bounded per-follower send buffer.
    /// An ended stream queues its final body (if any) and closes the
    /// session once flushed.
    fn pump_push(&mut self, idx: usize) {
        loop {
            let Some(s) = self.slots[idx].sess.as_mut() else {
                return;
            };
            if s.push.is_none() || s.closing || s.write_dead || s.out_bytes >= OUT_SOFT_CAP {
                return;
            }
            let budget = OUT_SOFT_CAP - s.out_bytes;
            let Some(push) = s.push.as_mut() else {
                return;
            };
            match push.pull(budget) {
                Pull::Bodies(bodies) => {
                    if bodies.is_empty() {
                        return;
                    }
                    for body in &bodies {
                        let env = envelope(body);
                        s.out_bytes += env.len();
                        s.outq.push_back(env);
                    }
                }
                Pull::Idle => return,
                Pull::End(last) => {
                    if let Some(body) = last {
                        let env = envelope(&body);
                        s.out_bytes += env.len();
                        s.outq.push_back(env);
                    }
                    s.push = None;
                    s.closing = true;
                    return;
                }
            }
        }
    }

    /// Tears the session down when nothing further can or should happen:
    /// a protocol-initiated close whose replies flushed (or whose peer
    /// stopped reading), a dead write side, or a gone read side with no
    /// work left.
    fn maybe_teardown(&mut self, idx: usize) {
        let Some(s) = self.slots[idx].sess.as_ref() else {
            return;
        };
        if s.busy {
            return;
        }
        let flushed = s.outq.is_empty();
        let done = s.write_dead
            || (s.closing && flushed)
            || (s.read_gone && s.inbox.is_empty() && flushed);
        if done {
            self.teardown(idx);
        }
    }

    fn teardown(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        let s = slot.sess.take().expect("teardown of a live session");
        let token = token_of(slot.gen, idx);
        slot.gen = slot.gen.wrapping_add(1);
        self.shared.poller.deregister(&s.stream, token);
        // A peer-initiated end (EOF or read error, not a BYE/ERROR close
        // we decided on) is the Disconnect trace event.
        if s.read_gone && !s.closing {
            if let Some(trace) = &self.trace {
                trace.record(TraceEvent {
                    span: 0,
                    session: s.id,
                    stage: TraceStage::Execute,
                    msg_type: 0,
                    outcome: TraceOutcome::Disconnect,
                    ns: 0,
                });
            }
        }
        drop(s);
        self.free.push(idx);
        self.open -= 1;
        self.obs.sessions_closed.incr();
        self.obs.sessions_open.set(self.open as u64);
    }

    /// One drain sweep: quiescent sessions close immediately (the
    /// blocking engine closed them at their next idle tick); sessions
    /// with a half-received message or unflushed replies get bounded
    /// patience — `drain_patience` ticks without a byte of progress and
    /// they are abandoned, so a stalled peer cannot hold shutdown
    /// hostage.
    fn drain_tick(&mut self) {
        let patience = self
            .knobs
            .idle_poll
            .saturating_mul(self.knobs.drain_patience.max(1));
        for idx in 0..self.slots.len() {
            let Some(s) = self.slots[idx].sess.as_ref() else {
                continue;
            };
            if s.busy || !s.inbox.is_empty() {
                continue;
            }
            let quiescent = s.outq.is_empty() && s.inbuf.is_empty() && !s.closing;
            if quiescent || s.progress_at.elapsed() > patience {
                self.teardown(idx);
            }
        }
    }

    /// Evicts sessions that have been fully quiescent past the idle
    /// timeout: a typed `IdleTimeout` error is queued, the session
    /// closes once it flushes, and the eviction never races a request —
    /// busy or backlogged sessions (an in-flight job, parsed-but-
    /// undispatched messages, or unflushed replies) are by definition
    /// not idle, and neither is a session whose *write* side moved bytes
    /// recently: a slow reader that just drained its reply backlog gets
    /// a full timeout of quiet before eviction, not an instant cut the
    /// moment its queue empties (`progress_at` stamps both directions,
    /// `last_rx` only reads). Replication sessions are never idle — the
    /// push stream is the work.
    fn evict_idle(&mut self) {
        let Some(timeout) = self.knobs.idle_timeout else {
            return;
        };
        for idx in 0..self.slots.len() {
            let evict = match self.slots[idx].sess.as_ref() {
                Some(s) => {
                    s.quiescent()
                        && s.push.is_none()
                        && s.last_rx.elapsed() > timeout
                        && s.progress_at.elapsed() > timeout
                }
                None => false,
            };
            if !evict {
                continue;
            }
            {
                let s = self.slots[idx].sess.as_mut().expect("resolved session");
                let body = ServerMsg::Error(RemoteError::new(
                    ErrorCode::IdleTimeout,
                    None,
                    format!("session idle past the {}ms timeout", timeout.as_millis()),
                ))
                .encode();
                let env = envelope(&body);
                s.out_bytes += env.len();
                s.outq.push_back(env);
                s.closing = true;
            }
            self.do_flush(idx);
            self.update_interest(idx);
            self.maybe_teardown(idx);
        }
    }
}

/// Guard bound for slab tokens: both reserved tokens live at the very
/// top of the `u64` space, unreachable for any realistic slab.
const TOKEN_WAKE_GUARD: u64 = u64::MAX - 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_prefixes_length_little_endian() {
        let env = envelope(&[0xAA, 0xBB, 0xCC]);
        assert_eq!(env, vec![3, 0, 0, 0, 0xAA, 0xBB, 0xCC]);
    }

    #[test]
    fn job_queue_pops_in_order_and_drains_after_close() {
        let q = JobQueue::new();
        for k in 0..3u64 {
            q.push(Job {
                token: k,
                session: k,
                hello: None,
                repl: false,
                bodies: Vec::new(),
            });
        }
        q.close();
        assert_eq!(q.pop().map(|j| j.token), Some(0));
        assert_eq!(q.pop().map(|j| j.token), Some(1));
        assert_eq!(q.pop().map(|j| j.token), Some(2));
        assert!(q.pop().is_none());

        // A closed queue unblocks waiting poppers.
        let q = std::sync::Arc::new(JobQueue::new());
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(h.join().unwrap());
    }

    #[test]
    fn token_packing_round_trips() {
        let t = token_of(7, 42);
        assert_eq!(t & 0xFFFF_FFFF, 42);
        assert_eq!(t >> 32, 7);
        assert!(t < TOKEN_WAKE_GUARD);
    }
}
