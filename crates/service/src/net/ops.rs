//! The plain-HTTP ops endpoint ([`crate::net::NetConfig::ops_addr`]).
//!
//! A deliberately minimal, dependency-free HTTP/1.1 listener on its own
//! thread, serving three GET routes straight from the shared telemetry:
//!
//! - `GET /metrics` — the Prometheus text exposition
//!   ([`RegistrySnapshot::render_prom`]) of a fresh registry snapshot,
//! - `GET /health` — the derived component-health report as JSON
//!   ([`crate::obs::HealthReport::render_json`]); the status code is
//!   `200` for a `Healthy`/`Degraded` node and `503` for `Unhealthy`,
//!   so a load balancer needs nothing but the code,
//! - `GET /metrics/range` — the time-series ring as JSON
//!   ([`crate::obs::MetricsRange::render_json`]).
//!
//! The parser is total in the same sense as the session protocol's:
//! arbitrary bytes produce a typed status code (400/404/405), never a
//! panic, and the request head is capped before buffering. Connections
//! are served sequentially — the ops plane is a scrape target polled a
//! few times a minute, not a data path — and every response closes the
//! connection, so the handler holds no per-client state.
//!
//! [`RegistrySnapshot::render_prom`]: crate::obs::RegistrySnapshot::render_prom

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::obs::health::evaluate;
use crate::obs::instruments::OpsInstruments;
use crate::obs::{
    HealthState, HealthThresholds, MetricsRegistry, TimeSeriesRing, MAX_RANGE_SAMPLES,
};

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Request-head cap: a scrape request line plus a handful of headers.
/// Anything longer is hostile and answered with 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout — a stalled scraper cannot hold the
/// (single-threaded) listener hostage for longer than this.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Everything a request handler reads from. One `Arc` bundle so the
/// listener thread's closure captures a single value.
struct OpsShared {
    registry: Arc<MetricsRegistry>,
    ring: Arc<TimeSeriesRing>,
    thresholds: HealthThresholds,
    obs: OpsInstruments,
}

/// The running ops listener: a bound address and a joinable thread.
/// Dropping stops and joins it.
pub(crate) struct OpsListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OpsListener {
    /// Binds the ops endpoint and starts its accept thread.
    pub(crate) fn start(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        ring: Arc<TimeSeriesRing>,
        thresholds: HealthThresholds,
        obs: OpsInstruments,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let shared = OpsShared {
            registry,
            ring,
            thresholds,
            obs,
        };
        let handle = std::thread::Builder::new()
            .name("ldp-ops-http".into())
            .spawn(move || accept_loop(&listener, &flag, &shared))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port 0 resolves to a real port here).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the listener thread.
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsListener {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, shared: &OpsShared) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // WouldBlock (idle) and hard failures (EMFILE) alike: sleep a
            // tick and re-check the flag — the scrape plane never spins.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves one connection: read a bounded request head, route, answer,
/// close. I/O failures are swallowed by the caller — a scraper that
/// hangs up mid-response costs nothing.
fn serve(mut stream: TcpStream, shared: &OpsShared) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = read_head(&mut stream)?;
    shared.obs.http_requests.incr();
    let (status, content_type, body) = respond(&head, shared);
    if status != 200 {
        shared.obs.http_errors.incr();
    }
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the request head (`\r\n\r\n`) or the cap.
/// A peer that sends more than [`MAX_REQUEST_BYTES`] before finishing
/// its head gets whatever was buffered — the parser will answer 400.
fn read_head(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            return Ok(head);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(head),
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Routes one parsed request to its body. Never panics: every failure
/// mode is a `(status, type, body)` triple.
fn respond(head: &[u8], shared: &OpsShared) -> (u16, &'static str, String) {
    let path = match parse_http_request(head) {
        Ok(path) => path,
        Err(status) => return (status, "text/plain; charset=utf-8", format!("{status}\n")),
    };
    // Strip any query string: scrape tooling appends cache-busters.
    let route = path.split('?').next().unwrap_or(path);
    match route {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            shared.registry.snapshot().render_prom(),
        ),
        "/health" => {
            let report = evaluate(&shared.registry.snapshot(), &shared.thresholds);
            let status = if report.verdict() == HealthState::Unhealthy {
                503
            } else {
                200
            };
            (status, "application/json", report.render_json())
        }
        "/metrics/range" => (
            200,
            "application/json",
            shared.ring.range(MAX_RANGE_SAMPLES).render_json(),
        ),
        _ => (404, "text/plain; charset=utf-8", "404\n".to_string()),
    }
}

/// Parses the request line of an HTTP/1.x head. Total: arbitrary bytes
/// yield the status code to answer with (400 for anything that is not a
/// well-formed `METHOD SP PATH SP HTTP/1.x` line, 405 for a well-formed
/// non-GET), never a panic.
pub(crate) fn parse_http_request(head: &[u8]) -> Result<&str, u16> {
    let line_end = head.windows(2).position(|w| w == b"\r\n").ok_or(400u16)?;
    let line = std::str::from_utf8(&head[..line_end]).map_err(|_| 400u16)?;
    let mut parts = line.split(' ');
    let method = parts.next().ok_or(400u16)?;
    let path = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") || path.is_empty() {
        return Err(400);
    }
    if !path.starts_with('/') {
        return Err(400);
    }
    if method != "GET" {
        return Err(405);
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_or_fail_with_typed_statuses() {
        assert_eq!(
            parse_http_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Ok("/metrics")
        );
        assert_eq!(
            parse_http_request(b"GET /metrics/range?x=1 HTTP/1.0\r\n\r\n"),
            Ok("/metrics/range?x=1")
        );
        assert_eq!(
            parse_http_request(b"POST /metrics HTTP/1.1\r\n\r\n"),
            Err(405)
        );
        assert_eq!(parse_http_request(b"PUT / HTTP/1.1\r\n\r\n"), Err(405));
        // No CRLF, bad UTF-8, missing parts, extra parts, bad version,
        // relative path: all 400.
        assert_eq!(parse_http_request(b"GET /metrics HTTP/1.1"), Err(400));
        assert_eq!(parse_http_request(&[0xFF, 0xFE, b'\r', b'\n']), Err(400));
        assert_eq!(parse_http_request(b"GET\r\n\r\n"), Err(400));
        assert_eq!(parse_http_request(b"GET /a b HTTP/1.1\r\n\r\n"), Err(400));
        assert_eq!(parse_http_request(b"GET /metrics SPDY/3\r\n\r\n"), Err(400));
        assert_eq!(
            parse_http_request(b"GET metrics HTTP/1.1\r\n\r\n"),
            Err(400)
        );
        assert_eq!(parse_http_request(b"GET  HTTP/1.1\r\n\r\n"), Err(400));
        assert_eq!(parse_http_request(b""), Err(400));
    }

    #[test]
    fn routes_answer_from_live_telemetry() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("t.hits").add(3);
        let ring = Arc::new(TimeSeriesRing::new(4, Duration::from_millis(100)));
        ring.push(registry.snapshot());
        let shared = OpsShared {
            registry: Arc::clone(&registry),
            ring,
            thresholds: HealthThresholds::default(),
            obs: OpsInstruments::register(&registry),
        };
        let (status, ct, body) = respond(b"GET /metrics HTTP/1.1\r\n\r\n", &shared);
        assert_eq!(status, 200);
        assert!(ct.starts_with("text/plain"));
        assert!(body.contains("t_hits 3"));
        let (status, ct, body) = respond(b"GET /health HTTP/1.1\r\n\r\n", &shared);
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        assert!(body.contains("\"verdict\""));
        let (status, _, body) = respond(b"GET /metrics/range HTTP/1.1\r\n\r\n", &shared);
        assert_eq!(status, 200);
        assert!(body.contains("\"samples\""));
        let (status, _, _) = respond(b"GET /nope HTTP/1.1\r\n\r\n", &shared);
        assert_eq!(status, 404);
        let (status, _, _) = respond(b"DELETE /metrics HTTP/1.1\r\n\r\n", &shared);
        assert_eq!(status, 405);
    }

    #[test]
    fn unhealthy_verdicts_flip_the_health_status_code() {
        let registry = Arc::new(MetricsRegistry::new());
        // A wedged storage tier is Unhealthy by definition.
        registry
            .gauge(crate::obs::instruments::names::STORAGE_WEDGED)
            .set(1);
        let shared = OpsShared {
            registry: Arc::clone(&registry),
            ring: Arc::new(TimeSeriesRing::new(2, Duration::from_secs(1))),
            thresholds: HealthThresholds::default(),
            obs: OpsInstruments::register(&registry),
        };
        let (status, _, body) = respond(b"GET /health HTTP/1.1\r\n\r\n", &shared);
        assert_eq!(status, 503);
        assert!(body.contains("\"verdict\": \"Unhealthy\""));
    }

    mod parser_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary byte soup never panics the request parser:
            /// every outcome is a path or a typed status code, and
            /// prepending a well-formed request line always parses.
            #[test]
            fn arbitrary_bytes_never_panic_the_http_parser(
                bytes in proptest::collection::vec(0u64..256, 0..512),
            ) {
                let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
                match parse_http_request(&bytes) {
                    Ok(path) => prop_assert!(path.starts_with('/')),
                    Err(status) => prop_assert!(status == 400 || status == 405),
                }
                let mut framed = b"GET /metrics HTTP/1.1\r\n".to_vec();
                framed.extend_from_slice(&bytes);
                prop_assert_eq!(parse_http_request(&framed), Ok("/metrics"));
            }
        }
    }
}
