//! [`LdpServer`] — the reactor-driven TCP front end serving the session
//! protocol against a shared [`LdpService`].
//!
//! One reactor thread (the `net::reactor` module) owns every socket:
//! non-blocking accept, per-session partial-read/partial-write buffers
//! over the length-prefixed framing, and vectored reply writes. Complete
//! message bodies are executed by a small worker pool against the shared
//! backend — the worker count bounds CPU concurrency, not the session
//! count, so a node holds as many sessions as it has file descriptors.
//! Report batches land through the service's staged all-or-nothing batch
//! paths, so a session is a pure transport: the state it leaves behind
//! is bit-identical to calling [`LdpService::submit_frame`] in-process
//! with the same frames.
//!
//! Shutdown is graceful and total: accepting stops, in-flight messages
//! are executed and their replies flushed, half-received messages get
//! bounded patience (a stalled peer cannot hold the drain hostage),
//! every thread is joined (nothing leaks), the open epoch of a windowed
//! backend is sealed, and a final snapshot is published. On a plain
//! backend `num_reports` after shutdown equals exactly the number of
//! frames the server acked — the drain contract the concurrency tests
//! pin down. A windowed backend keeps its *retention* semantics through
//! the drain: the final seal can rotate the oldest epoch out of the
//! window, so `num_reports` counts the retained window (every acked
//! frame is still accounted for in [`ServerStats::frames_absorbed`]).

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldp_ranges::{PersistableServer, SubtractableServer};

use crate::error::ServiceError;
use crate::net::ops::OpsListener;
use crate::net::poll::Poller;
use crate::net::proto::{
    decode_report_frames, ClientMsg, DurableProgress, ErrorCode, Hello, HelloOk, Query, QueryOp,
    QueryReply, QueryResult, RemoteError, ReportBatch, ReportFrames, ServerMsg, StatusReply,
    MSG_HEALTH, MSG_METRICS, MSG_METRICS_RANGE, MSG_QUERY, MSG_REPLICATE, MSG_REPORT, MSG_SEAL,
    MSG_STATUS, WIRE_EPOCH, WIRE_V1,
};
use crate::net::reactor::{
    Job, JobDone, JobQueue, PushSource, Reactor, ReactorKnobs, ReactorShared,
};
use crate::net::{NetConfig, NetError};
use crate::obs::health::evaluate;
use crate::obs::instruments::{NetInstruments, OpsInstruments};
use crate::obs::trace::set_current_span;
use crate::obs::{
    HealthThresholds, MetricsRegistry, Sampler, TimeSeriesRing, TraceEvent, TraceOutcome,
    TraceRing, TraceStage,
};
use crate::repl::cursor::ReplCursor;
use crate::service::LdpService;
use crate::snapshot::{RangeSnapshot, SnapshotSource};
use crate::storage::store::decode_batch;
use crate::storage::DurableService;
use crate::window::EpochRing;
use crate::wire::WireReport;

/// The aggregation backend a server fronts: a plain all-time service, a
/// windowed (epoch-ring) one, or a durable service wrapping either with
/// a write-ahead log. All are `Arc`-shared, so the owner keeps querying
/// (and, for durable backends, checkpointing) while the server ingests.
enum Backend<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer,
    S::Report: WireReport,
{
    Plain(Arc<LdpService<S>>),
    Windowed(Arc<LdpService<EpochRing<S>>>),
    Durable(Arc<DurableService<S>>),
}

impl<S> Backend<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    fn windowed(&self) -> bool {
        match self {
            Self::Plain(_) => false,
            Self::Windowed(_) => true,
            Self::Durable(d) => d.is_windowed(),
        }
    }

    fn domain(&self) -> u64 {
        match self {
            Self::Plain(s) => s.snapshot().domain() as u64,
            Self::Windowed(s) => s.snapshot().domain() as u64,
            Self::Durable(d) => d.snapshot().domain() as u64,
        }
    }

    fn num_reports(&self) -> u64 {
        match self {
            Self::Plain(s) => s.num_reports(),
            Self::Windowed(s) => s.num_reports(),
            Self::Durable(d) => d.num_reports(),
        }
    }

    /// Decodes a batch under the negotiated wire version and absorbs it
    /// all-or-nothing (through the WAL on durable backends). Returns the
    /// number of frames absorbed.
    fn absorb_batch(&self, wire_version: u8, batch: &ReportBatch) -> Result<u64, RemoteError> {
        match self {
            Self::Durable(d) => d
                .ingest_batch(wire_version, batch.count, &batch.frames)
                .map_err(service_error),
            Self::Plain(s) => {
                let tagged = decode_batch::<S::Report>(wire_version, batch.count, &batch.frames)
                    .map_err(service_error)?;
                let reports: Vec<S::Report> = tagged.into_iter().map(|(_, r)| r).collect();
                s.submit_batch(&reports).map_err(service_error)?;
                Ok(reports.len() as u64)
            }
            Self::Windowed(s) => {
                let tagged = decode_batch::<S::Report>(wire_version, batch.count, &batch.frames)
                    .map_err(service_error)?;
                let n = tagged.len() as u64;
                s.submit_epoch_batch(&tagged).map_err(service_error)?;
                Ok(n)
            }
        }
    }

    /// Absorbs a REPORT batch straight from borrowed envelope bytes — the
    /// zero-copy twin of [`Backend::absorb_batch`]. Frames are decoded one
    /// at a time from subslices of `frames` and absorbed into a staged
    /// shard clone, so a 256-frame batch costs no intermediate `Vec` of
    /// reports and no copy of the frame bytes.
    fn absorb_frames(
        &self,
        wire_version: u8,
        count: u64,
        frames: &[u8],
    ) -> Result<u64, RemoteError> {
        match self {
            Self::Durable(d) => d
                .ingest_batch(wire_version, count, frames)
                .map_err(service_error),
            Self::Plain(s) => s
                .submit_wire_batch(wire_version, count, frames)
                .map_err(service_error),
            Self::Windowed(s) => s
                .submit_epoch_wire_batch(wire_version, count, frames)
                .map_err(service_error),
        }
    }

    /// Answers one query from a snapshot — never from live shard state,
    /// so ingestion is never blocked on estimation.
    fn query(&self, q: &Query) -> Result<QueryReply, RemoteError> {
        let windowed_err = || {
            RemoteError::new(
                ErrorCode::BadState,
                None,
                "windowed query against an unwindowed service",
            )
        };
        let (snap, window) = match (self, q.window) {
            (Self::Plain(_), Some(_)) => return Err(windowed_err()),
            (Self::Durable(d), Some(_)) if !d.is_windowed() => return Err(windowed_err()),
            (Self::Plain(s), None) => (s.refresh_snapshot().map_err(service_error)?, None),
            (Self::Windowed(s), None) => (s.refresh_snapshot().map_err(service_error)?, None),
            (Self::Durable(d), None) => (d.refresh_snapshot().map_err(service_error)?, None),
            (Self::Windowed(s), Some(k)) => {
                let w = s
                    .window_snapshot(usize::try_from(k).unwrap_or(usize::MAX))
                    .map_err(service_error)?;
                let bounds = (w.first_epoch(), w.last_epoch());
                (Arc::new(w.snapshot().clone()), Some(bounds))
            }
            (Self::Durable(d), Some(k)) => {
                let w = d
                    .window_snapshot(usize::try_from(k).unwrap_or(usize::MAX))
                    .map_err(service_error)?;
                let bounds = (w.first_epoch(), w.last_epoch());
                (Arc::new(w.snapshot().clone()), Some(bounds))
            }
        };
        let result = answer(&snap, q.op)?;
        Ok(QueryReply {
            result,
            version: snap.version(),
            num_reports: snap.num_reports(),
            window,
        })
    }

    fn seal(&self) -> Result<u64, RemoteError> {
        match self {
            Self::Plain(_) => Err(RemoteError::new(
                ErrorCode::BadState,
                None,
                "seal against an unwindowed service",
            )),
            Self::Windowed(s) => s.seal_epoch().map_err(service_error),
            Self::Durable(d) => d.seal_epoch().map_err(service_error),
        }
    }

    /// The open epoch id (windowed backends only).
    fn current_epoch(&self) -> Option<u64> {
        match self {
            Self::Plain(_) => None,
            Self::Windowed(s) => Some(s.current_epoch()),
            Self::Durable(d) => d.windowed().map(|s| s.current_epoch()),
        }
    }

    /// Durability progress (durable backends only). A fault in the
    /// durable layer (poisoned WAL lock) is surfaced as an error — a
    /// durable server must never masquerade as a non-durable one to the
    /// very probe built to watch its durability.
    fn durable_progress(&self) -> Result<Option<DurableProgress>, RemoteError> {
        let Self::Durable(d) = self else {
            return Ok(None);
        };
        let status = d.status().map_err(service_error)?;
        Ok(Some(DurableProgress {
            last_checkpoint: status.last_checkpoint,
            wal_segment_seq: status.wal_segment_seq,
            wal_records: status.wal_records,
            wal_frames: status.wal_frames,
            checkpoint_failures: status.checkpoint_failures,
            wedged: status.wedged,
        }))
    }

    /// The shutdown epilogue: seal the open epoch (windowed backends),
    /// checkpoint (durable backends — the drained state is durable on
    /// disk before the server reports itself stopped), and publish one
    /// final snapshot. On a plain backend the snapshot covers everything
    /// absorbed; on a windowed backend it covers the trailing retention
    /// window after the final seal (the window semantics the backend was
    /// built for — the seal can rotate the oldest epoch out).
    fn finalize(&self) -> (Option<u64>, Option<u64>, Arc<RangeSnapshot>) {
        let sealed = match self {
            Self::Plain(_) => None,
            Self::Windowed(s) => s.seal_epoch().ok(),
            Self::Durable(d) if d.is_windowed() => d.seal_epoch().ok(),
            Self::Durable(_) => None,
        };
        let checkpoint = match self {
            Self::Durable(d) => d.finalize().ok(),
            _ => None,
        };
        let snap = match self {
            Self::Plain(s) => s.refresh_snapshot(),
            Self::Windowed(s) => s.refresh_snapshot(),
            Self::Durable(d) => d.refresh_snapshot(),
        };
        let snap = snap.unwrap_or_else(|_| match self {
            Self::Plain(s) => s.snapshot(),
            Self::Windowed(s) => s.snapshot(),
            Self::Durable(d) => d.snapshot(),
        });
        (sealed, checkpoint, snap)
    }
}

fn answer(snap: &RangeSnapshot, op: QueryOp) -> Result<QueryResult, RemoteError> {
    let domain = snap.domain() as u64;
    let check = |bound: u64| {
        if bound >= domain {
            Err(RemoteError::new(
                ErrorCode::BadQuery,
                None,
                format!("bound {bound} outside domain {domain}"),
            ))
        } else {
            Ok(bound as usize)
        }
    };
    Ok(match op {
        QueryOp::Range { a, b } => QueryResult::Fraction(snap.range(check(a)?, check(b)?)),
        QueryOp::Prefix { b } => QueryResult::Fraction(snap.prefix(check(b)?)),
        QueryOp::Point { z } => QueryResult::Fraction(snap.point(check(z)?)),
        QueryOp::Quantile { phi } => QueryResult::Index(snap.quantile(phi) as u64),
    })
}

/// Maps a service-layer rejection to its typed protocol error.
fn service_error(e: ServiceError) -> RemoteError {
    match &e {
        ServiceError::BadFrame { index, source, .. } => {
            let code = if matches!(**source, ServiceError::EpochMismatch { .. }) {
                ErrorCode::EpochMismatch
            } else {
                ErrorCode::BadFrame
            };
            RemoteError::new(code, Some(*index as u64), e.to_string())
        }
        ServiceError::EpochMismatch { .. } => {
            RemoteError::new(ErrorCode::EpochMismatch, None, e.to_string())
        }
        ServiceError::EmptyWindow => RemoteError::new(ErrorCode::EmptyWindow, None, e.to_string()),
        ServiceError::Wire(_) => RemoteError::new(ErrorCode::BadFrame, None, e.to_string()),
        ServiceError::Io(_) | ServiceError::LockPoisoned(_) => {
            RemoteError::new(ErrorCode::Internal, None, e.to_string())
        }
        _ => RemoteError::new(ErrorCode::BadState, None, e.to_string()),
    }
}

// --- the server --------------------------------------------------------

struct Shared<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer,
    S::Report: WireReport,
{
    backend: Backend<S>,
    /// The server fronts a replication follower: QUERY/STATUS/METRICS
    /// only — REPORT and SEAL are refused, because the follower's log
    /// must stay a pure copy of its leader's.
    replica: bool,
    /// The one registry every tier behind this server reports into.
    registry: Arc<MetricsRegistry>,
    /// Net-tier instruments: the *single* accounting path — drain totals
    /// ([`ServerStats`]) and STATUS replies both read these counters.
    obs: NetInstruments,
    trace: Option<Arc<TraceRing>>,
    /// The metrics time-series ring the background sampler fills —
    /// served by METRICS_RANGE and `GET /metrics/range`.
    ring: Arc<TimeSeriesRing>,
    /// Thresholds the health model judges registry signals against.
    health: HealthThresholds,
}

/// What a drained server reports back from [`LdpServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Sessions served to completion.
    pub sessions: u64,
    /// Frames absorbed *and acked*. On a plain backend this equals the
    /// backend's `num_reports` after the drain exactly.
    pub frames_absorbed: u64,
    /// Frames arriving in rejected batches (nothing from those batches
    /// was absorbed).
    pub frames_rejected: u64,
    /// `num_reports` of the backend after the drain. For a windowed
    /// backend this counts the *retained* window only — the drain's
    /// final seal can rotate the oldest epoch out, so it may be smaller
    /// than [`ServerStats::frames_absorbed`].
    pub num_reports: u64,
    /// For windowed backends: the id of the epoch sealed by the drain.
    pub sealed_epoch: Option<u64>,
    /// For durable backends: the id of the checkpoint the drain took —
    /// the drained state is on disk before shutdown returns.
    pub final_checkpoint: Option<u64>,
    /// The final snapshot published after the drain.
    pub final_snapshot: Arc<RangeSnapshot>,
}

/// A socket front end serving ingestion and queries for one report type.
///
/// Built over a shared [`LdpService`] (the caller keeps its own `Arc`
/// and can query in-process at any time). Dropped without
/// [`LdpServer::shutdown`], threads are detached — call `shutdown` to
/// drain and join.
pub struct LdpServer<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer,
    S::Report: WireReport,
{
    shared: Arc<Shared<S>>,
    rshared: Arc<ReactorShared>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The background snapshot sampler feeding the time-series ring.
    sampler: Option<Sampler>,
    /// The plain-HTTP ops endpoint, when `ops_addr` asked for one.
    ops: Option<OpsListener>,
}

impl<S> LdpServer<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    /// Binds a server over a plain (all-time) service.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<LdpService<S>>,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        Self::start(addr, Backend::Plain(service), config, false)
    }

    /// Binds a server over a windowed (epoch-ring) service.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_windowed(
        addr: impl ToSocketAddrs,
        service: Arc<LdpService<EpochRing<S>>>,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        Self::start(addr, Backend::Windowed(service), config, false)
    }

    /// Binds a server in durable mode over a [`DurableService`] (plain
    /// or windowed): every acked REPORT batch is logged through the
    /// write-ahead log before the ack, SEALs are logged, and graceful
    /// shutdown checkpoints, so a restart recovers the drained state
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_durable(
        addr: impl ToSocketAddrs,
        service: Arc<DurableService<S>>,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        Self::start(addr, Backend::Durable(service), config, false)
    }

    /// Binds a *read replica* server over a replication follower's
    /// durable service (see [`crate::repl::FollowerService::service`]):
    /// QUERY, STATUS, and METRICS are served from the follower's own
    /// snapshots, but REPORT and SEAL are refused — the follower's log
    /// must stay a pure copy of its leader's. The replica also serves
    /// REPLICATE, so followers can chain.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_replica(
        addr: impl ToSocketAddrs,
        service: Arc<DurableService<S>>,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        Self::start(addr, Backend::Durable(service), config, true)
    }

    fn start(
        addr: impl ToSocketAddrs,
        backend: Backend<S>,
        config: NetConfig,
        replica: bool,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The reactor owns the listener non-blocking; readiness comes
        // from the poller, not accept timeouts.
        listener.set_nonblocking(true)?;
        // One registry for every tier behind this server. A durable
        // backend already carries the registry its storage layer (and
        // the wrapped service) registered into, so sharing it is what
        // makes a single METRICS probe see WAL, shard, and session
        // metrics together; an explicit `config.registry` wins.
        let registry = match (&config.registry, &backend) {
            (Some(r), _) => Arc::clone(r),
            (None, Backend::Durable(d)) => Arc::clone(d.registry()),
            (None, _) => Arc::new(MetricsRegistry::new()),
        };
        match &backend {
            Backend::Plain(s) => {
                s.attach_metrics(&registry);
            }
            Backend::Windowed(s) => {
                s.attach_metrics(&registry);
                s.attach_window_metrics(&registry);
            }
            // Durable backends attach at open; re-attaching here would
            // be a no-op (first attach wins).
            Backend::Durable(_) => {}
        }
        let obs = NetInstruments::register(&registry);
        // Trace adoption mirrors registry adoption: an explicit
        // `config.trace` wins; otherwise a durable backend's own ring
        // (from [`crate::storage::DurableConfig::trace`]) is shared, so
        // session-tier span events land in the same ring the storage
        // tier's WAL-append events do.
        let trace = match (&config.trace, &backend) {
            (Some(t), _) => Some(Arc::clone(t)),
            (None, Backend::Durable(d)) => d.trace().cloned(),
            (None, _) => None,
        };
        let ring = Arc::new(TimeSeriesRing::new(
            config.ring_capacity,
            config.sample_interval,
        ));
        let ops_obs = OpsInstruments::register(&registry);
        let shared = Arc::new(Shared {
            backend,
            replica,
            registry,
            obs: obs.clone(),
            trace: trace.clone(),
            ring: Arc::clone(&ring),
            health: config.health.clone(),
        });
        let sampler = Sampler::start(
            Arc::clone(&shared.registry),
            Arc::clone(&ring),
            ops_obs.clone(),
        )
        .map_err(NetError::Io)?;
        let ops = match &config.ops_addr {
            Some(ops_addr) => Some(
                OpsListener::start(
                    ops_addr,
                    Arc::clone(&shared.registry),
                    ring,
                    config.health.clone(),
                    ops_obs,
                )
                .map_err(NetError::Io)?,
            ),
            None => None,
        };
        // The portable poller has no kernel readiness and sweeps on a
        // tick instead; keep that tick well under the idle poll so
        // request latency stays in the low milliseconds.
        let tick = config.idle_poll.min(Duration::from_millis(1));
        let rshared = Arc::new(ReactorShared {
            jobs: JobQueue::new(),
            completions: Mutex::new(Vec::new()),
            poller: Poller::new(config.portable_poller, tick),
            shutdown: AtomicBool::new(false),
        });
        // A durable backend serves REPLICATE: seed the hub (counting the
        // retained log once) and ring the reactor's doorbell on every
        // appended record so push streams pump promptly. A store that
        // cannot state its log (wedged) simply leaves the hub unset and
        // REPLICATE answered with REPL_UNAVAILABLE.
        if let Backend::Durable(d) = &shared.backend {
            if let Ok(hub) = d.ensure_repl_hub() {
                let doorbell = Arc::clone(&rshared);
                hub.add_waker(Box::new(move || doorbell.poller.wake()));
            }
        }
        let knobs = ReactorKnobs {
            idle_poll: config.idle_poll,
            drain_patience: config.drain_patience,
            idle_timeout: config.idle_timeout,
            inflight_cap: config.queue_depth.max(1),
        };
        let reactor = Reactor::new(listener, Arc::clone(&rshared), knobs, obs, trace)
            .map_err(NetError::Io)?;
        let reactor_handle = std::thread::Builder::new()
            .name("ldp-net-reactor".into())
            .spawn(move || reactor.run())
            .map_err(NetError::Io)?;
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for k in 0..config.workers.max(1) {
            let worker = {
                let shared = Arc::clone(&shared);
                let rshared = Arc::clone(&rshared);
                std::thread::Builder::new()
                    .name(format!("ldp-net-worker-{k}"))
                    .spawn(move || {
                        while let Some(job) = rshared.jobs.pop() {
                            let done = execute_job(&shared, job);
                            rshared.complete(done);
                        }
                    })
            };
            match worker {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // A partial pool must not outlive the failed bind:
                    // stop the reactor (it closes the job queue on
                    // exit), then join everything already running before
                    // reporting the error — otherwise orphaned threads
                    // keep serving a port the caller believes never
                    // opened.
                    rshared.shutdown.store(true, Ordering::SeqCst);
                    rshared.poller.wake();
                    let _ = reactor_handle.join();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(NetError::Io(e));
                }
            }
        }
        Ok(Self {
            shared,
            rshared,
            addr,
            reactor: Some(reactor_handle),
            workers,
            sampler: Some(sampler),
            ops,
        })
    }

    /// The bound address (port 0 in `bind` resolves to a real port here).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry this server (and every tier behind it)
    /// reports into — the same snapshot the METRICS session message
    /// serves, for in-process scraping and rendering.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// The bound address of the plain-HTTP ops endpoint, when
    /// [`NetConfig::ops_addr`] asked for one (`:0` resolves to a real
    /// port here).
    #[must_use]
    pub fn ops_local_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(OpsListener::local_addr)
    }

    /// The metrics time-series ring the background sampler fills — the
    /// same samples the METRICS_RANGE message and `GET /metrics/range`
    /// serve, for in-process dumps.
    #[must_use]
    pub fn timeseries(&self) -> &Arc<TimeSeriesRing> {
        &self.shared.ring
    }

    /// Drains and stops the server: no new connections are accepted,
    /// in-flight messages are executed and their replies flushed (with
    /// bounded patience for stalled peers), every thread is joined, a
    /// windowed backend's open epoch is sealed, and a final snapshot is
    /// published.
    #[must_use]
    pub fn shutdown(mut self) -> ServerStats {
        self.rshared.shutdown.store(true, Ordering::SeqCst);
        self.rshared.poller.wake();
        // Scraping stops first: the ops endpoint must not observe a
        // half-finalized backend.
        if let Some(mut ops) = self.ops.take() {
            ops.stop();
        }
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor closed the job queue on exit, so the workers fall
        // through their pop loops.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(mut sampler) = self.sampler.take() {
            sampler.stop();
        }
        let (sealed_epoch, final_checkpoint, final_snapshot) = self.shared.backend.finalize();
        // Drain totals read straight from the registry counters — the
        // registry *is* the accounting path, so an operator scraping
        // METRICS and a caller holding these stats can never disagree.
        ServerStats {
            sessions: self.shared.obs.sessions_closed.get(),
            frames_absorbed: self.shared.obs.frames_absorbed.get(),
            frames_rejected: self.shared.obs.frames_rejected.get(),
            num_reports: self.shared.backend.num_reports(),
            sealed_epoch,
            final_checkpoint,
            final_snapshot,
        }
    }
}

/// Records one handled request into the per-message-type latency
/// histogram and — when tracing is on — the trace ring, as the span's
/// Execute-stage event.
fn observe<S>(shared: &Shared<S>, span: u64, session: u64, msg_type: u8, ok: bool, started: Instant)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let histo = match msg_type {
        MSG_REPORT => &shared.obs.report_ns,
        MSG_QUERY => &shared.obs.query_ns,
        MSG_SEAL => &shared.obs.seal_ns,
        // STATUS and METRICS share one introspection-latency histogram.
        _ => &shared.obs.status_ns,
    };
    histo.record(ns);
    if let Some(trace) = &shared.trace {
        trace.record(TraceEvent {
            span,
            session,
            stage: TraceStage::Execute,
            msg_type,
            outcome: if ok {
                TraceOutcome::Ok
            } else {
                TraceOutcome::Error
            },
            ns,
        });
    }
}

fn error_body(code: ErrorCode, detail: impl Into<String>) -> Vec<u8> {
    ServerMsg::Error(RemoteError::new(code, None, detail)).encode()
}

/// Executes one session's queued messages against the backend and
/// returns the encoded replies. This is the session state machine the
/// blocking engine ran inline — every hostile input (garbage bytes,
/// absurd lengths, mismatched handshakes, malformed batches) lands in a
/// typed error reply or a close decision, nothing panics the worker, and
/// rejected batches leave the backend untouched. Messages after a
/// close-triggering one are dropped unprocessed, exactly as a blocking
/// loop that returned would have left them unread.
fn execute_job<S>(shared: &Shared<S>, job: Job) -> JobDone
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let obs = &shared.obs;
    let mut hello: Option<Hello> = job.hello;
    let mut replies: Vec<Vec<u8>> = Vec::with_capacity(job.bodies.len());
    let mut close = false;
    let mut repl = job.repl;
    let mut push: Option<Box<dyn PushSource>> = None;
    for (span, body) in &job.bodies {
        let span = *span;
        // The decode-assigned span follows the message into the storage
        // tiers through the worker's thread-local, so a WAL group-commit
        // can stamp its event with the span that caused it.
        set_current_span(Some(span));
        if body.is_empty() {
            // Hostile envelope length (zero or over the cap): typed
            // error, then close — resync is impossible.
            replies.push(error_body(
                ErrorCode::Protocol,
                "message length outside (0, cap]",
            ));
            close = true;
            break;
        }
        let started = Instant::now();
        // Zero-copy fast path: REPORT bodies on ingest sessions decode as
        // borrowed frames straight out of the envelope buffer instead of
        // through `ClientMsg::decode`'s owning `ReportBatch`, so the frame
        // bytes are never copied between the socket and the shard absorb.
        // Replication sessions fall through to the generic decode so the
        // stream state machine below still rejects them identically.
        if !repl && body[0] == MSG_REPORT {
            let ReportFrames { count, frames } = match decode_report_frames(body) {
                Ok(rf) => rf,
                Err(e) => {
                    replies.push(error_body(ErrorCode::Protocol, e.to_string()));
                    if hello.is_none() {
                        close = true;
                        break;
                    }
                    continue;
                }
            };
            let Some(h) = hello else {
                replies.push(error_body(ErrorCode::BadState, "REPORT before HELLO"));
                close = true;
                break;
            };
            if shared.replica {
                replies.push(error_body(
                    ErrorCode::BadState,
                    "replica is read-only: its log is a copy of its leader's",
                ));
                observe(shared, span, job.session, MSG_REPORT, false, started);
                continue;
            }
            match shared.backend.absorb_frames(h.wire_version, count, frames) {
                Ok(accepted) => {
                    obs.frames_absorbed.add(accepted);
                    replies.push(ServerMsg::ReportOk { accepted }.encode());
                    observe(shared, span, job.session, MSG_REPORT, true, started);
                }
                Err(e) => {
                    // Count what the payload could physically hold (the
                    // smallest frame is 5 bytes), never the attacker-
                    // declared count — a lying count must not corrupt an
                    // operator-visible counter.
                    let plausible = count.min(frames.len() as u64 / 5);
                    obs.frames_rejected.add(plausible);
                    replies.push(ServerMsg::Error(e).encode());
                    observe(shared, span, job.session, MSG_REPORT, false, started);
                }
            }
            continue;
        }
        let msg = match ClientMsg::decode(body) {
            Ok(msg) => msg,
            Err(e) => {
                replies.push(error_body(ErrorCode::Protocol, e.to_string()));
                // Before the handshake nothing about the peer is
                // trusted; after it, the envelope kept us in sync, so
                // the session may continue.
                if hello.is_none() {
                    close = true;
                    break;
                }
                continue;
            }
        };
        // A replication stream is one-way after the subscription: the
        // follower may only acknowledge progress or say goodbye.
        if repl {
            match msg {
                ClientMsg::ReplAck { acked } => {
                    // Lag accounting only — a hostile position is clamped
                    // by the hub and can never corrupt leader state.
                    if let Backend::Durable(d) = &shared.backend {
                        if let Some(hub) = d.repl_hub() {
                            hub.ack(job.session, acked);
                        }
                    }
                    continue; // acks carry no reply
                }
                ClientMsg::Bye => {
                    replies.push(ServerMsg::ByeOk.encode());
                    close = true;
                    break;
                }
                _ => {
                    replies.push(error_body(
                        ErrorCode::BadState,
                        "session is a replication stream: only REPL_ACK and BYE are accepted",
                    ));
                    close = true;
                    break;
                }
            }
        }
        match msg {
            ClientMsg::Hello(h) => {
                if hello.is_some() {
                    replies.push(error_body(ErrorCode::Protocol, "duplicate HELLO"));
                    continue;
                }
                if let Err((code, detail)) = validate_hello::<S>(&h, &shared.backend) {
                    replies.push(error_body(code, detail));
                    close = true;
                    break;
                }
                replies.push(
                    ServerMsg::HelloOk(HelloOk {
                        kind: h.kind,
                        wire_version: h.wire_version,
                        windowed: h.windowed,
                        domain: shared.backend.domain(),
                    })
                    .encode(),
                );
                hello = Some(h);
            }
            ClientMsg::Report(batch) => {
                let Some(h) = hello else {
                    replies.push(error_body(ErrorCode::BadState, "REPORT before HELLO"));
                    close = true;
                    break;
                };
                if shared.replica {
                    replies.push(error_body(
                        ErrorCode::BadState,
                        "replica is read-only: its log is a copy of its leader's",
                    ));
                    observe(shared, span, job.session, MSG_REPORT, false, started);
                    continue;
                }
                match shared.backend.absorb_batch(h.wire_version, &batch) {
                    Ok(accepted) => {
                        obs.frames_absorbed.add(accepted);
                        replies.push(ServerMsg::ReportOk { accepted }.encode());
                        observe(shared, span, job.session, MSG_REPORT, true, started);
                    }
                    Err(e) => {
                        // Count what the payload could physically hold
                        // (the smallest frame is 5 bytes), never the
                        // attacker-declared count — a lying count must
                        // not corrupt an operator-visible counter.
                        let plausible = batch.count.min(batch.frames.len() as u64 / 5);
                        obs.frames_rejected.add(plausible);
                        replies.push(ServerMsg::Error(e).encode());
                        observe(shared, span, job.session, MSG_REPORT, false, started);
                    }
                }
            }
            ClientMsg::Query(query) => {
                if hello.is_none() {
                    replies.push(error_body(ErrorCode::BadState, "QUERY before HELLO"));
                    close = true;
                    break;
                }
                let (reply, ok) = match shared.backend.query(&query) {
                    Ok(reply) => (ServerMsg::QueryOk(reply), true),
                    Err(e) => (ServerMsg::Error(e), false),
                };
                replies.push(reply.encode());
                observe(shared, span, job.session, MSG_QUERY, ok, started);
            }
            ClientMsg::Seal => {
                if hello.is_none() {
                    replies.push(error_body(ErrorCode::BadState, "SEAL before HELLO"));
                    close = true;
                    break;
                }
                if shared.replica {
                    replies.push(error_body(
                        ErrorCode::BadState,
                        "replica is read-only: its log is a copy of its leader's",
                    ));
                    observe(shared, span, job.session, MSG_SEAL, false, started);
                    continue;
                }
                let (reply, ok) = match shared.backend.seal() {
                    Ok(epoch) => (ServerMsg::SealOk { epoch }, true),
                    Err(e) => (ServerMsg::Error(e), false),
                };
                replies.push(reply.encode());
                observe(shared, span, job.session, MSG_SEAL, ok, started);
            }
            ClientMsg::Status { verbose } => {
                // No handshake required: STATUS names no report kind, so
                // an operator tool can probe any server blind.
                let (reply, ok) = match build_status(shared, verbose) {
                    Ok(status) => (ServerMsg::StatusOk(status), true),
                    Err(e) => (ServerMsg::Error(e), false),
                };
                replies.push(reply.encode());
                observe(shared, span, job.session, MSG_STATUS, ok, started);
            }
            ClientMsg::Metrics => {
                // Also allowed before HELLO: introspection names no
                // report kind either.
                replies.push(ServerMsg::MetricsOk(shared.registry.snapshot()).encode());
                observe(shared, span, job.session, MSG_METRICS, true, started);
            }
            ClientMsg::MetricsRange { max } => {
                // Also allowed before HELLO, like METRICS.
                let range = shared
                    .ring
                    .range(usize::try_from(max).unwrap_or(usize::MAX));
                replies.push(ServerMsg::MetricsRangeOk(range).encode());
                observe(shared, span, job.session, MSG_METRICS_RANGE, true, started);
            }
            ClientMsg::Health => {
                // Also allowed before HELLO: an operator probing a sick
                // node must not need a handshake.
                let report = evaluate(&shared.registry.snapshot(), &shared.health);
                replies.push(ServerMsg::HealthOk(report).encode());
                observe(shared, span, job.session, MSG_HEALTH, true, started);
            }
            ClientMsg::Replicate { start } => {
                // Allowed before HELLO only (like STATUS it names no
                // report kind) — and *instead of* it: a stream session
                // never negotiates a report session.
                if hello.is_some() {
                    replies.push(error_body(
                        ErrorCode::BadState,
                        "REPLICATE on a negotiated report session",
                    ));
                    close = true;
                    break;
                }
                match setup_replication(shared, job.session, start) {
                    Ok((reply, source)) => {
                        replies.push(reply);
                        repl = true;
                        push = Some(source);
                        observe(shared, span, job.session, MSG_REPLICATE, true, started);
                        // Anything pipelined after this body hits the
                        // stream-session guard above.
                    }
                    Err((code, detail)) => {
                        replies.push(error_body(code, detail));
                        observe(shared, span, job.session, MSG_REPLICATE, false, started);
                        close = true;
                        break;
                    }
                }
            }
            ClientMsg::ReplAck { .. } => {
                replies.push(error_body(
                    ErrorCode::BadState,
                    "REPL_ACK outside a replication stream",
                ));
                close = true;
                break;
            }
            ClientMsg::Bye => {
                replies.push(ServerMsg::ByeOk.encode());
                close = true;
                break;
            }
        }
    }
    // Worker threads are reused across sessions; never leak a span into
    // the next job.
    set_current_span(None);
    JobDone {
        token: job.token,
        hello,
        replies,
        repl,
        push,
        close,
    }
}

/// A granted replication stream: the encoded `REPL_OK` reply plus the
/// push source feeding the session, or the typed refusal to send back.
type ReplGrant = Result<(Vec<u8>, Box<dyn PushSource>), (ErrorCode, String)>;

/// Subscribes a session to the leader's log and builds its push stream:
/// the hub admits the position, the cursor opens the log, and the
/// `REPL_OK` reply carries the leader's record count. Any failure after
/// the subscription unsubscribes before reporting, so a refused stream
/// leaks nothing.
fn setup_replication<S>(shared: &Shared<S>, session: u64, start: u64) -> ReplGrant
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let Backend::Durable(d) = &shared.backend else {
        return Err((
            ErrorCode::ReplUnavailable,
            "replication requires a durable backend (no write-ahead log to stream)".to_string(),
        ));
    };
    let Some(hub) = d.repl_hub() else {
        return Err((
            ErrorCode::ReplUnavailable,
            "replication hub unavailable: the store could not state its log".to_string(),
        ));
    };
    hub.subscribe(session, start)
        .map_err(|detail| (ErrorCode::ReplUnavailable, detail))?;
    match ReplCursor::new(Arc::clone(hub), session, d.dir(), start) {
        Ok(cursor) => {
            let reply = ServerMsg::ReplOk {
                start,
                leader_records: hub.records(),
            }
            .encode();
            Ok((reply, Box::new(cursor)))
        }
        Err(e) => {
            hub.unsubscribe(session);
            Err((
                ErrorCode::Internal,
                format!("opening a log cursor for the stream failed: {e}"),
            ))
        }
    }
}

/// Assembles the STATUS reply from the server counters, the backend's
/// published snapshot (no refresh — probing must stay cheap), and the
/// durable layer's progress.
fn build_status<S>(shared: &Shared<S>, verbose: bool) -> Result<StatusReply, RemoteError>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let (metrics, health) = if verbose {
        let snap = shared.registry.snapshot();
        let report = evaluate(&snap, &shared.health);
        (Some(snap), Some(report))
    } else {
        (None, None)
    };
    Ok(StatusReply {
        sessions: shared.obs.sessions_closed.get(),
        frames_absorbed: shared.obs.frames_absorbed.get(),
        frames_rejected: shared.obs.frames_rejected.get(),
        num_reports: shared.backend.num_reports(),
        snapshot_version: match &shared.backend {
            Backend::Plain(s) => s.snapshot().version(),
            Backend::Windowed(s) => s.snapshot().version(),
            Backend::Durable(d) => d.snapshot().version(),
        },
        current_epoch: shared.backend.current_epoch(),
        durable: shared.backend.durable_progress()?,
        // The metrics and health sections ride along only on request, so
        // the plain probe's bytes stay identical to the legacy protocol.
        // Health is judged on the same frozen snapshot that is shipped,
        // so the verdict and its evidence can never disagree.
        metrics,
        health,
    })
}

fn validate_hello<S>(hello: &Hello, backend: &Backend<S>) -> Result<(), (ErrorCode, String)>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    if hello.kind != S::Report::KIND {
        return Err((
            ErrorCode::KindMismatch,
            format!(
                "server aggregates kind {}, client proposed kind {}",
                S::Report::KIND,
                hello.kind
            ),
        ));
    }
    if hello.windowed != backend.windowed() {
        return Err((
            ErrorCode::EpochModeMismatch,
            format!(
                "server is {}, client proposed {}",
                if backend.windowed() {
                    "windowed"
                } else {
                    "unwindowed"
                },
                if hello.windowed {
                    "windowed"
                } else {
                    "unwindowed"
                },
            ),
        ));
    }
    if hello.wire_version == WIRE_EPOCH && !backend.windowed() {
        return Err((
            ErrorCode::WireVersionMismatch,
            "epoch-tagged frames (wire v2) against an unwindowed service".to_string(),
        ));
    }
    debug_assert!(hello.wire_version == WIRE_V1 || hello.wire_version == WIRE_EPOCH);
    Ok(())
}
