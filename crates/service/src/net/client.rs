//! [`LdpClient`] — the blocking session client.
//!
//! One client owns one TCP session: a HELLO handshake at connect, then
//! any mix of batched report submission, queries, and (on windowed
//! sessions) epoch seals, finished by a clean BYE. Used by the
//! differential tests, `examples/net_pipeline.rs`, the socket replay
//! path over [`EncodedStream`], and the `net_throughput` benchmark.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::loadgen::EncodedStream;
use crate::net::proto::{
    encode_report_body, read_message, write_message, ClientMsg, Hello, HelloOk, Query, QueryOp,
    QueryReply, ServerMsg, StatusReply,
};
use crate::net::NetError;
use crate::obs::{HealthReport, MetricsRange, RegistrySnapshot};

/// A blocking client for one negotiated session.
#[derive(Debug)]
pub struct LdpClient {
    stream: TcpStream,
    negotiated: HelloOk,
}

impl LdpClient {
    /// Connects and performs the HELLO handshake. A read timeout guards
    /// every reply so a dead server surfaces as a typed error instead of
    /// a hung test.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, or a typed server rejection
    /// ([`NetError::Remote`] — kind/wire-version/epoch-mode mismatches).
    pub fn connect(addr: impl ToSocketAddrs, hello: Hello) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        let mut client = Self {
            stream,
            negotiated: HelloOk {
                kind: hello.kind,
                wire_version: hello.wire_version,
                windowed: hello.windowed,
                domain: 0,
            },
        };
        match client.roundtrip(&ClientMsg::Hello(hello))? {
            ServerMsg::HelloOk(ok) => {
                client.negotiated = ok;
                Ok(client)
            }
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("HELLO answered with non-HELLO")),
        }
    }

    /// Like [`LdpClient::connect`], with an explicit reply read timeout
    /// — the hook the slow-client and idle-eviction tests use to wait
    /// longer (or shorter) than the 10-second default.
    ///
    /// # Errors
    ///
    /// As [`LdpClient::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        hello: Hello,
        read_timeout: Duration,
    ) -> Result<Self, NetError> {
        let client = Self::connect(addr, hello)?;
        client.stream.set_read_timeout(Some(read_timeout))?;
        Ok(client)
    }

    /// The negotiated session parameters, including the server's snapshot
    /// domain.
    #[must_use]
    pub fn negotiated(&self) -> HelloOk {
        self.negotiated
    }

    /// Surrenders the underlying stream with the handshake already done —
    /// the hook tests use to speak raw protocol bytes (pipelined
    /// envelopes, half-written frames) over a negotiated session.
    #[must_use]
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Sends one batch of already-encoded frames (`count` back-to-back
    /// wire frames in `frames`), returning the acked count.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Remote`] when the server
    /// rejects the batch (nothing from it was absorbed; the error names
    /// the offending frame index).
    pub fn send_batch(&mut self, count: u64, frames: &[u8]) -> Result<u64, NetError> {
        // Encode straight from the borrowed span — no intermediate
        // owned batch on the hot replay path.
        match self.roundtrip_body(&encode_report_body(count, frames))? {
            ServerMsg::ReportOk { accepted } => Ok(accepted),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("REPORT answered with non-ACK")),
        }
    }

    /// Replays an [`EncodedStream`] in REPORT batches of `batch_frames`
    /// frames, returning the total acked count — the socket-mode loadgen
    /// path.
    ///
    /// # Errors
    ///
    /// As [`LdpClient::send_batch`]; the total reflects only batches
    /// acked before the failure.
    pub fn send_stream(
        &mut self,
        stream: &EncodedStream,
        batch_frames: usize,
    ) -> Result<u64, NetError> {
        let batch_frames = batch_frames.max(1);
        let mut acked = 0;
        let mut lo = 0;
        while lo < stream.len() {
            let hi = (lo + batch_frames).min(stream.len());
            acked += self.send_batch((hi - lo) as u64, stream.frame_span(lo, hi))?;
            lo = hi;
        }
        Ok(acked)
    }

    /// Runs one query.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server rejection.
    pub fn query(&mut self, query: Query) -> Result<QueryReply, NetError> {
        match self.roundtrip(&ClientMsg::Query(query))? {
            ServerMsg::QueryOk(reply) => Ok(reply),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("QUERY answered with non-reply")),
        }
    }

    /// Convenience: an unwindowed range query `[a, b]`.
    ///
    /// # Errors
    ///
    /// As [`LdpClient::query`].
    pub fn range(&mut self, a: u64, b: u64) -> Result<QueryReply, NetError> {
        self.query(Query {
            op: QueryOp::Range { a, b },
            window: None,
        })
    }

    /// Convenience: an unwindowed φ-quantile query.
    ///
    /// # Errors
    ///
    /// As [`LdpClient::query`].
    pub fn quantile(&mut self, phi: f64) -> Result<QueryReply, NetError> {
        self.query(Query {
            op: QueryOp::Quantile { phi },
            window: None,
        })
    }

    /// Probes the server's counters and durability progress. Works on
    /// any session (the request names no report kind). Sends the legacy
    /// plain probe, so it works against pre-metrics servers too; the
    /// reply's `metrics` is always `None` — use
    /// [`LdpClient::status_full`] for the verbose form.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server rejection.
    pub fn status(&mut self) -> Result<StatusReply, NetError> {
        self.status_inner(false)
    }

    /// Probes the server verbosely: the reply additionally carries a
    /// full metrics-registry snapshot in [`StatusReply::metrics`].
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server rejection.
    pub fn status_full(&mut self) -> Result<StatusReply, NetError> {
        self.status_inner(true)
    }

    fn status_inner(&mut self, verbose: bool) -> Result<StatusReply, NetError> {
        match self.roundtrip(&ClientMsg::Status { verbose })? {
            ServerMsg::StatusOk(status) => Ok(status),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("STATUS answered with non-status")),
        }
    }

    /// Fetches a full metrics-registry snapshot. Works on any session
    /// (the request names no report kind, so it is allowed before
    /// HELLO).
    ///
    /// # Errors
    ///
    /// Transport failures, a typed server rejection, or
    /// [`crate::WireError::UnsupportedVersion`] (as
    /// [`NetError::Proto`]) when the server speaks a metrics exposition
    /// version this client does not.
    pub fn metrics(&mut self) -> Result<RegistrySnapshot, NetError> {
        match self.roundtrip(&ClientMsg::Metrics)? {
            ServerMsg::MetricsOk(snapshot) => Ok(snapshot),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply(
                "METRICS answered with non-metrics",
            )),
        }
    }

    /// Fetches the last `max` time-series samples from the server's
    /// metrics ring (newest last), each a frozen registry snapshot —
    /// diff adjacent samples with [`MetricsRange::deltas`] for exact
    /// per-interval rates. Works on any session (allowed before HELLO).
    ///
    /// # Errors
    ///
    /// Transport failures, a typed server rejection, or
    /// [`crate::WireError::UnsupportedVersion`] (as [`NetError::Proto`])
    /// when the server's exposition version is unknown to this client.
    pub fn metrics_range(&mut self, max: u64) -> Result<MetricsRange, NetError> {
        match self.roundtrip(&ClientMsg::MetricsRange { max })? {
            ServerMsg::MetricsRangeOk(range) => Ok(range),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply(
                "METRICS_RANGE answered with non-range",
            )),
        }
    }

    /// Fetches the server's component-health report — per-component
    /// verdicts judged from live registry signals, rolled up by
    /// [`HealthReport::verdict`]. Works on any session (allowed before
    /// HELLO), so an external prober needs no negotiated report kind.
    ///
    /// # Errors
    ///
    /// Transport failures, a typed server rejection, or
    /// [`crate::WireError::UnsupportedVersion`] (as [`NetError::Proto`])
    /// when the server's health exposition version is unknown.
    pub fn health(&mut self) -> Result<HealthReport, NetError> {
        match self.roundtrip(&ClientMsg::Health)? {
            ServerMsg::HealthOk(report) => Ok(report),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("HEALTH answered with non-health")),
        }
    }

    /// Seals the open epoch (windowed sessions), returning its id.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed rejection (unwindowed backend).
    pub fn seal_epoch(&mut self) -> Result<u64, NetError> {
        match self.roundtrip(&ClientMsg::Seal)? {
            ServerMsg::SealOk { epoch } => Ok(epoch),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("SEAL answered with non-ack")),
        }
    }

    /// Opens a replication feed against a durable leader, subscribed
    /// from absolute record position `start` — a stream session, not a
    /// report session, so it gets its own connection (no HELLO) and its
    /// own type: [`crate::repl::ReplFeed`].
    ///
    /// # Errors
    ///
    /// Transport failures or a typed rejection (`REPL_UNAVAILABLE` from
    /// a non-durable or pruned leader).
    pub fn replicate(
        addr: impl ToSocketAddrs,
        start: u64,
    ) -> Result<crate::repl::ReplFeed, NetError> {
        crate::repl::ReplFeed::connect(addr, start)
    }

    /// Ends the session cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures; the server's BYE ack is awaited so the drain
    /// accounting on both sides agrees.
    pub fn bye(mut self) -> Result<(), NetError> {
        match self.roundtrip(&ClientMsg::Bye)? {
            ServerMsg::ByeOk => Ok(()),
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply("BYE answered with non-ack")),
        }
    }

    fn roundtrip(&mut self, msg: &ClientMsg) -> Result<ServerMsg, NetError> {
        self.roundtrip_body(&msg.encode())
    }

    fn roundtrip_body(&mut self, body: &[u8]) -> Result<ServerMsg, NetError> {
        write_message(&mut self.stream, body)?;
        let reply = read_message(&mut self.stream)?;
        Ok(ServerMsg::decode(&reply)?)
    }
}
