//! The length-prefixed session protocol spoken between [`super::LdpClient`]
//! and [`super::LdpServer`].
//!
//! Every message on the socket is one *envelope*:
//!
//! ```text
//! envelope := len(4B LE, 1 ..= MAX_MESSAGE_BYTES)  body
//! body     := type(1B)  payload
//!
//! client → server
//!   0x01 HELLO    payload := magic(2B = "LN") proto(1B = 1)
//!                            kind(1B) wire_version(1B: 1|2) windowed(1B: 0|1)
//!   0x02 REPORT   payload := count:varint  wire_frame × count   (back to back)
//!   0x03 QUERY    payload := windowed(1B: 0|1) [k:varint]  op
//!   0x04 SEAL     payload := (empty)
//!   0x05 BYE      payload := (empty)
//!   0x06 STATUS   payload := (empty) | verbose(1B = 1)   (allowed before HELLO;
//!                            the verbose flag requests the metrics section)
//!   0x07 METRICS  payload := (empty)   (allowed before HELLO)
//!   0x08 REPLICATE payload := magic(2B = "LN") proto(1B = 1) start:varint
//!                             (allowed before HELLO; durable leaders only —
//!                             flips the session into a WAL push stream)
//!   0x09 REPL_ACK payload := acked:varint   (follower → leader progress)
//!   0x0A METRICS_RANGE payload := max:varint   (allowed before HELLO;
//!                             the newest ≤ max time-series samples)
//!   0x0B HEALTH   payload := (empty)   (allowed before HELLO)
//!
//! op       := 0 RANGE a:varint b:varint
//!           | 1 PREFIX b:varint
//!           | 2 POINT z:varint
//!           | 3 QUANTILE phi(8B LE f64 bits, finite, 0 ≤ φ ≤ 1)
//!
//! server → client
//!   0x81 HELLO_OK  payload := kind(1B) wire_version(1B) windowed(1B) domain:varint
//!   0x82 REPORT_OK payload := accepted:varint
//!   0x83 QUERY_OK  payload := op(1B) result(8B LE) version:varint
//!                             num_reports:varint windowed(1B: 0|1)
//!                             [first:varint last:varint]
//!   0x84 SEAL_OK   payload := epoch:varint
//!   0x85 BYE_OK    payload := (empty)
//!   0x86 STATUS_OK payload := sessions:varint frames_absorbed:varint
//!                             frames_rejected:varint num_reports:varint
//!                             snapshot_version:varint
//!                             windowed(1B: 0|1) [current_epoch:varint]
//!                             durable(1B: 0|1) [has_ckpt(1B: 0|1) [id:varint]
//!                             wal_seq:varint wal_records:varint wal_frames:varint
//!                             checkpoint_failures:varint wedged(1B: 0|1)]
//!                             [section(1B = 1) registry_snapshot]
//!                             [section(1B = 2) health_report]
//!   0x87 METRICS_OK payload := obs_version(1B = METRICS_VERSION)
//!                              registry_snapshot
//!   0x88 REPL_OK   payload := start:varint leader_records:varint
//!   0x89 REPL_REC  payload := position:varint record_body(≥ 1 byte)
//!                             (leader push; record_body is a WAL record
//!                             body — type byte + payload, see
//!                             `crate::storage::wal` — re-framed and
//!                             CRC'd by the follower's own log)
//!   0x8A METRICS_RANGE_OK payload := obs_version(1B = METRICS_VERSION)
//!                             interval_ms:varint n:varint
//!                             (seq:varint at_unix_ms:varint
//!                              registry_snapshot) × n
//!                             (n ≤ MAX_RANGE_SAMPLES, see
//!                             `crate::obs::timeseries`)
//!   0x8B HEALTH_OK payload := health_version(1B = HEALTH_VERSION)
//!                             health_report
//!                             (health_report is the codec in
//!                             `crate::obs::health`)
//!   0x7F ERROR     payload := code(1B) has_index(1B: 0|1) [index:varint]
//!                             detail_len:varint detail(UTF-8)
//! ```
//!
//! Replication is version-gated the same way HELLO is: a REPLICATE
//! request leads with the handshake magic and the session protocol
//! version, so a server that predates replication answers with a typed
//! unknown-kind error instead of misparsing, and a future protocol bump
//! is rejected explicitly ([`WireError::UnsupportedVersion`]) rather than
//! silently streamed to.
//!
//! Version gating of the telemetry surfaces: a STATUS_OK carries its
//! trailing sections (metrics, health) *only when the client asked for
//! them* (the verbose STATUS flag), each led by an ascending section
//! tag, so the legacy STATUS_OK bytes are unchanged and pre-telemetry
//! clients — whose decoders reject trailing bytes — never see the
//! extensions. A METRICS_OK / METRICS_RANGE_OK leads with an exposition
//! format version byte ([`METRICS_VERSION`]) and a HEALTH_OK with
//! [`HEALTH_VERSION`]; decoders reject versions they do not know instead
//! of misparsing the payload (`registry_snapshot` is the
//! [`RegistrySnapshot`] codec, see [`crate::obs::expose`]).
//!
//! The payload of a REPORT message is raw [`crate::wire`] frames — the
//! session layer frames *messages*, the wire layer frames *reports*, and
//! neither re-encodes the other. Decoding is total and allocation is
//! bounded: the envelope length is capped at [`MAX_MESSAGE_BYTES`] before
//! any read, a REPORT's declared frame count is validated against the
//! payload it arrived in, and an ERROR detail is capped at
//! [`MAX_DETAIL_BYTES`]. The codecs reuse the wire format's primitives
//! ([`Reader`], [`put_varint`]) so there is exactly one varint in the
//! codebase.

use std::io::{Read, Write};

use crate::error::WireError;
use crate::net::NetError;
use crate::obs::{HealthReport, MetricsRange, RegistrySnapshot};
use crate::wire::{put_varint, Reader};

/// Handshake magic inside HELLO ("LN" = LQ-over-Network), distinguishing
/// a session handshake from stray bytes.
pub const HELLO_MAGIC: [u8; 2] = *b"LN";
/// Session protocol version negotiated by HELLO.
pub const PROTO_VERSION: u8 = 1;
/// Hard cap on one session message (envelope body), enforced on both
/// sides *before* allocating: 8 MiB holds tens of thousands of frames of
/// the largest report type while keeping a hostile 4 GiB declared length
/// unallocatable.
pub const MAX_MESSAGE_BYTES: usize = 1 << 23;
/// Cap on an ERROR message's human-readable detail.
pub const MAX_DETAIL_BYTES: usize = 1 << 10;
/// Wire version 1: epoch-less frames, decoded strictly.
pub const WIRE_V1: u8 = crate::wire::VERSION;
/// Wire version 2: epoch-tagged frames accepted (v1 frames still pass,
/// untagged).
pub const WIRE_EPOCH: u8 = crate::wire::VERSION_EPOCH;
/// Version of the metrics exposition format carried by METRICS_OK and
/// METRICS_RANGE_OK. Bumped on any incompatible change to the snapshot
/// codec; decoders reject versions they do not know
/// ([`WireError::UnsupportedVersion`]).
pub const METRICS_VERSION: u8 = 1;
/// Version of the health-report format carried by HEALTH_OK and the
/// verbose STATUS health section; same rejection discipline as
/// [`METRICS_VERSION`].
pub const HEALTH_VERSION: u8 = 1;

// The client-message type bytes are crate-visible so the server can
// stamp them into trace events without re-deriving them from the enum.
pub(crate) const MSG_HELLO: u8 = 0x01;
pub(crate) const MSG_REPORT: u8 = 0x02;
pub(crate) const MSG_QUERY: u8 = 0x03;
pub(crate) const MSG_SEAL: u8 = 0x04;
pub(crate) const MSG_BYE: u8 = 0x05;
pub(crate) const MSG_STATUS: u8 = 0x06;
pub(crate) const MSG_METRICS: u8 = 0x07;
pub(crate) const MSG_REPLICATE: u8 = 0x08;
pub(crate) const MSG_REPL_ACK: u8 = 0x09;
pub(crate) const MSG_METRICS_RANGE: u8 = 0x0A;
pub(crate) const MSG_HEALTH: u8 = 0x0B;

const MSG_HELLO_OK: u8 = 0x81;
const MSG_REPORT_OK: u8 = 0x82;
const MSG_QUERY_OK: u8 = 0x83;
const MSG_SEAL_OK: u8 = 0x84;
const MSG_BYE_OK: u8 = 0x85;
const MSG_STATUS_OK: u8 = 0x86;
const MSG_METRICS_OK: u8 = 0x87;
const MSG_REPL_OK: u8 = 0x88;
const MSG_REPL_REC: u8 = 0x89;
const MSG_METRICS_RANGE_OK: u8 = 0x8A;
const MSG_HEALTH_OK: u8 = 0x8B;
const MSG_ERROR: u8 = 0x7F;

const OP_RANGE: u8 = 0;
const OP_PREFIX: u8 = 1;
const OP_POINT: u8 = 2;
const OP_QUANTILE: u8 = 3;

// --- handshake ---------------------------------------------------------

/// What a client proposes in its HELLO: which report type it will send,
/// which wire version its frames use, and whether it expects the epoch
/// (windowed) service. The server accepts only an exact match with its
/// own backend — mismatches are typed errors, not silent coercions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The wire kind byte of the report type ([`crate::wire::WireReport::KIND`]).
    pub kind: u8,
    /// [`WIRE_V1`] or [`WIRE_EPOCH`].
    pub wire_version: u8,
    /// Whether the session targets a windowed (epoch-ring) backend.
    pub windowed: bool,
}

impl Hello {
    /// A plain (unwindowed, wire v1) session for report type `T`.
    #[must_use]
    pub fn plain<T: crate::wire::WireReport>() -> Self {
        Self {
            kind: T::KIND,
            wire_version: WIRE_V1,
            windowed: false,
        }
    }

    /// A windowed session for report type `T`, shipping epoch-tagged
    /// (wire v2) frames.
    #[must_use]
    pub fn windowed<T: crate::wire::WireReport>() -> Self {
        Self {
            kind: T::KIND,
            wire_version: WIRE_EPOCH,
            windowed: true,
        }
    }
}

/// The server's half of the handshake: the negotiated parameters echoed
/// back plus the backend's snapshot domain, so clients can bound-check
/// queries locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloOk {
    /// Report kind this server aggregates.
    pub kind: u8,
    /// Wire version the session will decode with.
    pub wire_version: u8,
    /// Whether the backend is windowed.
    pub windowed: bool,
    /// Domain size of the backend's snapshots.
    pub domain: u64,
}

// --- queries -----------------------------------------------------------

/// One query operation, mirroring [`crate::RangeSnapshot`]'s surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOp {
    /// Estimated fraction in the inclusive `[a, b]`.
    Range {
        /// Lower bound (inclusive).
        a: u64,
        /// Upper bound (inclusive).
        b: u64,
    },
    /// Estimated prefix fraction `R[0, b]`.
    Prefix {
        /// Upper bound (inclusive).
        b: u64,
    },
    /// Estimated frequency of one item.
    Point {
        /// The item.
        z: u64,
    },
    /// Estimated φ-quantile.
    Quantile {
        /// The quantile, finite and within `0 ..= 1` (enforced at
        /// decode, so a hostile φ can never reach the snapshot's panic).
        phi: f64,
    },
}

/// A query: an operation, optionally evaluated over the trailing `k`
/// sealed epochs instead of the live (all retained + open) state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// The operation.
    pub op: QueryOp,
    /// `Some(k)` answers from a [`crate::WindowedSnapshot`] over the
    /// trailing `k` sealed epochs (windowed sessions only); `None`
    /// answers from a freshly refreshed [`crate::RangeSnapshot`].
    pub window: Option<u64>,
}

/// A query's answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryResult {
    /// Range/prefix/point answers: an estimated fraction.
    Fraction(f64),
    /// Quantile answers: a domain index.
    Index(u64),
}

/// The full query reply: the answer plus the snapshot provenance readers
/// need to reason about staleness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryReply {
    /// The answer.
    pub result: QueryResult,
    /// Version of the snapshot that answered (monotone per backend).
    pub version: u64,
    /// Reports reflected in that snapshot.
    pub num_reports: u64,
    /// For windowed answers, the inclusive epoch interval covered.
    pub window: Option<(u64, u64)>,
}

impl QueryReply {
    /// The answer as a fraction.
    ///
    /// # Panics
    ///
    /// Panics if the reply answered a quantile query.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        match self.result {
            QueryResult::Fraction(f) => f,
            QueryResult::Index(_) => panic!("quantile reply has no fraction"),
        }
    }

    /// The answer as a quantile index.
    ///
    /// # Panics
    ///
    /// Panics if the reply answered a range/prefix/point query.
    #[must_use]
    pub fn index(&self) -> u64 {
        match self.result {
            QueryResult::Index(i) => i,
            QueryResult::Fraction(_) => panic!("fraction reply has no index"),
        }
    }
}

// --- status ------------------------------------------------------------

/// Durability progress inside a [`StatusReply`] (durable servers only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableProgress {
    /// Id of the newest completed checkpoint, if any.
    pub last_checkpoint: Option<u64>,
    /// WAL segment currently being appended to.
    pub wal_segment_seq: u64,
    /// WAL records appended since the server opened its log.
    pub wal_records: u64,
    /// Report frames appended since the server opened its log.
    pub wal_frames: u64,
    /// Automatic checkpoints that failed (retried on later appends).
    pub checkpoint_failures: u64,
    /// Whether the durable layer has fail-stopped after a WAL append
    /// failure — the first thing an operator probe must see, since a
    /// wedged server refuses all further ingest.
    pub wedged: bool,
}

/// The server's answer to a STATUS probe: `ServerStats`-style counters
/// plus snapshot provenance and — on durable servers — checkpoint/WAL
/// progress, so operators can watch durability advance over the socket.
/// STATUS needs no handshake (it names no report kind), so an operator
/// tool can probe any server without knowing its mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReply {
    /// Sessions served to completion so far.
    pub sessions: u64,
    /// Frames absorbed and acked so far.
    pub frames_absorbed: u64,
    /// Frames arriving in rejected batches so far.
    pub frames_rejected: u64,
    /// Reports currently reflected in the backend.
    pub num_reports: u64,
    /// Version of the currently published snapshot.
    pub snapshot_version: u64,
    /// The open epoch id (windowed backends only).
    pub current_epoch: Option<u64>,
    /// Durability progress (durable backends only).
    pub durable: Option<DurableProgress>,
    /// Full metrics snapshot — present only when the client asked for a
    /// verbose STATUS ([`ClientMsg::Status`] with `verbose: true`), so
    /// the legacy reply bytes are unchanged for old clients.
    pub metrics: Option<RegistrySnapshot>,
    /// Component health report — present only on verbose STATUS from
    /// servers that compute health. Carried as trailing section tag `2`
    /// (after the metrics section's tag `1`), so legacy replies and
    /// metrics-only replies are byte-identical to their old encodings.
    pub health: Option<HealthReport>,
}

// --- errors ------------------------------------------------------------

/// Typed error codes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed session message.
    Protocol,
    /// HELLO proposed a session protocol version this server does not
    /// speak.
    UnsupportedProto,
    /// HELLO named a report kind other than the one this server
    /// aggregates.
    KindMismatch,
    /// HELLO proposed a wire version the backend cannot honor (e.g.
    /// epoch-tagged frames against an unwindowed service).
    WireVersionMismatch,
    /// HELLO's epoch mode does not match the backend (windowed vs plain).
    EpochModeMismatch,
    /// A REPORT batch was rejected; the index names the offending frame
    /// and nothing from the batch was absorbed.
    BadFrame,
    /// An epoch-tagged frame named an epoch other than the open one.
    EpochMismatch,
    /// A query was malformed or out of bounds for the snapshot domain.
    BadQuery,
    /// A windowed query ran before any epoch was sealed, or asked for a
    /// zero-epoch window.
    EmptyWindow,
    /// A SEAL/windowed request reached an unwindowed backend, or a
    /// message arrived before HELLO.
    BadState,
    /// The server is shutting down and no longer accepts this request.
    ShuttingDown,
    /// A server-side fault (storage I/O failure, poisoned lock) — the
    /// request was valid but could not be served durably; retry after
    /// the operator clears the fault.
    Internal,
    /// The session sat idle past the server's configured idle timeout
    /// and was evicted; reconnect to continue.
    IdleTimeout,
    /// A REPLICATE request cannot be served: the backend is not a
    /// durable leader, replication has been sealed by promotion, or the
    /// requested start position precedes the leader's retained log
    /// (checkpoint pruning discarded it).
    ReplUnavailable,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            Self::Protocol => 0,
            Self::UnsupportedProto => 1,
            Self::KindMismatch => 2,
            Self::WireVersionMismatch => 3,
            Self::EpochModeMismatch => 4,
            Self::BadFrame => 5,
            Self::EpochMismatch => 6,
            Self::BadQuery => 7,
            Self::EmptyWindow => 8,
            Self::BadState => 9,
            Self::ShuttingDown => 10,
            Self::Internal => 11,
            Self::IdleTimeout => 12,
            Self::ReplUnavailable => 13,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => Self::Protocol,
            1 => Self::UnsupportedProto,
            2 => Self::KindMismatch,
            3 => Self::WireVersionMismatch,
            4 => Self::EpochModeMismatch,
            5 => Self::BadFrame,
            6 => Self::EpochMismatch,
            7 => Self::BadQuery,
            8 => Self::EmptyWindow,
            9 => Self::BadState,
            10 => Self::ShuttingDown,
            11 => Self::Internal,
            12 => Self::IdleTimeout,
            13 => Self::ReplUnavailable,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }
}

/// A server-sent error: the typed code, the offending frame index for
/// batch rejections (mirroring [`crate::ServiceError::BadFrame`]), and a
/// bounded human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// What went wrong.
    pub code: ErrorCode,
    /// For [`ErrorCode::BadFrame`]/[`ErrorCode::EpochMismatch`]: the
    /// zero-based index of the offending frame within the batch.
    pub index: Option<u64>,
    /// Human-readable diagnosis (capped at [`MAX_DETAIL_BYTES`]).
    pub detail: String,
}

impl RemoteError {
    /// Builds an error, truncating the detail to the protocol cap (on a
    /// UTF-8 boundary).
    #[must_use]
    pub fn new(code: ErrorCode, index: Option<u64>, detail: impl Into<String>) -> Self {
        let mut detail = detail.into();
        if detail.len() > MAX_DETAIL_BYTES {
            let mut cut = MAX_DETAIL_BYTES;
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            detail.truncate(cut);
        }
        Self {
            code,
            index,
            detail,
        }
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.code)?;
        if let Some(i) = self.index {
            write!(f, " at frame {i}")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

// --- messages ----------------------------------------------------------

/// A batch of raw wire frames in flight: the declared count plus the
/// back-to-back frame bytes, still undecoded (the session layer does not
/// re-encode reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportBatch {
    /// Declared number of frames.
    pub count: u64,
    /// The concatenated wire frames.
    pub frames: Vec<u8>,
}

/// Every message a client can send.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Session handshake.
    Hello(Hello),
    /// A batch of reports.
    Report(ReportBatch),
    /// A query.
    Query(Query),
    /// Seal the open epoch (windowed sessions only).
    Seal,
    /// Clean end of session.
    Bye,
    /// Probe the server's counters and durability progress (allowed
    /// before HELLO — it names no report kind).
    Status {
        /// Ask for the full metrics section in the reply. Encoded as a
        /// trailing flag byte only when set, so a legacy `STATUS` body
        /// is byte-identical to this variant with `verbose: false`.
        verbose: bool,
    },
    /// Fetch a full metrics-registry snapshot (allowed before HELLO —
    /// it names no report kind).
    Metrics,
    /// Become a follower: ask a durable leader to stream its acked WAL
    /// records from absolute record position `start` (allowed before
    /// HELLO — it names no report kind; the records carry their own wire
    /// version). The session becomes a long-lived push stream.
    Replicate {
        /// First record (0-based, from the leader's log origin) the
        /// follower wants; records before it are already applied.
        start: u64,
    },
    /// Follower → leader progress report: records applied so far. The
    /// leader uses it only for lag accounting — a garbage position can
    /// never corrupt leader state.
    ReplAck {
        /// Absolute record position the follower has durably applied.
        acked: u64,
    },
    /// Fetch the newest samples from the server's metrics time-series
    /// ring (allowed before HELLO — it names no report kind).
    MetricsRange {
        /// Maximum number of samples wanted, newest last; the server
        /// clamps to its ring contents and [`MAX_RANGE_SAMPLES`].
        ///
        /// [`MAX_RANGE_SAMPLES`]: crate::obs::MAX_RANGE_SAMPLES
        max: u64,
    },
    /// Probe the server's derived component-health verdicts (allowed
    /// before HELLO — it names no report kind).
    Health,
}

/// Every message a server can send.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Handshake accepted.
    HelloOk(HelloOk),
    /// Batch absorbed in full.
    ReportOk {
        /// Number of frames absorbed (the batch's count).
        accepted: u64,
    },
    /// Query answered.
    QueryOk(QueryReply),
    /// Epoch sealed.
    SealOk {
        /// Id of the epoch just sealed.
        epoch: u64,
    },
    /// Session closed cleanly.
    ByeOk,
    /// Counters and durability progress.
    StatusOk(StatusReply),
    /// A full metrics-registry snapshot, led by the exposition version
    /// byte ([`METRICS_VERSION`]).
    MetricsOk(RegistrySnapshot),
    /// Replication accepted: streaming begins at `start`.
    ReplOk {
        /// The start position the stream honors (echo of the request).
        start: u64,
        /// Records in the leader's log at accept time — the follower's
        /// initial lag is `leader_records - start`.
        leader_records: u64,
    },
    /// One pushed WAL record (leader → follower).
    ReplRecord {
        /// Absolute record position of this record in the leader's log.
        position: u64,
        /// The WAL record body (type byte + payload, no len/CRC framing
        /// — the envelope delimits it and the follower's own log
        /// re-frames it). Never empty.
        body: Vec<u8>,
    },
    /// The newest time-series ring samples, led by the exposition
    /// version byte ([`METRICS_VERSION`] — samples are registry
    /// snapshots, so they share the metrics exposition version).
    MetricsRangeOk(MetricsRange),
    /// The derived component-health report, led by its own exposition
    /// version byte ([`HEALTH_VERSION`]).
    HealthOk(HealthReport),
    /// Request rejected.
    Error(RemoteError),
}

impl ClientMsg {
    /// Encodes the message body (type byte + payload, no envelope).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Self::Hello(h) => {
                out.push(MSG_HELLO);
                out.extend_from_slice(&HELLO_MAGIC);
                out.push(PROTO_VERSION);
                out.push(h.kind);
                out.push(h.wire_version);
                out.push(u8::from(h.windowed));
            }
            Self::Report(batch) => return encode_report_body(batch.count, &batch.frames),
            Self::Query(q) => {
                out.push(MSG_QUERY);
                match q.window {
                    Some(k) => {
                        out.push(1);
                        put_varint(&mut out, k);
                    }
                    None => out.push(0),
                }
                match q.op {
                    QueryOp::Range { a, b } => {
                        out.push(OP_RANGE);
                        put_varint(&mut out, a);
                        put_varint(&mut out, b);
                    }
                    QueryOp::Prefix { b } => {
                        out.push(OP_PREFIX);
                        put_varint(&mut out, b);
                    }
                    QueryOp::Point { z } => {
                        out.push(OP_POINT);
                        put_varint(&mut out, z);
                    }
                    QueryOp::Quantile { phi } => {
                        out.push(OP_QUANTILE);
                        out.extend_from_slice(&phi.to_bits().to_le_bytes());
                    }
                }
            }
            Self::Seal => out.push(MSG_SEAL),
            Self::Bye => out.push(MSG_BYE),
            Self::Status { verbose } => {
                out.push(MSG_STATUS);
                if *verbose {
                    out.push(1);
                }
            }
            Self::Metrics => out.push(MSG_METRICS),
            Self::Replicate { start } => {
                out.push(MSG_REPLICATE);
                out.extend_from_slice(&HELLO_MAGIC);
                out.push(PROTO_VERSION);
                put_varint(&mut out, *start);
            }
            Self::ReplAck { acked } => {
                out.push(MSG_REPL_ACK);
                put_varint(&mut out, *acked);
            }
            Self::MetricsRange { max } => {
                out.push(MSG_METRICS_RANGE);
                put_varint(&mut out, *max);
            }
            Self::Health => out.push(MSG_HEALTH),
        }
        out
    }

    /// Decodes one message body. Total: any malformed input is a
    /// [`WireError`], never a panic, and nothing is allocated beyond the
    /// input's own length.
    ///
    /// # Errors
    ///
    /// Fails on an empty body, an unknown type byte, a malformed payload,
    /// or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let msg = match r.u8()? {
            MSG_HELLO => {
                let magic = [r.u8()?, r.u8()?];
                if magic != HELLO_MAGIC {
                    return Err(WireError::BadMagic(magic));
                }
                let proto = r.u8()?;
                if proto != PROTO_VERSION {
                    return Err(WireError::UnsupportedVersion(proto));
                }
                let kind = r.u8()?;
                let wire_version = r.u8()?;
                if wire_version != WIRE_V1 && wire_version != WIRE_EPOCH {
                    return Err(WireError::UnsupportedVersion(wire_version));
                }
                let windowed = decode_bool(&mut r)?;
                Self::Hello(Hello {
                    kind,
                    wire_version,
                    windowed,
                })
            }
            MSG_REPORT => {
                let count = r.varint()?;
                let frames = r.bytes(r.remaining())?.to_vec();
                // The smallest well-formed wire frame is 5 bytes
                // (magic + version + kind + ≥1 payload byte); a count
                // that cannot fit the payload is rejected here so later
                // per-frame allocations stay bounded by real bytes.
                if count > frames.len() as u64 {
                    return Err(WireError::Malformed("frame count exceeds payload"));
                }
                Self::Report(ReportBatch { count, frames })
            }
            MSG_QUERY => {
                let window = if decode_bool(&mut r)? {
                    let k = r.varint()?;
                    if k == 0 {
                        return Err(WireError::Malformed("zero-epoch window"));
                    }
                    Some(k)
                } else {
                    None
                };
                let op = match r.u8()? {
                    OP_RANGE => {
                        let a = r.varint()?;
                        let b = r.varint()?;
                        if a > b {
                            return Err(WireError::Malformed("range lower bound above upper"));
                        }
                        QueryOp::Range { a, b }
                    }
                    OP_PREFIX => QueryOp::Prefix { b: r.varint()? },
                    OP_POINT => QueryOp::Point { z: r.varint()? },
                    OP_QUANTILE => {
                        let phi = f64::from_bits(u64_le(&mut r)?);
                        if !phi.is_finite() || !(0.0..=1.0).contains(&phi) {
                            return Err(WireError::Malformed("quantile phi outside [0, 1]"));
                        }
                        QueryOp::Quantile { phi }
                    }
                    _ => return Err(WireError::Malformed("unknown query op")),
                };
                Self::Query(Query { op, window })
            }
            MSG_SEAL => Self::Seal,
            MSG_BYE => Self::Bye,
            MSG_STATUS => {
                // Empty payload is the legacy plain probe; the only
                // accepted extension is a single `1` flag byte. A `0`
                // byte is rejected (no encoder emits it), keeping the
                // encoding canonical.
                let verbose = if r.remaining() == 0 {
                    false
                } else if r.u8()? == 1 {
                    true
                } else {
                    return Err(WireError::Malformed("status verbose flag not 1"));
                };
                Self::Status { verbose }
            }
            MSG_METRICS => Self::Metrics,
            MSG_REPLICATE => {
                let magic = [r.u8()?, r.u8()?];
                if magic != HELLO_MAGIC {
                    return Err(WireError::BadMagic(magic));
                }
                let proto = r.u8()?;
                if proto != PROTO_VERSION {
                    return Err(WireError::UnsupportedVersion(proto));
                }
                Self::Replicate { start: r.varint()? }
            }
            MSG_REPL_ACK => Self::ReplAck { acked: r.varint()? },
            MSG_METRICS_RANGE => Self::MetricsRange { max: r.varint()? },
            MSG_HEALTH => Self::Health,
            t => return Err(WireError::UnknownKind(t)),
        };
        expect_consumed(&r, body.len())?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Encodes the message body (type byte + payload, no envelope).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Self::HelloOk(h) => {
                out.push(MSG_HELLO_OK);
                out.push(h.kind);
                out.push(h.wire_version);
                out.push(u8::from(h.windowed));
                put_varint(&mut out, h.domain);
            }
            Self::ReportOk { accepted } => {
                out.push(MSG_REPORT_OK);
                put_varint(&mut out, *accepted);
            }
            Self::QueryOk(reply) => {
                out.push(MSG_QUERY_OK);
                match reply.result {
                    QueryResult::Fraction(f) => {
                        out.push(0);
                        out.extend_from_slice(&f.to_bits().to_le_bytes());
                    }
                    QueryResult::Index(i) => {
                        out.push(1);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                }
                put_varint(&mut out, reply.version);
                put_varint(&mut out, reply.num_reports);
                match reply.window {
                    Some((first, last)) => {
                        out.push(1);
                        put_varint(&mut out, first);
                        put_varint(&mut out, last);
                    }
                    None => out.push(0),
                }
            }
            Self::SealOk { epoch } => {
                out.push(MSG_SEAL_OK);
                put_varint(&mut out, *epoch);
            }
            Self::ByeOk => out.push(MSG_BYE_OK),
            Self::StatusOk(s) => {
                out.push(MSG_STATUS_OK);
                put_varint(&mut out, s.sessions);
                put_varint(&mut out, s.frames_absorbed);
                put_varint(&mut out, s.frames_rejected);
                put_varint(&mut out, s.num_reports);
                put_varint(&mut out, s.snapshot_version);
                match s.current_epoch {
                    Some(epoch) => {
                        out.push(1);
                        put_varint(&mut out, epoch);
                    }
                    None => out.push(0),
                }
                match &s.durable {
                    Some(d) => {
                        out.push(1);
                        match d.last_checkpoint {
                            Some(id) => {
                                out.push(1);
                                put_varint(&mut out, id);
                            }
                            None => out.push(0),
                        }
                        put_varint(&mut out, d.wal_segment_seq);
                        put_varint(&mut out, d.wal_records);
                        put_varint(&mut out, d.wal_frames);
                        put_varint(&mut out, d.checkpoint_failures);
                        out.push(u8::from(d.wedged));
                    }
                    None => out.push(0),
                }
                // Trailing sections are appended in ascending tag order
                // only when present, so a reply without them is
                // byte-identical to the legacy encoding and old decoders
                // stop cleanly at the end.
                if let Some(m) = &s.metrics {
                    out.push(1);
                    m.encode_into(&mut out);
                }
                if let Some(h) = &s.health {
                    out.push(2);
                    h.encode_into(&mut out);
                }
            }
            Self::MetricsOk(snapshot) => {
                out.push(MSG_METRICS_OK);
                out.push(METRICS_VERSION);
                snapshot.encode_into(&mut out);
            }
            Self::ReplOk {
                start,
                leader_records,
            } => {
                out.push(MSG_REPL_OK);
                put_varint(&mut out, *start);
                put_varint(&mut out, *leader_records);
            }
            Self::ReplRecord { position, body } => {
                out.push(MSG_REPL_REC);
                put_varint(&mut out, *position);
                out.extend_from_slice(body);
            }
            Self::MetricsRangeOk(range) => {
                out.push(MSG_METRICS_RANGE_OK);
                out.push(METRICS_VERSION);
                range.encode_into(&mut out);
            }
            Self::HealthOk(report) => {
                out.push(MSG_HEALTH_OK);
                out.push(HEALTH_VERSION);
                report.encode_into(&mut out);
            }
            Self::Error(e) => {
                out.push(MSG_ERROR);
                out.push(e.code.to_u8());
                match e.index {
                    Some(i) => {
                        out.push(1);
                        put_varint(&mut out, i);
                    }
                    None => out.push(0),
                }
                let detail = e.detail.as_bytes();
                let cut = detail.len().min(MAX_DETAIL_BYTES);
                put_varint(&mut out, cut as u64);
                out.extend_from_slice(&detail[..cut]);
            }
        }
        out
    }

    /// Decodes one message body. Total, like [`ClientMsg::decode`].
    ///
    /// # Errors
    ///
    /// Fails on an empty body, an unknown type byte, a malformed payload,
    /// or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let msg = match r.u8()? {
            MSG_HELLO_OK => {
                let kind = r.u8()?;
                let wire_version = r.u8()?;
                let windowed = decode_bool(&mut r)?;
                let domain = r.varint()?;
                Self::HelloOk(HelloOk {
                    kind,
                    wire_version,
                    windowed,
                    domain,
                })
            }
            MSG_REPORT_OK => Self::ReportOk {
                accepted: r.varint()?,
            },
            MSG_QUERY_OK => {
                let result = match r.u8()? {
                    0 => QueryResult::Fraction(f64::from_bits(u64_le(&mut r)?)),
                    1 => QueryResult::Index(u64_le(&mut r)?),
                    _ => return Err(WireError::Malformed("unknown query result tag")),
                };
                let version = r.varint()?;
                let num_reports = r.varint()?;
                let window = if decode_bool(&mut r)? {
                    Some((r.varint()?, r.varint()?))
                } else {
                    None
                };
                Self::QueryOk(QueryReply {
                    result,
                    version,
                    num_reports,
                    window,
                })
            }
            MSG_SEAL_OK => Self::SealOk { epoch: r.varint()? },
            MSG_BYE_OK => Self::ByeOk,
            MSG_STATUS_OK => {
                let sessions = r.varint()?;
                let frames_absorbed = r.varint()?;
                let frames_rejected = r.varint()?;
                let num_reports = r.varint()?;
                let snapshot_version = r.varint()?;
                let current_epoch = if decode_bool(&mut r)? {
                    Some(r.varint()?)
                } else {
                    None
                };
                let durable = if decode_bool(&mut r)? {
                    let last_checkpoint = if decode_bool(&mut r)? {
                        Some(r.varint()?)
                    } else {
                        None
                    };
                    Some(DurableProgress {
                        last_checkpoint,
                        wal_segment_seq: r.varint()?,
                        wal_records: r.varint()?,
                        wal_frames: r.varint()?,
                        checkpoint_failures: r.varint()?,
                        wedged: decode_bool(&mut r)?,
                    })
                } else {
                    None
                };
                // Trailing sections: ascending tag order, each at most
                // once. A legacy reply simply has no section bytes.
                let mut metrics = None;
                let mut health = None;
                while r.remaining() > 0 {
                    match r.u8()? {
                        1 if metrics.is_none() && health.is_none() => {
                            metrics = Some(RegistrySnapshot::decode_from(&mut r)?);
                        }
                        2 if health.is_none() => {
                            health = Some(HealthReport::decode_from(&mut r)?);
                        }
                        _ => return Err(WireError::Malformed("bad status section tag")),
                    }
                }
                Self::StatusOk(StatusReply {
                    sessions,
                    frames_absorbed,
                    frames_rejected,
                    num_reports,
                    snapshot_version,
                    current_epoch,
                    durable,
                    metrics,
                    health,
                })
            }
            MSG_METRICS_OK => {
                let version = r.u8()?;
                if version != METRICS_VERSION {
                    return Err(WireError::UnsupportedVersion(version));
                }
                Self::MetricsOk(RegistrySnapshot::decode_from(&mut r)?)
            }
            MSG_REPL_OK => Self::ReplOk {
                start: r.varint()?,
                leader_records: r.varint()?,
            },
            MSG_REPL_REC => {
                let position = r.varint()?;
                if r.remaining() == 0 {
                    return Err(WireError::Malformed("empty replication record body"));
                }
                let body = r.bytes(r.remaining())?.to_vec();
                Self::ReplRecord { position, body }
            }
            MSG_METRICS_RANGE_OK => {
                let version = r.u8()?;
                if version != METRICS_VERSION {
                    return Err(WireError::UnsupportedVersion(version));
                }
                Self::MetricsRangeOk(MetricsRange::decode_from(&mut r)?)
            }
            MSG_HEALTH_OK => {
                let version = r.u8()?;
                if version != HEALTH_VERSION {
                    return Err(WireError::UnsupportedVersion(version));
                }
                Self::HealthOk(HealthReport::decode_from(&mut r)?)
            }
            MSG_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)?;
                let index = if decode_bool(&mut r)? {
                    Some(r.varint()?)
                } else {
                    None
                };
                let len = r.varint()?;
                if len > MAX_DETAIL_BYTES as u64 {
                    return Err(WireError::Malformed("error detail over cap"));
                }
                let detail = String::from_utf8(r.bytes(len as usize)?.to_vec())
                    .map_err(|_| WireError::Malformed("error detail is not UTF-8"))?;
                Self::Error(RemoteError {
                    code,
                    index,
                    detail,
                })
            }
            t => return Err(WireError::UnknownKind(t)),
        };
        expect_consumed(&r, body.len())?;
        Ok(msg)
    }
}

/// A REPORT batch *borrowed* from the message body it arrived in: the
/// declared count plus the back-to-back frame bytes as a subslice of the
/// envelope buffer. The server's hot path decodes REPORT bodies through
/// this view instead of [`ClientMsg::decode`], so the frame bytes are
/// never copied between the socket buffer and the shard absorb — each
/// frame is decoded from a borrowed subslice end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReportFrames<'a> {
    /// Declared number of frames.
    pub count: u64,
    /// The concatenated wire frames, borrowed from the envelope body.
    pub frames: &'a [u8],
}

/// Decodes a REPORT message body (`body[0]` must be [`MSG_REPORT`]) into
/// a borrowed [`ReportFrames`], applying exactly the validation
/// [`ClientMsg::decode`] applies — the two paths must reject hostile
/// bodies identically.
pub(crate) fn decode_report_frames(body: &[u8]) -> Result<ReportFrames<'_>, WireError> {
    let mut r = Reader::new(body);
    if r.u8()? != MSG_REPORT {
        return Err(WireError::Malformed("not a REPORT body"));
    }
    let count = r.varint()?;
    let frames = r.bytes(r.remaining())?;
    // The smallest well-formed wire frame is 5 bytes (magic + version +
    // kind + ≥1 payload byte); a count that cannot fit the payload is
    // rejected here so later per-frame work stays bounded by real bytes.
    if count > frames.len() as u64 {
        return Err(WireError::Malformed("frame count exceeds payload"));
    }
    Ok(ReportFrames { count, frames })
}

/// Encodes a REPORT message body straight from borrowed frame bytes —
/// the hot replay path ([`super::LdpClient::send_stream`]) uses this to
/// avoid copying each batch into an owned [`ReportBatch`] first.
#[must_use]
pub fn encode_report_body(count: u64, frames: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(frames.len() + 11);
    out.push(MSG_REPORT);
    put_varint(&mut out, count);
    out.extend_from_slice(frames);
    out
}

/// Reads an 8-byte little-endian `u64` totally: short input is
/// [`WireError::Truncated`], never a panic — there is no `expect` or
/// `unwrap` on any path reachable from network bytes.
fn u64_le(r: &mut Reader<'_>) -> Result<u64, WireError> {
    match <[u8; 8]>::try_from(r.bytes(8)?) {
        Ok(raw) => Ok(u64::from_le_bytes(raw)),
        Err(_) => Err(WireError::Truncated),
    }
}

fn decode_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Malformed("flag byte not 0/1")),
    }
}

fn expect_consumed(r: &Reader<'_>, _len: usize) -> Result<(), WireError> {
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes after message"));
    }
    Ok(())
}

// --- envelope I/O ------------------------------------------------------

/// Writes one enveloped message (length prefix + body).
///
/// # Errors
///
/// Fails on I/O errors; a body over [`MAX_MESSAGE_BYTES`] (which no
/// well-behaved caller produces — batches are split by the client) is
/// rejected as [`NetError::TooLarge`].
pub fn write_message(w: &mut impl Write, body: &[u8]) -> Result<(), NetError> {
    if body.is_empty() || body.len() > MAX_MESSAGE_BYTES {
        return Err(NetError::TooLarge {
            declared: body.len() as u64,
        });
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one enveloped message body, blocking. The declared length is
/// validated against `(1 ..= MAX_MESSAGE_BYTES)` *before* any allocation,
/// so a hostile 4 GiB prefix costs nothing.
///
/// # Errors
///
/// [`NetError::Disconnected`] on clean EOF before the first length byte;
/// [`NetError::TooLarge`]/[`NetError::Proto`] on hostile lengths;
/// [`NetError::Io`] on transport failures (including EOF mid-message).
pub fn read_message(r: &mut impl Read) -> Result<Vec<u8>, NetError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Err(NetError::Disconnected),
            Ok(0) => return Err(NetError::Proto(WireError::Truncated)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(NetError::Proto(WireError::Malformed("empty message")));
    }
    if len > MAX_MESSAGE_BYTES {
        return Err(NetError::TooLarge {
            declared: len as u64,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => NetError::Proto(WireError::Truncated),
        _ => NetError::Io(e),
    })?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::expose::{MetricEntry, MetricValue};
    use crate::obs::{ComponentHealth, HealthState, Histo, TimeSample};

    fn sample_health() -> HealthReport {
        HealthReport {
            components: vec![
                ComponentHealth {
                    component: "storage".into(),
                    state: HealthState::Healthy,
                    detail: "wal append p99 below threshold".into(),
                },
                ComponentHealth {
                    component: "repl".into(),
                    state: HealthState::Degraded,
                    detail: "follower lag 5000 >= 4096".into(),
                },
            ],
        }
    }

    fn sample_range() -> MetricsRange {
        MetricsRange {
            interval_ms: 250,
            samples: vec![
                TimeSample {
                    seq: 6,
                    at_unix_ms: 1_000,
                    snapshot: RegistrySnapshot::default(),
                },
                TimeSample {
                    seq: 7,
                    at_unix_ms: 1_250,
                    snapshot: sample_snapshot(),
                },
            ],
        }
    }

    fn sample_snapshot() -> RegistrySnapshot {
        let histo = Histo::new();
        histo.record(0);
        histo.record(900);
        histo.record(u64::MAX);
        RegistrySnapshot::from_entries(vec![
            MetricEntry {
                name: "net.bytes_in".into(),
                value: MetricValue::Counter(123_456),
            },
            MetricEntry {
                name: "net.queue_depth_hw".into(),
                value: MetricValue::Gauge(7),
            },
            MetricEntry {
                name: "net.report_ns".into(),
                value: MetricValue::Histo(Box::new(histo.snapshot())),
            },
        ])
    }

    #[test]
    fn messages_roundtrip() {
        let msgs = [
            ClientMsg::Hello(Hello {
                kind: 3,
                wire_version: WIRE_EPOCH,
                windowed: true,
            }),
            ClientMsg::Report(ReportBatch {
                count: 2,
                frames: vec![0xAA; 12],
            }),
            ClientMsg::Query(Query {
                op: QueryOp::Range { a: 3, b: 900 },
                window: Some(4),
            }),
            ClientMsg::Query(Query {
                op: QueryOp::Quantile { phi: 0.5 },
                window: None,
            }),
            ClientMsg::Seal,
            ClientMsg::Bye,
            ClientMsg::Status { verbose: false },
            ClientMsg::Status { verbose: true },
            ClientMsg::Metrics,
            ClientMsg::Replicate { start: 0 },
            ClientMsg::Replicate { start: u64::MAX },
            ClientMsg::ReplAck { acked: 12_345 },
            ClientMsg::MetricsRange { max: 0 },
            ClientMsg::MetricsRange { max: 64 },
            ClientMsg::Health,
        ];
        for msg in msgs {
            let body = msg.encode();
            let decoded = ClientMsg::decode(&body).expect("decode own encoding");
            assert_eq!(decoded, msg);
            assert_eq!(decoded.encode(), body);
        }

        let replies = [
            ServerMsg::HelloOk(HelloOk {
                kind: 1,
                wire_version: WIRE_V1,
                windowed: false,
                domain: 1024,
            }),
            ServerMsg::ReportOk { accepted: 500 },
            ServerMsg::QueryOk(QueryReply {
                result: QueryResult::Fraction(0.25),
                version: 7,
                num_reports: 10_000,
                window: Some((3, 6)),
            }),
            ServerMsg::QueryOk(QueryReply {
                result: QueryResult::Index(511),
                version: 1,
                num_reports: 1,
                window: None,
            }),
            ServerMsg::SealOk { epoch: 9 },
            ServerMsg::ByeOk,
            ServerMsg::StatusOk(StatusReply {
                sessions: 3,
                frames_absorbed: 40_000,
                frames_rejected: 12,
                num_reports: 39_988,
                snapshot_version: 17,
                current_epoch: Some(6),
                durable: Some(DurableProgress {
                    last_checkpoint: Some(2),
                    wal_segment_seq: 5,
                    wal_records: 190,
                    wal_frames: 40_000,
                    checkpoint_failures: 1,
                    wedged: true,
                }),
                metrics: None,
                health: None,
            }),
            ServerMsg::StatusOk(StatusReply {
                sessions: 0,
                frames_absorbed: 0,
                frames_rejected: 0,
                num_reports: 0,
                snapshot_version: 0,
                current_epoch: None,
                durable: None,
                metrics: Some(sample_snapshot()),
                health: None,
            }),
            ServerMsg::StatusOk(StatusReply {
                sessions: 9,
                frames_absorbed: 90,
                frames_rejected: 0,
                num_reports: 90,
                snapshot_version: 4,
                current_epoch: None,
                durable: None,
                metrics: Some(sample_snapshot()),
                health: Some(sample_health()),
            }),
            ServerMsg::StatusOk(StatusReply {
                sessions: 9,
                frames_absorbed: 90,
                frames_rejected: 0,
                num_reports: 90,
                snapshot_version: 4,
                current_epoch: None,
                durable: None,
                metrics: None,
                health: Some(sample_health()),
            }),
            ServerMsg::MetricsOk(RegistrySnapshot::default()),
            ServerMsg::MetricsOk(sample_snapshot()),
            ServerMsg::ReplOk {
                start: 17,
                leader_records: 40_000,
            },
            ServerMsg::ReplRecord {
                position: 190,
                body: vec![0x01, 0x02, 0xAA, 0xBB],
            },
            ServerMsg::MetricsRangeOk(MetricsRange {
                interval_ms: 1_000,
                samples: Vec::new(),
            }),
            ServerMsg::MetricsRangeOk(sample_range()),
            ServerMsg::HealthOk(HealthReport {
                components: Vec::new(),
            }),
            ServerMsg::HealthOk(sample_health()),
            ServerMsg::Error(RemoteError::new(
                ErrorCode::BadFrame,
                Some(17),
                "frame 17 of HhReport batch rejected",
            )),
            ServerMsg::Error(RemoteError::new(
                ErrorCode::ReplUnavailable,
                None,
                "start precedes retained log",
            )),
        ];
        for msg in replies {
            let body = msg.encode();
            let decoded = ServerMsg::decode(&body).expect("decode own encoding");
            assert_eq!(decoded, msg);
            assert_eq!(decoded.encode(), body);
        }
    }

    #[test]
    fn hostile_bodies_are_rejected_not_panicked() {
        // Empty body, unknown types, truncations of a valid message.
        assert!(ClientMsg::decode(&[]).is_err());
        assert!(ServerMsg::decode(&[]).is_err());
        assert!(ClientMsg::decode(&[0x66]).is_err());
        assert!(ServerMsg::decode(&[0x66]).is_err());
        let body = ClientMsg::Query(Query {
            op: QueryOp::Quantile { phi: 0.75 },
            window: Some(2),
        })
        .encode();
        for cut in 0..body.len() {
            assert!(ClientMsg::decode(&body[..cut]).is_err(), "prefix {cut}");
        }
        // Trailing garbage is an error.
        let mut trailing = body;
        trailing.push(0);
        assert!(ClientMsg::decode(&trailing).is_err());

        // A REPORT whose declared count exceeds its payload bytes.
        let mut report = vec![super::MSG_REPORT];
        put_varint(&mut report, 1_000_000);
        report.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            ClientMsg::decode(&report),
            Err(WireError::Malformed(_))
        ));

        // A hostile quantile (NaN / out of range) is stopped at decode.
        for bad in [f64::NAN, f64::INFINITY, -0.5, 1.5] {
            let mut q = vec![super::MSG_QUERY, 0, OP_QUANTILE];
            q.extend_from_slice(&bad.to_bits().to_le_bytes());
            assert!(ClientMsg::decode(&q).is_err(), "accepted phi {bad}");
        }

        // REPLICATE without the handshake magic or with a future proto
        // version is rejected, and a pushed record must carry a body.
        assert!(ClientMsg::decode(&[MSG_REPLICATE, b'X', b'Y', 1, 0]).is_err());
        assert!(matches!(
            ClientMsg::decode(&[MSG_REPLICATE, b'L', b'N', PROTO_VERSION + 1, 0]),
            Err(WireError::UnsupportedVersion(_))
        ));
        let empty_rec = ServerMsg::decode(&[MSG_REPL_REC, 0]);
        assert!(matches!(empty_rec, Err(WireError::Malformed(_))));
    }

    /// A plain STATUS probe and its reply must encode to exactly the
    /// pre-metrics bytes, so old clients and servers interoperate with
    /// new ones unchanged.
    #[test]
    fn status_without_metrics_is_legacy_byte_identical() {
        // Legacy probe: bare type byte, no flag.
        assert_eq!(
            ClientMsg::Status { verbose: false }.encode(),
            vec![MSG_STATUS]
        );

        // Legacy reply: counters + option flags, nothing after `durable`.
        let reply = StatusReply {
            sessions: 3,
            frames_absorbed: 40,
            frames_rejected: 2,
            num_reports: 38,
            snapshot_version: 5,
            current_epoch: None,
            durable: None,
            metrics: None,
            health: None,
        };
        let body = ServerMsg::StatusOk(reply).encode();
        let legacy = vec![MSG_STATUS_OK, 3, 40, 2, 38, 5, 0, 0];
        assert_eq!(body, legacy);
    }

    #[test]
    fn hostile_metrics_payloads_are_rejected_not_panicked() {
        // STATUS with a flag byte other than 1 (0 is non-canonical).
        assert!(ClientMsg::decode(&[MSG_STATUS, 0]).is_err());
        assert!(ClientMsg::decode(&[MSG_STATUS, 2]).is_err());
        // STATUS with trailing garbage after the flag.
        assert!(ClientMsg::decode(&[MSG_STATUS, 1, 1]).is_err());

        // Truncate a verbose STATUS_OK at every prefix: typed errors
        // only — except the one boundary right before the metrics flag,
        // which is by construction a complete legacy reply (that
        // self-delimiting prefix is exactly what keeps old decoders
        // working against new servers).
        let reply = StatusReply {
            sessions: 1,
            frames_absorbed: 10,
            frames_rejected: 0,
            num_reports: 10,
            snapshot_version: 2,
            current_epoch: Some(3),
            durable: None,
            metrics: Some(sample_snapshot()),
            health: None,
        };
        let legacy_len = ServerMsg::StatusOk(StatusReply {
            metrics: None,
            ..reply.clone()
        })
        .encode()
        .len();
        let full = ServerMsg::StatusOk(reply).encode();
        for cut in 0..full.len() {
            if cut == legacy_len {
                assert!(
                    matches!(
                        ServerMsg::decode(&full[..cut]),
                        Ok(ServerMsg::StatusOk(s)) if s.metrics.is_none()
                    ),
                    "legacy boundary must decode as a metrics-free reply"
                );
                continue;
            }
            assert!(ServerMsg::decode(&full[..cut]).is_err(), "prefix {cut}");
        }
        // ... and the full body round-trips.
        assert!(ServerMsg::decode(&full).is_ok());
        // A bad metrics flag byte is rejected.
        let mut bad_flag = full.clone();
        let flag_at = full.len() - {
            let mut probe = Vec::new();
            sample_snapshot().encode_into(&mut probe);
            probe.len() + 1
        };
        bad_flag[flag_at] = 2;
        assert!(ServerMsg::decode(&bad_flag).is_err());
        // Trailing garbage after the metrics section is rejected.
        let mut trailing = full;
        trailing.push(0);
        assert!(ServerMsg::decode(&trailing).is_err());

        // METRICS_OK: truncations, unknown exposition version, garbage.
        let ok = ServerMsg::MetricsOk(sample_snapshot()).encode();
        for cut in 0..ok.len() {
            assert!(ServerMsg::decode(&ok[..cut]).is_err(), "prefix {cut}");
        }
        let mut wrong_version = ok.clone();
        wrong_version[1] = METRICS_VERSION + 1;
        assert!(matches!(
            ServerMsg::decode(&wrong_version),
            Err(WireError::UnsupportedVersion(v)) if v == METRICS_VERSION + 1
        ));
        let mut garbage = ok;
        let len = garbage.len();
        for b in &mut garbage[2..len] {
            *b ^= 0xA5;
        }
        assert!(ServerMsg::decode(&garbage).is_err());
    }

    /// The ops-plane messages (METRICS_RANGE/HEALTH and their replies)
    /// obey the same total-decoding discipline as the rest of the
    /// protocol: every truncation is a typed error, every wrong version
    /// byte is [`WireError::UnsupportedVersion`], and flipped payload
    /// bytes never panic.
    #[test]
    fn hostile_ops_plane_payloads_are_rejected_not_panicked() {
        // Client side: trailing bytes after the bare HEALTH probe, and a
        // truncated METRICS_RANGE varint.
        assert!(ClientMsg::decode(&[MSG_HEALTH, 0]).is_err());
        assert!(ClientMsg::decode(&[MSG_METRICS_RANGE]).is_err());
        assert!(ClientMsg::decode(&[MSG_METRICS_RANGE, 0x80]).is_err());

        // Server side: truncate both replies at every prefix.
        let range_ok = ServerMsg::MetricsRangeOk(sample_range()).encode();
        for cut in 0..range_ok.len() {
            assert!(ServerMsg::decode(&range_ok[..cut]).is_err(), "prefix {cut}");
        }
        let health_ok = ServerMsg::HealthOk(sample_health()).encode();
        for cut in 0..health_ok.len() {
            assert!(
                ServerMsg::decode(&health_ok[..cut]).is_err(),
                "prefix {cut}"
            );
        }

        // Unknown exposition versions are typed errors.
        let mut wrong = range_ok.clone();
        wrong[1] = METRICS_VERSION + 1;
        assert!(matches!(
            ServerMsg::decode(&wrong),
            Err(WireError::UnsupportedVersion(v)) if v == METRICS_VERSION + 1
        ));
        let mut wrong = health_ok.clone();
        wrong[1] = HEALTH_VERSION + 1;
        assert!(matches!(
            ServerMsg::decode(&wrong),
            Err(WireError::UnsupportedVersion(v)) if v == HEALTH_VERSION + 1
        ));

        // Flipped payload bytes: an error or a (different) valid decode,
        // never a panic; trailing garbage after a valid body is rejected.
        for body in [range_ok, health_ok] {
            let mut garbage = body.clone();
            let len = garbage.len();
            for b in &mut garbage[2..len] {
                *b ^= 0xA5;
            }
            let _ = ServerMsg::decode(&garbage);
            let mut trailing = body;
            trailing.push(0);
            assert!(ServerMsg::decode(&trailing).is_err());
        }

        // STATUS_OK section tags: out-of-order (2 before 1) and repeated
        // sections are rejected.
        let base = StatusReply {
            sessions: 1,
            frames_absorbed: 0,
            frames_rejected: 0,
            num_reports: 0,
            snapshot_version: 0,
            current_epoch: None,
            durable: None,
            metrics: None,
            health: None,
        };
        let legacy = ServerMsg::StatusOk(base.clone()).encode();
        let mut out_of_order = legacy.clone();
        out_of_order.push(2);
        sample_health().encode_into(&mut out_of_order);
        out_of_order.push(1);
        sample_snapshot().encode_into(&mut out_of_order);
        assert!(ServerMsg::decode(&out_of_order).is_err());
        let mut repeated = legacy;
        for _ in 0..2 {
            repeated.push(2);
            sample_health().encode_into(&mut repeated);
        }
        assert!(ServerMsg::decode(&repeated).is_err());

        // ... and the well-formed both-sections reply round-trips.
        let both = ServerMsg::StatusOk(StatusReply {
            metrics: Some(sample_snapshot()),
            health: Some(sample_health()),
            ..base
        });
        assert_eq!(ServerMsg::decode(&both.encode()).unwrap(), both);
    }

    #[test]
    fn envelope_rejects_oversized_declared_length_before_allocating() {
        let mut hostile: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0x00];
        assert!(matches!(
            read_message(&mut hostile),
            Err(NetError::TooLarge { declared }) if declared == u64::from(u32::MAX)
        ));
        let mut empty: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(read_message(&mut empty), Err(NetError::Proto(_))));
        let mut eof: &[u8] = &[];
        assert!(matches!(
            read_message(&mut eof),
            Err(NetError::Disconnected)
        ));
        let mut truncated: &[u8] = &[5, 0, 0, 0, 1, 2];
        assert!(matches!(
            read_message(&mut truncated),
            Err(NetError::Proto(WireError::Truncated))
        ));
    }

    #[test]
    fn report_body_fast_path_matches_the_message_codec() {
        let frames = vec![0x5A; 37];
        let via_msg = ClientMsg::Report(ReportBatch {
            count: 3,
            frames: frames.clone(),
        })
        .encode();
        assert_eq!(encode_report_body(3, &frames), via_msg);
    }

    #[test]
    fn error_detail_is_capped() {
        let long = "x".repeat(MAX_DETAIL_BYTES * 3);
        let e = RemoteError::new(ErrorCode::Protocol, None, long);
        assert_eq!(e.detail.len(), MAX_DETAIL_BYTES);
        let body = ServerMsg::Error(e.clone()).encode();
        assert_eq!(ServerMsg::decode(&body).unwrap(), ServerMsg::Error(e));
    }
}
