//! [`FollowerService`] — a hot standby / read replica built from a
//! [`DurableService`] fed by a leader's replication stream.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldp_ranges::{PersistableServer, SubtractableServer};

use crate::error::ServiceError;
use crate::obs::instruments::ReplInstruments;
use crate::obs::trace::set_current_span;
use crate::obs::{TraceEvent, TraceOutcome, TraceStage};
use crate::repl::feed::ReplFeed;
use crate::snapshot::SnapshotSource;
use crate::storage::recovery::RecoveryReport;
use crate::storage::wal::WalRecord;
use crate::storage::{DurableConfig, DurableService};
use crate::wire::WireReport;

/// Acknowledge progress to the leader after this many applied records
/// (plus immediately after every SEAL or CHECKPOINT, the natural commit
/// boundaries), so lag gauges stay fresh without an ack per record.
const ACK_EVERY: u64 = 32;

/// Most records pulled off the feed per pump iteration. Bounds the
/// memory of one batched apply and keeps ack latency bounded while a
/// cold follower drains a deep backlog.
const BATCH_MAX: usize = 256;

/// How long the pump thread blocks on the feed before re-checking the
/// stop flag — bounds how long [`FollowerService::promote`] waits.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// A durable service kept in sync with a remote leader by applying its
/// streamed WAL records.
///
/// The follower opens (or resumes) its **own** durable log, computes
/// its position from that log's length (positions count every record,
/// checkpoint markers included), subscribes at exactly that position,
/// and applies each pushed record through the same absorb/seal paths
/// live ingestion uses — all-or-nothing, so its state at position `p`
/// is bit-identical to the leader's at `p`. Records are re-framed into
/// the follower's log before the ack, and a record half-received at
/// disconnect is simply not applied (the stream analogue of the WAL
/// torn-tail rule): restarting resumes from the local tail.
///
/// Queries are served from the inner service's snapshots (expose it
/// over the socket with [`crate::net::server::LdpServer::bind_replica`]);
/// [`FollowerService::promote`] stops replication and hands the inner
/// durable service back as a normal leader.
pub struct FollowerService<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    service: Arc<DurableService<S>>,
    stop: Arc<AtomicBool>,
    position: Arc<AtomicU64>,
    leader_records: Arc<AtomicU64>,
    pump: Option<JoinHandle<()>>,
    last_error: Arc<Mutex<Option<String>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<S> FollowerService<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    /// Opens a *plain* follower in `dir`, recovering any local log
    /// first, and connects to the leader at `leader_addr` from the
    /// local tail position.
    ///
    /// # Errors
    ///
    /// Anything [`DurableService::open`] can raise, a local log that
    /// does not retain its origin (a follower must never checkpoint),
    /// or a refused/failed subscription ([`ServiceError::Io`] carrying
    /// the connect diagnosis).
    pub fn open(
        dir: impl AsRef<Path>,
        prototype: &S,
        leader_addr: &str,
        config: DurableConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let (service, report) =
            DurableService::open(dir, prototype, Self::follower_config(config))?;
        Ok((Self::start(Arc::new(service), leader_addr)?, report))
    }

    /// Opens a *windowed* follower; see [`FollowerService::open`].
    ///
    /// # Errors
    ///
    /// As [`FollowerService::open`], plus `window_len == 0`.
    pub fn open_windowed(
        dir: impl AsRef<Path>,
        prototype: &S,
        window_len: usize,
        leader_addr: &str,
        config: DurableConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let (service, report) = DurableService::open_windowed(
            dir,
            prototype,
            window_len,
            Self::follower_config(config),
        )?;
        Ok((Self::start(Arc::new(service), leader_addr)?, report))
    }

    /// A follower never checkpoints: its log must keep its origin so
    /// its length stays equal to its replication position.
    fn follower_config(mut config: DurableConfig) -> DurableConfig {
        config.checkpoint_every_records = 0;
        config
    }

    fn start(service: Arc<DurableService<S>>, leader_addr: &str) -> Result<Self, ServiceError> {
        let (records, origin) = service.scan_log()?;
        if !origin {
            return Err(ServiceError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "follower log does not start at segment 0 — it was checkpointed and cannot \
                 state its replication position",
            )));
        }
        // Subscribe synchronously so connect/refusal errors surface at
        // open instead of dying silently inside the pump thread.
        let mut feed = ReplFeed::connect(leader_addr, records).map_err(|e| {
            ServiceError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("replication subscription to {leader_addr} failed: {e}"),
            ))
        })?;
        feed.set_idle_timeout(IDLE_POLL).map_err(|e| {
            ServiceError::Io(std::io::Error::other(format!(
                "replication feed setup failed: {e}"
            )))
        })?;

        let stop = Arc::new(AtomicBool::new(false));
        let position = Arc::new(AtomicU64::new(records));
        let leader_records = Arc::new(AtomicU64::new(feed.leader_records()));
        let last_error = Arc::new(Mutex::new(None));
        let obs = ReplInstruments::register(service.registry());

        let pump = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let position = Arc::clone(&position);
            let leader_records = Arc::clone(&leader_records);
            let last_error = Arc::clone(&last_error);
            std::thread::Builder::new()
                .name("ldp-repl-follower".into())
                .spawn(move || {
                    if let Err(e) =
                        pump_loop(&service, &mut feed, &stop, &position, &leader_records, &obs)
                    {
                        *lock(&last_error) = Some(e);
                    }
                })
                .map_err(ServiceError::Io)?
        };

        Ok(Self {
            service,
            stop,
            position,
            leader_records,
            pump: Some(pump),
            last_error,
        })
    }

    /// Records applied and durably logged locally — the follower's
    /// replication position.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.position.load(Ordering::SeqCst)
    }

    /// The leader's record count as last observed over the stream — the
    /// follower's lag is `leader_records() - position()`.
    #[must_use]
    pub fn leader_records(&self) -> u64 {
        self.leader_records.load(Ordering::SeqCst)
    }

    /// The inner durable service — serve QUERY/STATUS from its
    /// snapshots (read replica). Writes must never go through this
    /// handle while replication runs; the socket front end enforces
    /// that for remote clients via
    /// [`crate::net::server::LdpServer::bind_replica`].
    #[must_use]
    pub fn service(&self) -> &Arc<DurableService<S>> {
        &self.service
    }

    /// Whether the pump thread is still streaming. `false` means the
    /// stream ended — [`FollowerService::last_error`] says why.
    #[must_use]
    pub fn running(&self) -> bool {
        self.pump.as_ref().is_some_and(|p| !p.is_finished())
    }

    /// The diagnosis of a dead stream, if it died. A clean leader
    /// shutdown is an error here too ("leader closed the stream") —
    /// the caller decides whether to reconnect or promote.
    #[must_use]
    pub fn last_error(&self) -> Option<String> {
        lock(&self.last_error).clone()
    }

    /// Stops replication and promotes the follower into a normal
    /// durable leader over its replicated log: the pump is joined, the
    /// log fsynced, and the inner service handed back. The caller can
    /// then ingest into it directly or serve it with
    /// [`crate::net::server::LdpServer::bind_durable`].
    ///
    /// # Errors
    ///
    /// A failed final fsync (the service is wedged; the log still holds
    /// every acked record).
    pub fn promote(mut self) -> Result<Arc<DurableService<S>>, ServiceError> {
        self.shutdown();
        self.service.sync()?;
        Ok(Arc::clone(&self.service))
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl<S> Drop for FollowerService<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The pump: drain a run of records off the feed, apply + log the run
/// under one WAL lock, ack at batch and commit boundaries. Returns the
/// stream's cause of death as a string (a stopped pump via the stop
/// flag returns `Ok`).
fn pump_loop<S>(
    service: &DurableService<S>,
    feed: &mut ReplFeed,
    stop: &AtomicBool,
    position: &AtomicU64,
    leader_records: &AtomicU64,
    obs: &ReplInstruments,
) -> Result<(), String>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let mut unacked = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            // Flush the final position so the leader's lag gauge is
            // accurate at the moment the follower detaches.
            let _ = feed.ack(position.load(Ordering::SeqCst));
            return Ok(());
        }
        let pushed = match feed.next_records(BATCH_MAX) {
            Ok(batch) if batch.is_empty() => {
                let leader = feed.leader_records();
                leader_records.store(leader, Ordering::SeqCst);
                obs.follower_lag_records
                    .set(leader.saturating_sub(position.load(Ordering::SeqCst)));
                continue;
            }
            Ok(batch) => batch,
            Err(e) => return Err(format!("replication stream ended: {e}")),
        };
        // Position continuity: the run must carry exactly the records
        // the local log expects next, in order.
        let start = position.load(Ordering::SeqCst);
        let mut expected = start;
        let mut records = Vec::with_capacity(pushed.len());
        for (at, body) in &pushed {
            if *at != expected {
                return Err(format!(
                    "leader pushed record {at} but the follower is at {expected} — \
                     the stream and the local log have diverged"
                ));
            }
            expected += 1;
            let record = WalRecord::decode_body(body)
                .map_err(|e| format!("pushed WAL record {at} is malformed: {e}"))?;
            records.push((*at, record));
        }
        let boundary = records
            .iter()
            .any(|(_, r)| !matches!(r, WalRecord::Frames { .. }));
        // The span of a replicated record is its leader-assigned log
        // position: the one id both sides already agree on, so a
        // leader's WalAppend and the follower's ReplApply for the same
        // record correlate without a wire change. The batched apply
        // stamps each record's own position onto its WalAppend; here
        // each record gets its ReplApply event with the run's wall time
        // amortized across its records.
        let started = Instant::now();
        let applied = service.apply_replicated_batch(&records);
        set_current_span(None);
        if let Some(trace) = service.trace() {
            let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let per_record = elapsed / records.len() as u64;
            for (at, _) in &records {
                trace.record(TraceEvent {
                    span: *at,
                    session: 0,
                    stage: TraceStage::ReplApply,
                    msg_type: 0,
                    outcome: if applied.is_ok() {
                        TraceOutcome::Ok
                    } else {
                        TraceOutcome::Error
                    },
                    ns: per_record,
                });
            }
        }
        applied
            .map_err(|e| format!("applying replicated records {start}..{expected} failed: {e}"))?;
        position.store(expected, Ordering::SeqCst);
        let leader = feed.leader_records();
        leader_records.store(leader, Ordering::SeqCst);
        obs.follower_lag_records
            .set(leader.saturating_sub(expected));
        obs.records_applied.add(records.len() as u64);
        unacked += records.len() as u64;
        if unacked >= ACK_EVERY || boundary {
            if let Err(e) = feed.ack(expected) {
                return Err(format!("acknowledging position {expected} failed: {e}"));
            }
            unacked = 0;
        }
    }
}
