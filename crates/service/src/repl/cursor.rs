//! The leader-side stream cursor: a [`PushSource`] that tail-follows
//! the leader's WAL and turns records into `REPL_REC` push messages.

use std::path::Path;
use std::sync::Arc;

use crate::net::proto::{ErrorCode, RemoteError, ServerMsg};
use crate::net::reactor::{Pull, PushSource};
use crate::repl::hub::ReplHub;
use crate::storage::wal::WalReader;

/// One follower's view into the leader's log. The reactor owns it via
/// the session's push slot and pulls whenever the output queue has
/// headroom; dropping it (session teardown, however it happens)
/// unsubscribes the follower from the hub.
pub(crate) struct ReplCursor {
    hub: Arc<ReplHub>,
    session: u64,
    reader: WalReader,
    /// Records still to discard before the subscribed start position —
    /// the reader can only open at the log origin, so a resuming
    /// follower's prefix is skipped record by record (cheap: decode
    /// without encode or network).
    skip: u64,
}

impl ReplCursor {
    /// Opens a cursor for `session`, positioned to emit record `start`
    /// next. The caller must already hold a hub subscription for the
    /// session; on error the caller unsubscribes.
    pub(crate) fn new(
        hub: Arc<ReplHub>,
        session: u64,
        dir: &Path,
        start: u64,
    ) -> std::io::Result<Self> {
        let reader = WalReader::open_start(dir)?;
        Ok(Self {
            hub,
            session,
            reader,
            skip: start,
        })
    }
}

impl PushSource for ReplCursor {
    fn pull(&mut self, max_bytes: usize) -> Pull {
        let mut bodies = Vec::new();
        let mut spent = 0usize;
        // Loop so a skipped prefix (follower resuming mid-log) is burned
        // through without bouncing off the reactor per batch.
        loop {
            let batch = match self
                .reader
                .next_batch(max_bytes.saturating_sub(spent).max(1))
            {
                Ok(batch) => batch,
                Err(e) => {
                    let body = ServerMsg::Error(RemoteError::new(
                        ErrorCode::ReplUnavailable,
                        None,
                        format!("replication stream failed reading the leader's log: {e}"),
                    ))
                    .encode();
                    return Pull::End(Some(body));
                }
            };
            if batch.is_empty() {
                // Caught up to the writer's tail.
                return if bodies.is_empty() {
                    Pull::Idle
                } else {
                    Pull::Bodies(bodies)
                };
            }
            let mut position = self.reader.records_read() - batch.len() as u64;
            for record in &batch {
                if self.skip > 0 {
                    self.skip -= 1;
                    position += 1;
                    continue;
                }
                let body = ServerMsg::ReplRecord {
                    position,
                    body: record.encode_body(),
                }
                .encode();
                spent += body.len();
                bodies.push(body);
                position += 1;
            }
            if spent >= max_bytes {
                return Pull::Bodies(bodies);
            }
        }
    }
}

impl Drop for ReplCursor {
    fn drop(&mut self) {
        self.hub.unsubscribe(self.session);
    }
}
