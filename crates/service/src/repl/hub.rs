//! The leader-side replication hub: follower registry, absolute record
//! count, lag gauges, and the reactor wake channel.
//!
//! One hub hangs off a [`crate::storage::DurableService`] once it first
//! serves as a leader. Append paths call [`ReplHub::record_appended`]
//! under the WAL lock, so the hub's count order is log order; streaming
//! sessions subscribe/ack/unsubscribe keyed by their session id.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::obs::instruments::ReplInstruments;

type Waker = Box<dyn Fn() + Send + Sync>;

/// Leader-side replication state shared between the durable store's
/// append paths and the network front end's streaming sessions.
pub(crate) struct ReplHub {
    /// Absolute records in the log, counted from segment 0.
    records: AtomicU64,
    /// Whether positions can still be served from the origin (flips off
    /// when a checkpoint prunes segments).
    available: AtomicBool,
    /// Cached `followers.len()` so the append hot path skips the lock
    /// while nobody is subscribed.
    follower_count: AtomicUsize,
    /// Session id → highest acknowledged position.
    followers: Mutex<HashMap<u64, u64>>,
    /// Reactor doorbells, rung on every append so streams pump promptly.
    wakers: Mutex<Vec<Waker>>,
    obs: ReplInstruments,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReplHub {
    pub(crate) fn new(records: u64, available: bool, obs: ReplInstruments) -> Self {
        Self {
            records: AtomicU64::new(records),
            available: AtomicBool::new(available),
            follower_count: AtomicUsize::new(0),
            followers: Mutex::new(HashMap::new()),
            wakers: Mutex::new(Vec::new()),
            obs,
        }
    }

    /// Absolute record count — the position the next appended record
    /// will take.
    pub(crate) fn records(&self) -> u64 {
        self.records.load(Ordering::SeqCst)
    }

    /// Marks origin positions unservable (checkpoint pruning removed
    /// segments). In-flight cursors keep streaming until they hit the
    /// pruned gap; new subscriptions are refused.
    pub(crate) fn mark_pruned(&self) {
        self.available.store(false, Ordering::SeqCst);
    }

    pub(crate) fn has_followers(&self) -> bool {
        self.follower_count.load(Ordering::SeqCst) > 0
    }

    /// Registers a reactor doorbell, rung on every appended record.
    pub(crate) fn add_waker(&self, waker: Waker) {
        lock(&self.wakers).push(waker);
    }

    /// One record hit the log (called under the WAL lock). Bumps the
    /// count, refreshes the lag gauge, and rings every doorbell so the
    /// streams pump on the next event-loop iteration.
    pub(crate) fn record_appended(&self) {
        self.records.fetch_add(1, Ordering::SeqCst);
        if !self.has_followers() {
            return;
        }
        self.refresh_lag(&lock(&self.followers));
        for waker in lock(&self.wakers).iter() {
            waker();
        }
    }

    /// Admits a follower at `start`. Refused when origin positions are
    /// no longer servable or `start` lies past the log's end.
    pub(crate) fn subscribe(&self, session: u64, start: u64) -> Result<(), String> {
        if !self.available.load(Ordering::SeqCst) {
            return Err(
                "the leader's retained log no longer starts at its origin (a checkpoint \
                 pruned earlier segments), so replication positions cannot be served"
                    .to_string(),
            );
        }
        let records = self.records();
        if start > records {
            return Err(format!(
                "requested start position {start} is past the leader's {records} records"
            ));
        }
        let mut followers = lock(&self.followers);
        followers.insert(session, start);
        self.follower_count.store(followers.len(), Ordering::SeqCst);
        self.obs.followers.set(followers.len() as u64);
        self.refresh_lag(&followers);
        Ok(())
    }

    /// Records a follower acknowledgement. Hostile values cannot move
    /// the gauge backwards or past the log's end: the ack is clamped to
    /// the record count and kept monotone per follower.
    pub(crate) fn ack(&self, session: u64, acked: u64) {
        let mut followers = lock(&self.followers);
        if let Some(prev) = followers.get_mut(&session) {
            *prev = (*prev).max(acked.min(self.records()));
        }
        self.refresh_lag(&followers);
    }

    /// Drops a follower (stream teardown) and refreshes both gauges.
    pub(crate) fn unsubscribe(&self, session: u64) {
        let mut followers = lock(&self.followers);
        followers.remove(&session);
        self.follower_count.store(followers.len(), Ordering::SeqCst);
        self.obs.followers.set(followers.len() as u64);
        self.refresh_lag(&followers);
    }

    /// Lag = records the *slowest* subscribed follower has not yet
    /// acknowledged (0 with no followers).
    fn refresh_lag(&self, followers: &HashMap<u64, u64>) {
        let lag = match followers.values().min() {
            Some(&slowest) => self.records().saturating_sub(slowest),
            None => 0,
        };
        self.obs.follower_lag_records.set(lag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MetricsRegistry;

    fn hub(records: u64, available: bool) -> (ReplHub, std::sync::Arc<MetricsRegistry>) {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let obs = ReplInstruments::register(&registry);
        (ReplHub::new(records, available, obs), registry)
    }

    #[test]
    fn subscribe_validates_availability_and_position() {
        let (h, _r) = hub(10, true);
        assert!(h.subscribe(1, 0).is_ok());
        assert!(h.subscribe(2, 10).is_ok());
        assert!(h.subscribe(3, 11).is_err());
        let (h, _r) = hub(10, false);
        assert!(h.subscribe(1, 0).is_err());
    }

    #[test]
    fn garbage_acks_are_clamped_and_monotone() {
        let (h, _r) = hub(10, true);
        h.subscribe(1, 0).unwrap();
        h.ack(1, u64::MAX);
        assert_eq!(h.obs.follower_lag_records.get(), 0); // clamped to 10
        h.ack(1, 3); // backwards: ignored
        assert_eq!(h.obs.follower_lag_records.get(), 0);
        h.ack(99, 5); // unknown session: ignored entirely
        assert_eq!(h.obs.followers.get(), 1);
    }

    #[test]
    fn lag_tracks_the_slowest_follower_and_appends() {
        let (h, _r) = hub(10, true);
        h.subscribe(1, 10).unwrap();
        h.subscribe(2, 4).unwrap();
        assert_eq!(h.obs.follower_lag_records.get(), 6);
        h.record_appended();
        assert_eq!(h.records(), 11);
        assert_eq!(h.obs.follower_lag_records.get(), 7);
        h.unsubscribe(2);
        assert_eq!(h.obs.follower_lag_records.get(), 1);
        h.unsubscribe(1);
        assert_eq!(h.obs.followers.get(), 0);
        assert_eq!(h.obs.follower_lag_records.get(), 0);
    }

    #[test]
    fn wakers_ring_only_while_followers_exist() {
        let (h, _r) = hub(0, true);
        let rings = std::sync::Arc::new(AtomicUsize::new(0));
        let counter = std::sync::Arc::clone(&rings);
        h.add_waker(Box::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        h.record_appended();
        assert_eq!(rings.load(Ordering::SeqCst), 0);
        h.subscribe(1, 0).unwrap();
        h.record_appended();
        assert_eq!(rings.load(Ordering::SeqCst), 1);
    }
}
