//! The follower-side stream client: connects to a leader, subscribes at
//! a position, and yields pushed WAL record bodies one at a time.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::net::proto::{ClientMsg, ServerMsg, MAX_MESSAGE_BYTES};
use crate::net::NetError;

/// A live replication feed from a leader.
///
/// Unlike [`crate::net::LdpClient`], the feed parses envelopes
/// incrementally from an internal buffer instead of using blocking
/// `read_exact` calls: the stream is server-push, so a read timeout is
/// the normal idle case, and a timeout inside `read_exact` could leave
/// half an envelope consumed and the stream desynced. Here a timed-out
/// `read` simply leaves the partial envelope buffered for the next
/// call.
#[derive(Debug)]
pub struct ReplFeed {
    stream: TcpStream,
    buf: Vec<u8>,
    next_position: u64,
    leader_records: u64,
}

impl ReplFeed {
    /// Connects to a leader and subscribes from absolute record
    /// position `start`. REPLICATE is allowed pre-HELLO (like STATUS),
    /// so no handshake precedes it.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a typed rejection
    /// ([`NetError::Remote`] — most notably `REPL_UNAVAILABLE` when the
    /// leader is not durable or has pruned its log origin).
    pub fn connect(addr: impl ToSocketAddrs, start: u64) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut feed = Self {
            stream,
            buf: Vec::new(),
            next_position: start,
            leader_records: 0,
        };
        feed.send(&ClientMsg::Replicate { start })?;
        // The subscription ack arrives before any pushed record; an
        // idle timeout during the handshake is a dead leader.
        let body = feed.read_body()?.ok_or(NetError::Disconnected)?;
        match ServerMsg::decode(&body)? {
            ServerMsg::ReplOk {
                start: echoed,
                leader_records,
            } => {
                if echoed != start {
                    return Err(NetError::UnexpectedReply(
                        "REPL_OK echoed a different start position",
                    ));
                }
                feed.leader_records = leader_records;
                Ok(feed)
            }
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply(
                "REPLICATE answered with non-REPL_OK",
            )),
        }
    }

    /// Sets how long [`ReplFeed::next_record`] blocks before reporting
    /// "nothing yet" — the follower pump's stop-flag poll interval.
    ///
    /// # Errors
    ///
    /// Socket option failures.
    pub fn set_idle_timeout(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Waits for the next pushed record. Returns `Ok(None)` when the
    /// read timed out with the stream still healthy (a partial envelope
    /// stays buffered); returns `Err(NetError::Disconnected)` when the
    /// leader closed — if that happens mid-envelope, the partial record
    /// is simply discarded, mirroring the WAL torn-tail rule.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, a typed error pushed by
    /// the leader, or disconnect.
    pub fn next_record(&mut self) -> Result<Option<(u64, Vec<u8>)>, NetError> {
        let Some(body) = self.read_body()? else {
            return Ok(None);
        };
        self.decode_record(&body).map(Some)
    }

    /// Waits for the next pushed record, then drains every *complete*
    /// record the socket reads buffered alongside it — a busy leader
    /// pushes records back to back, so one kernel round trip often
    /// carries dozens of envelopes, and handing them to the caller as
    /// one run lets the follower apply them under one WAL lock instead
    /// of one per record. Never blocks once the first record is in
    /// hand; returns an empty run when the initial read timed out.
    ///
    /// # Errors
    ///
    /// As [`ReplFeed::next_record`]. Records decoded before the failing
    /// one are discarded — the caller resumes from its own position, so
    /// nothing is lost.
    pub fn next_records(&mut self, max: usize) -> Result<Vec<(u64, Vec<u8>)>, NetError> {
        let Some(first) = self.read_body()? else {
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(16);
        out.push(self.decode_record(&first)?);
        while out.len() < max {
            match self.take_buffered_body()? {
                Some(body) => out.push(self.decode_record(&body)?),
                None => break,
            }
        }
        Ok(out)
    }

    fn decode_record(&mut self, body: &[u8]) -> Result<(u64, Vec<u8>), NetError> {
        match ServerMsg::decode(body)? {
            ServerMsg::ReplRecord { position, body } => {
                self.next_position = position + 1;
                self.leader_records = self.leader_records.max(self.next_position);
                Ok((position, body))
            }
            ServerMsg::Error(e) => Err(NetError::Remote(e)),
            _ => Err(NetError::UnexpectedReply(
                "replication stream pushed a non-REPL_REC message",
            )),
        }
    }

    /// Reports progress to the leader: `acked` records durably applied.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ack(&mut self, acked: u64) -> Result<(), NetError> {
        self.send(&ClientMsg::ReplAck { acked })
    }

    /// Position the next pushed record is expected to carry.
    #[must_use]
    pub fn next_position(&self) -> u64 {
        self.next_position
    }

    /// The leader's record count at subscribe time, advanced as records
    /// arrive — `leader_records() - next_position()` is a lag floor.
    #[must_use]
    pub fn leader_records(&self) -> u64 {
        self.leader_records
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), NetError> {
        let body = msg.encode();
        let mut envelope = Vec::with_capacity(4 + body.len());
        envelope.extend_from_slice(
            &u32::try_from(body.len())
                .expect("body under cap")
                .to_le_bytes(),
        );
        envelope.extend_from_slice(&body);
        self.stream.write_all(&envelope)?;
        Ok(())
    }

    /// Pulls one complete envelope body out of the buffer without
    /// touching the socket — `Ok(None)` means the buffer holds no
    /// complete envelope (a partial one stays put for the next read).
    fn take_buffered_body(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.buf.len() >= 4 {
            let len =
                u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if len == 0 || len > MAX_MESSAGE_BYTES {
                return Err(NetError::TooLarge {
                    declared: len as u64,
                });
            }
            if self.buf.len() >= 4 + len {
                let body = self.buf[4..4 + len].to_vec();
                self.buf.drain(..4 + len);
                return Ok(Some(body));
            }
        }
        Ok(None)
    }

    /// Pulls one complete envelope body, reading from the socket as
    /// needed. `Ok(None)` means the read timed out first.
    fn read_body(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        loop {
            if let Some(body) = self.take_buffered_body()? {
                return Ok(Some(body));
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}
