//! The network front end: socket-served ingestion and query serving.
//!
//! Everything below the service layer is in-process; a production
//! aggregator absorbing reports from millions of users has to do the same
//! work across an actual network boundary. This module adds that boundary
//! as a std-only threaded TCP stack — no async runtime, no external
//! crates, consistent with the offline shim-crate build — and keeps it
//! *fully testable by bit-identity*: every mechanism's state is an exact
//! integer sufficient statistic, so bytes-over-socket must produce
//! estimates bit-for-bit identical to in-process submission, and the
//! differential tests in `tests/net_differential.rs` hold it to that.
//!
//! ```text
//!   LdpClient ── TCP ──► reactor thread (epoll / portable poller)
//!   (HELLO,              │  non-blocking accept
//!    REPORT×n,           │  per-session read/write buffers + framing
//!    QUERY,              ▼
//!    SEAL, BYE)      job queue ──► worker pool ──► completions
//!                    (decoded        │ decode +        │ replies
//!                     batches)       ▼ submit_batch    ▼ (vectored
//!                        LdpService / EpochRing     reactor  writes)
//!                                    │ freeze
//!                                    ▼
//!                 RangeSnapshot / WindowedSnapshot
//! ```
//!
//! * [`proto`] — the length-prefixed session protocol layered on the
//!   [`crate::wire`] frames: a HELLO negotiating report kind + wire
//!   version + epoch mode, batched REPORT messages acked per batch (a bad
//!   frame rejects the whole batch with its index, reusing
//!   [`crate::ServiceError::BadFrame`] semantics), QUERY messages
//!   (range/prefix/point/quantile, optionally over a trailing window of
//!   sealed epochs), and SEAL/BYE control. Decoding is total: hostile
//!   bytes produce typed errors, never a panic, and declared lengths are
//!   capped before any allocation.
//! * [`server`] — [`LdpServer`]: one reactor thread owns every socket
//!   through a readiness poller (a thin std-only `epoll` wrapper on
//!   Linux, a portable tick-based fallback elsewhere), keeps per-session
//!   partial-read/partial-write buffers over the framing, and hands
//!   batches of complete messages to a small worker pool that executes
//!   them against a shared [`crate::LdpService`] (plain or windowed) —
//!   so a session costs a file descriptor, not an OS thread, and
//!   pipelined clients are served without a round trip per message.
//!   Queries answer from snapshots and never block ingestion; graceful
//!   shutdown drains in-flight work with bounded patience for stalled
//!   peers, seals the open epoch on windowed backends, and joins every
//!   thread.
//! * [`client`] — [`LdpClient`]: the blocking client used by the tests,
//!   `examples/net_pipeline.rs`, the socket replay path over
//!   [`crate::EncodedStream`], and the `net_throughput` benchmark.
//!
//! ## Transport is a pure function
//!
//! A REPORT batch is absorbed via [`crate::LdpService::submit_batch`]
//! (staged, all-or-nothing), which commits exactly the state a direct
//! [`crate::LdpService::submit_frame`] loop would produce. Merging is
//! exact and order-independent, so *any* interleaving of sessions across
//! worker threads and shards yields the same merged state — the socket
//! path adds transport, not semantics.

pub mod client;
pub(crate) mod ops;
mod poll;
pub mod proto;
pub(crate) mod reactor;
pub mod server;

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use client::LdpClient;
pub use poll::raise_nofile_limit;
pub use proto::{
    DurableProgress, ErrorCode, Hello, Query, QueryOp, QueryReply, QueryResult, RemoteError,
    StatusReply, HEALTH_VERSION, METRICS_VERSION, WIRE_EPOCH, WIRE_V1,
};
pub use server::{LdpServer, ServerStats};

use crate::error::{ServiceError, WireError};
use crate::obs::{HealthThresholds, MetricsRegistry, TraceRing};

/// Tuning knobs of [`LdpServer`]. `Default` is sized for tests and
/// laptop-scale benchmarks; a deployment raises `workers`/`queue_depth`.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Execution worker threads — the bound on *concurrently executing*
    /// messages, not on open sessions (the reactor holds as many
    /// sessions as the process has file descriptors).
    pub workers: usize,
    /// Bound on message batches in flight between the reactor and the
    /// worker pool; sessions beyond it keep their messages queued
    /// (backpressure) instead of fanning in unboundedly.
    pub queue_depth: usize,
    /// Reactor poll tick — bounds how stale the shutdown flag and the
    /// idle/drain clocks can get.
    pub idle_poll: Duration,
    /// Ticks of `idle_poll` tolerated without a byte of progress
    /// *mid-message or mid-flush* once shutdown has begun, before the
    /// connection is abandoned — bounds how long a half-sent message
    /// from a stalled client can delay drain.
    pub drain_patience: u32,
    /// Evict sessions that have been fully idle (no request in flight,
    /// nothing buffered either way) for longer than this, answering
    /// with a typed [`ErrorCode::IdleTimeout`] error before closing.
    /// `None` (the default) keeps idle sessions forever.
    pub idle_timeout: Option<Duration>,
    /// Force the portable tick-based poller even where the `epoll`
    /// backend is available — the path non-Linux builds run, kept
    /// selectable so Linux CI exercises it too.
    pub portable_poller: bool,
    /// Metrics registry the server instruments itself into. `None` (the
    /// default) creates a private registry — except for durable backends,
    /// which share the registry their storage layer already registered
    /// into, so one METRICS probe sees every tier.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Structured-event trace ring for session postmortems. `None` (the
    /// default) disables tracing entirely; recording also honors the
    /// ring's own runtime flag ([`TraceRing::set_enabled`]). A durable
    /// backend's own ring ([`crate::storage::DurableConfig::trace`]) is
    /// adopted when this is `None`, the same way the registry is.
    pub trace: Option<Arc<TraceRing>>,
    /// Bind address of the plain-HTTP ops endpoint (`GET /metrics`,
    /// `/health`, `/metrics/range`) — e.g. `"127.0.0.1:0"`. `None` (the
    /// default) serves no HTTP; the session-protocol introspection
    /// messages work either way.
    pub ops_addr: Option<String>,
    /// Interval of the background time-series sampler that freezes
    /// registry snapshots into the ring served by `METRICS_RANGE` and
    /// `GET /metrics/range`.
    pub sample_interval: Duration,
    /// Samples the time-series ring retains (clamped to at least 2, so
    /// a per-interval delta always has a pair).
    pub ring_capacity: usize,
    /// Thresholds the component-health model judges registry signals
    /// against (HEALTH message, verbose STATUS, `GET /health`).
    pub health: HealthThresholds,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            idle_poll: Duration::from_millis(20),
            drain_patience: 50,
            idle_timeout: None,
            portable_poller: false,
            registry: None,
            trace: None,
            ops_addr: None,
            sample_interval: Duration::from_secs(1),
            ring_capacity: 128,
            health: HealthThresholds::default(),
        }
    }
}

/// Errors surfaced by the network layer (both sides).
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, bind).
    Io(std::io::Error),
    /// Malformed session-protocol bytes (bad magic, unknown message
    /// type, truncated body...). Carries the codec's diagnosis.
    Proto(WireError),
    /// A declared message length exceeds [`proto::MAX_MESSAGE_BYTES`] —
    /// rejected before any allocation.
    TooLarge {
        /// The length the peer declared.
        declared: u64,
    },
    /// The peer closed the connection mid-session.
    Disconnected,
    /// The server answered with a typed error.
    Remote(RemoteError),
    /// The server answered with a well-formed message of the wrong type
    /// for the request in flight.
    UnexpectedReply(&'static str),
    /// A service-layer failure while absorbing or querying.
    Service(ServiceError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Proto(e) => write!(f, "session protocol error: {e}"),
            Self::TooLarge { declared } => write!(
                f,
                "declared message length {declared} exceeds the {} byte cap",
                proto::MAX_MESSAGE_BYTES
            ),
            Self::Disconnected => write!(f, "peer disconnected mid-session"),
            Self::Remote(e) => write!(f, "server rejected request: {e}"),
            Self::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
            Self::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Proto(e) => Some(e),
            Self::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        Self::Proto(e)
    }
}

impl From<ServiceError> for NetError {
    fn from(e: ServiceError) -> Self {
        Self::Service(e)
    }
}
