//! Crash recovery: newest valid checkpoint + WAL tail replay.
//!
//! Recovery rebuilds the exact pre-crash state in three steps:
//!
//! 1. **Checkpoint** — load the newest checkpoint that CRC-validates
//!    ([`crate::storage::checkpoint::latest_valid_checkpoint`]) and
//!    restore its serialized state into a prototype-built server. No
//!    restorable checkpoint means an empty starting state and a
//!    full-log replay — but only when the WAL verifiably starts at
//!    segment 0 (or is empty), so the replay covers the complete
//!    history. A WAL whose first segment is `> 0` was pruned by a
//!    checkpoint that is now corrupt or deleted; its records exist
//!    nowhere else, and replaying the surviving tail onto an empty
//!    state would silently drop them, so recovery refuses the open.
//! 2. **Replay** — scan WAL segments from the checkpoint's
//!    `replay_from_seq` in order, re-absorbing every FRAMES record and
//!    re-sealing every SEAL record through the *same* code paths live
//!    ingestion uses.
//! 3. **Torn-tail rule** — the first record that fails to parse, fails
//!    its CRC, or is rejected by the state machine ends replay *cleanly*:
//!    everything before it is kept, everything from it on is ignored. A
//!    crash can only tear the last record being written, so under
//!    [`crate::storage::FsyncPolicy::Always`] every acknowledged batch
//!    survives. Only that genuine crash shape — an unparseable record at
//!    the physical end of the log — is truncated when the log reopens
//!    for appending; mid-log damage or a record the state machine
//!    rejects (a mismatched prototype) refuses the reopen instead, so a
//!    misconfigured restart can never destroy acknowledged records.
//!
//! Because absorption is exact integer arithmetic, the recovered state is
//! bit-identical to an in-process server fed the same record prefix —
//! and checkpoint + tail replay is bit-identical to replaying the full
//! log, which the differential tests check mechanism by mechanism.

use std::path::Path;

use ldp_ranges::{PersistableServer, StateReader, SubtractableServer};

use crate::error::ServiceError;
use crate::snapshot::SnapshotSource;
use crate::storage::{checkpoint, wal};
use crate::window::EpochRing;
use crate::wire::WireReport;

/// How the scanned WAL ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStatus {
    /// Every record up to the physical end of the log parsed and applied.
    Clean,
    /// Replay stopped at the first invalid record (torn write, CRC
    /// mismatch, or a record the state machine rejected). Everything
    /// before the offset was applied; everything from it on is ignored.
    /// A tear at the physical end of the log (the crash artifact) is
    /// truncated when the log reopens for appending; damage anywhere
    /// else refuses the reopen instead of destroying acked records.
    Torn {
        /// Segment the offending record sits in.
        segment: u64,
        /// Byte offset of the offending record within that segment.
        offset: u64,
        /// Why the record was rejected.
        reason: String,
    },
}

/// Where the WAL writer resumes after recovery.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResumePoint {
    /// No usable segment exists: create segment `seq` fresh.
    Fresh {
        /// Sequence number for the new segment.
        seq: u64,
    },
    /// Continue appending to segment `seq`, truncated to `valid_len`
    /// first (discarding any torn tail).
    Continue {
        /// Sequence number of the segment to reopen.
        seq: u64,
        /// Length of its valid prefix.
        valid_len: u64,
    },
}

/// What recovery did — the observability record the durable service
/// keeps and the recovery tests assert on.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Id of the checkpoint restored, if any was valid.
    pub checkpoint_id: Option<u64>,
    /// WAL segments scanned during replay.
    pub segments_scanned: u64,
    /// Records applied (FRAMES + SEAL; CHECKPOINT markers are skipped).
    pub records_replayed: u64,
    /// Report frames re-absorbed from FRAMES records.
    pub frames_replayed: u64,
    /// How the log ended.
    pub tail: TailStatus,
    pub(crate) resume: ResumePoint,
    /// Whether a torn tail is a genuine crash artifact (an unparseable
    /// record at the physical end of the log) that is safe to truncate
    /// on reopen. `false` means the damage is *mid-log* (bit rot with
    /// valid segments after it, a sequence gap, or a CRC-valid record
    /// the state machine rejected — e.g. a mismatched prototype):
    /// truncating there would destroy acknowledged records, so opening
    /// for writing must refuse instead.
    pub(crate) safe_to_resume: bool,
}

/// Outcome of one record application: frames absorbed, or the reason
/// replay must stop here (the record is logically corrupt).
type ApplyResult = Result<u64, String>;

struct ReplayOutcome {
    segments_scanned: u64,
    records_replayed: u64,
    frames_replayed: u64,
    tail: TailStatus,
    resume: ResumePoint,
    safe_to_resume: bool,
}

/// Scans segments `>= from_seq` in order, applying each record. Stops at
/// the first torn/corrupt/rejected record or the first gap in the
/// segment sequence (segments after a gap are unreachable history).
fn replay_segments<F>(
    dir: &Path,
    from_seq: u64,
    mut apply: F,
) -> Result<ReplayOutcome, ServiceError>
where
    F: FnMut(&wal::WalRecord) -> ApplyResult,
{
    let segments: Vec<_> = wal::list_segments(dir)?
        .into_iter()
        .filter(|(seq, _)| *seq >= from_seq)
        .collect();
    // Only the physically last segment can hold a crash artifact: a
    // crash tears the record being written, and nothing is ever written
    // after it. Damage anywhere earlier is corruption, not a tear, and
    // truncating there would destroy acknowledged records.
    let last_seq = segments.last().map(|(seq, _)| *seq);
    let mut outcome = ReplayOutcome {
        segments_scanned: 0,
        records_replayed: 0,
        frames_replayed: 0,
        tail: TailStatus::Clean,
        resume: ResumePoint::Fresh { seq: from_seq },
        safe_to_resume: true,
    };
    let mut expected_seq = from_seq;
    for (seq, path) in &segments {
        let is_last = Some(*seq) == last_seq;
        if *seq != expected_seq {
            // A hole in the numbering: whatever lies beyond it cannot be
            // ordered after the applied prefix. A gap is never a crash
            // artifact (rotation is sequential), so resuming is refused.
            outcome.tail = TailStatus::Torn {
                segment: *seq,
                offset: 0,
                reason: format!("segment gap: expected seq {expected_seq}, found {seq}"),
            };
            outcome.safe_to_resume = false;
            return Ok(outcome);
        }
        let bytes = std::fs::read(path)?;
        outcome.segments_scanned += 1;
        let mut pos = match wal::check_segment_header(&bytes, *seq) {
            Ok(header) => header as usize,
            Err(e) => {
                outcome.tail = TailStatus::Torn {
                    segment: *seq,
                    offset: 0,
                    reason: format!("segment header: {e}"),
                };
                // A headerless *final* segment is the classic crash shape
                // (rotation created the file, the header never flushed).
                outcome.resume = ResumePoint::Fresh { seq: *seq };
                outcome.safe_to_resume = is_last;
                return Ok(outcome);
            }
        };
        while pos < bytes.len() {
            let (record, used) = match wal::decode_framed(&bytes[pos..]) {
                Ok(ok) => ok,
                Err(e) => {
                    outcome.tail = TailStatus::Torn {
                        segment: *seq,
                        offset: pos as u64,
                        reason: e.to_string(),
                    };
                    outcome.resume = ResumePoint::Continue {
                        seq: *seq,
                        valid_len: pos as u64,
                    };
                    outcome.safe_to_resume = is_last;
                    return Ok(outcome);
                }
            };
            match apply(&record) {
                Ok(frames) => {
                    if !matches!(record, wal::WalRecord::Checkpoint { .. }) {
                        outcome.records_replayed += 1;
                    }
                    outcome.frames_replayed += frames;
                }
                Err(reason) => {
                    // A CRC-valid record the state machine rejects was
                    // fully written and accepted live before it was
                    // logged — rejection here means a mismatched
                    // prototype or logic corruption, never a crash.
                    // Refuse to resume (truncating would destroy it).
                    outcome.tail = TailStatus::Torn {
                        segment: *seq,
                        offset: pos as u64,
                        reason,
                    };
                    outcome.resume = ResumePoint::Continue {
                        seq: *seq,
                        valid_len: pos as u64,
                    };
                    outcome.safe_to_resume = false;
                    return Ok(outcome);
                }
            }
            pos += used;
        }
        outcome.resume = ResumePoint::Continue {
            seq: *seq,
            valid_len: bytes.len() as u64,
        };
        expected_seq = seq + 1;
    }
    Ok(outcome)
}

/// Restores checkpoint state bytes into a prototype clone, requiring full
/// consumption — trailing bytes mean the prototype does not match the
/// configuration the checkpoint was taken under.
fn restore_checkpoint_state<S: PersistableServer>(
    state: &mut S,
    bytes: &[u8],
) -> Result<(), ServiceError> {
    let mut r = StateReader::new(bytes);
    state.restore_state(&mut r).map_err(ServiceError::Range)?;
    if r.remaining() != 0 {
        return Err(ServiceError::Range(ldp_ranges::RangeError::CorruptState(
            "checkpoint state has trailing bytes — prototype configuration mismatch",
        )));
    }
    Ok(())
}

/// Loads the newest valid checkpoint. When none is restorable (`None`:
/// start empty, replay everything), a from-scratch replay is exact only
/// if the complete history survives — the WAL starts at segment 0, or is
/// empty (a genuinely fresh directory). A first segment `> 0` means a
/// checkpoint once pruned the earlier segments, so the records it
/// covered exist nowhere else; whether its file is now corrupt
/// ([`checkpoint::CheckpointScan::AllCorrupt`]) or was deleted outright
/// (scanning as `NoFiles`), recovery must refuse rather than silently
/// resurrect a truncated state.
fn load_checkpoint(dir: &Path) -> Result<Option<checkpoint::Checkpoint>, ServiceError> {
    if let checkpoint::CheckpointScan::Valid(c) = checkpoint::latest_valid_checkpoint(dir)? {
        return Ok(Some(c));
    }
    let full_history = wal::list_segments(dir)?
        .first()
        .is_none_or(|(seq, _)| *seq == 0);
    if full_history {
        Ok(None)
    } else {
        Err(ServiceError::Range(ldp_ranges::RangeError::CorruptState(
            "no usable checkpoint (corrupt or deleted) and the WAL does not start \
             at segment 0; replaying the surviving tail would silently drop the \
             checkpointed records — restore a checkpoint from backup or inspect \
             the log",
        )))
    }
}

/// Decodes one FRAMES payload through the *same* batch decoder live
/// ingestion uses ([`crate::storage::store::decode_batch`]), so replay
/// accepts and rejects exactly what the live service would. The caller
/// applies the decoded reports to a staged clone and commits only if
/// every frame absorbs — the same all-or-nothing record semantics the
/// live `submit_batch` paths have, so a rejected record leaves no
/// partial absorption behind.
fn decode_frames_record<R: WireReport>(
    wire_version: u8,
    count: u64,
    frames: &[u8],
) -> Result<Vec<(Option<u64>, R)>, String> {
    crate::storage::store::decode_batch::<R>(wire_version, count, frames).map_err(|e| e.to_string())
}

/// Recovers a *plain* (all-time) server from `dir`: newest valid
/// checkpoint, then WAL tail replay, stopping cleanly at the first torn
/// or corrupt record.
///
/// The returned state is bit-identical to a fresh server that absorbed
/// exactly the logged prefix in order.
///
/// # Errors
///
/// I/O failures, or a checkpoint whose state does not match the
/// prototype's configuration. A torn *log* is not an error — it is the
/// expected crash artifact, reported in [`RecoveryReport::tail`].
pub fn recover_plain<S>(dir: &Path, prototype: &S) -> Result<(S, RecoveryReport), ServiceError>
where
    S: SnapshotSource + PersistableServer,
    S::Report: WireReport,
{
    let ckpt = load_checkpoint(dir)?;
    let mut state = prototype.clone();
    let (from_seq, checkpoint_id) = match &ckpt {
        Some(c) => {
            restore_checkpoint_state(&mut state, &c.state)?;
            (c.replay_from_seq, Some(c.id))
        }
        None => (
            wal::list_segments(dir)?.first().map_or(0, |(seq, _)| *seq),
            None,
        ),
    };
    let outcome = replay_segments(dir, from_seq, |record| match record {
        wal::WalRecord::Frames {
            wire_version,
            count,
            frames,
        } => {
            if *wire_version != crate::wire::VERSION {
                return Err("epoch-tagged FRAMES record in an unwindowed log".to_string());
            }
            let reports = decode_frames_record::<S::Report>(*wire_version, *count, frames)?;
            let mut staged = state.clone();
            for (i, (_, report)) in reports.iter().enumerate() {
                staged
                    .absorb(report)
                    .map_err(|e| format!("frame {i} rejected: {e}"))?;
            }
            state = staged;
            Ok(reports.len() as u64)
        }
        wal::WalRecord::Seal { .. } => Err("SEAL record in an unwindowed log".to_string()),
        wal::WalRecord::Checkpoint { .. } => Ok(0),
    })?;
    Ok((
        state,
        RecoveryReport {
            checkpoint_id,
            segments_scanned: outcome.segments_scanned,
            records_replayed: outcome.records_replayed,
            frames_replayed: outcome.frames_replayed,
            tail: outcome.tail,
            resume: outcome.resume,
            safe_to_resume: outcome.safe_to_resume,
        },
    ))
}

/// Recovers a *windowed* (epoch-ring) server from `dir`. The ring is
/// rebuilt with `window_len` retained epochs (which must match the
/// checkpointed configuration), FRAMES records re-absorb into the open
/// epoch under the same tag rules live ingestion enforces, and SEAL
/// records re-run the rotation — so the recovered window, including
/// which epochs have been retired by subtraction, is bit-identical to
/// the pre-crash ring.
///
/// # Errors
///
/// As [`recover_plain`].
pub fn recover_windowed<S>(
    dir: &Path,
    prototype: &S,
    window_len: usize,
) -> Result<(EpochRing<S>, RecoveryReport), ServiceError>
where
    S: SnapshotSource + SubtractableServer + PersistableServer,
    S::Report: WireReport,
{
    let ckpt = load_checkpoint(dir)?;
    let mut ring = EpochRing::new(prototype, window_len)?;
    let (from_seq, checkpoint_id) = match &ckpt {
        Some(c) => {
            restore_checkpoint_state(&mut ring, &c.state)?;
            (c.replay_from_seq, Some(c.id))
        }
        None => (
            wal::list_segments(dir)?.first().map_or(0, |(seq, _)| *seq),
            None,
        ),
    };
    let outcome = replay_segments(dir, from_seq, |record| match record {
        wal::WalRecord::Frames {
            wire_version,
            count,
            frames,
        } => {
            let reports = decode_frames_record::<S::Report>(*wire_version, *count, frames)?;
            let mut staged = ring.clone();
            for (i, (epoch, report)) in reports.iter().enumerate() {
                staged
                    .absorb_tagged(*epoch, report)
                    .map_err(|e| format!("frame {i} rejected: {e}"))?;
            }
            ring = staged;
            Ok(reports.len() as u64)
        }
        wal::WalRecord::Seal { epoch } => {
            let sealed = ring.seal_epoch().map_err(|e| e.to_string())?;
            if sealed != *epoch {
                return Err(format!(
                    "SEAL record names epoch {epoch}, ring sealed {sealed}"
                ));
            }
            Ok(0)
        }
        wal::WalRecord::Checkpoint { .. } => Ok(0),
    })?;
    Ok((
        ring,
        RecoveryReport {
            checkpoint_id,
            segments_scanned: outcome.segments_scanned,
            records_replayed: outcome.records_replayed,
            frames_replayed: outcome.frames_replayed,
            tail: outcome.tail,
            resume: outcome.resume,
            safe_to_resume: outcome.safe_to_resume,
        },
    ))
}
