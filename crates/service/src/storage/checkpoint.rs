//! Checkpoint files: full mechanism state, written atomically.
//!
//! A checkpoint is the serialized [`ldp_ranges::PersistableServer`] state
//! of the whole service (shards merged), plus the WAL position replay
//! must resume from:
//!
//! ```text
//! file    := magic(4B = "LDPK")  version(1B = 1)  crc32(4B LE, over meta+state)
//!            meta  state
//! meta    := id:varint  replay_from_seq:varint  state_len:varint
//! state   := the PersistableServer bytes (state_len of them)
//! ```
//!
//! Writes are crash-atomic: the bytes go to a `.tmp` file which is
//! fsynced, renamed over the final name, and the directory fsynced — a
//! crash at any point leaves either the old checkpoint set or the new
//! one, never a half-written file under the real name. Reads validate
//! magic, version, CRC, and the declared state length against the actual
//! file size before interpreting anything. [`latest_valid_checkpoint`]
//! falls back from a corrupt newer file to an older valid one, but
//! reports the case where checkpoint files exist and *none* decodes
//! ([`CheckpointScan::AllCorrupt`]) distinctly from a directory that was
//! never checkpointed — with pruning enabled the corrupt file is the only
//! copy of the pre-checkpoint history, so recovery must not mistake that
//! state for a fresh log.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::WireError;
use crate::storage::wal::crc32;
use crate::wire::{put_varint, Reader};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"LDPK";
/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// One parsed checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotone checkpoint id (0 is the first ever taken).
    pub id: u64,
    /// First WAL segment whose records are *not* covered by this state —
    /// recovery restores the state, then replays segments `>=` this.
    pub replay_from_seq: u64,
    /// The serialized server state.
    pub state: Vec<u8>,
}

/// The filename of checkpoint `id`.
#[must_use]
pub fn checkpoint_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("ckpt-{id:08}.ckpt"))
}

/// Parses a checkpoint filename back to its id.
#[must_use]
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Lists the checkpoint files in `dir`, sorted by id ascending.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut checkpoints = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            checkpoints.push((id, entry.path()));
        }
    }
    checkpoints.sort_unstable_by_key(|(id, _)| *id);
    Ok(checkpoints)
}

/// Serializes a checkpoint into its on-disk bytes.
#[must_use]
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ckpt.state.len() + 32);
    put_varint(&mut payload, ckpt.id);
    put_varint(&mut payload, ckpt.replay_from_seq);
    put_varint(&mut payload, ckpt.state.len() as u64);
    payload.extend_from_slice(&ckpt.state);
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses checkpoint bytes. Total: corrupt input is a typed
/// [`WireError`], never a panic, and the declared state length is
/// validated against the bytes actually present before any copy.
///
/// # Errors
///
/// Fails on bad magic/version, CRC mismatch, a state length the file
/// does not hold, or trailing bytes.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, WireError> {
    if bytes.len() < 9 {
        return Err(WireError::Truncated);
    }
    if bytes[0..4] != CHECKPOINT_MAGIC {
        return Err(WireError::BadMagic([bytes[0], bytes[1]]));
    }
    if bytes[4] != CHECKPOINT_VERSION {
        return Err(WireError::UnsupportedVersion(bytes[4]));
    }
    let expected_crc = u32::from_le_bytes(bytes[5..9].try_into().expect("4-byte slice"));
    let payload = &bytes[9..];
    if crc32(payload) != expected_crc {
        return Err(WireError::Malformed("checkpoint CRC mismatch"));
    }
    let mut r = Reader::new(payload);
    let id = r.varint()?;
    let replay_from_seq = r.varint()?;
    let state_len = r.varint()?;
    if state_len > r.remaining() as u64 {
        return Err(WireError::Truncated);
    }
    let state = r.bytes(state_len as usize)?.to_vec();
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes after checkpoint"));
    }
    Ok(Checkpoint {
        id,
        replay_from_seq,
        state,
    })
}

/// Writes a checkpoint crash-atomically (temp file + fsync + rename +
/// directory fsync), returning its final path.
///
/// # Errors
///
/// Propagates I/O failures; on error no file exists under the final
/// name that wasn't there before.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> std::io::Result<PathBuf> {
    let final_path = checkpoint_path(dir, ckpt.id);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    {
        let mut tmp = std::fs::File::create(&tmp_path)?;
        tmp.write_all(&encode_checkpoint(ckpt))?;
        tmp.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable.
    crate::storage::sync_dir(dir)?;
    Ok(final_path)
}

/// Outcome of scanning a directory for checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointScan {
    /// No checkpoint files exist — a fresh directory, or one that never
    /// checkpointed; recovery replays the WAL from its first segment.
    NoFiles,
    /// The newest checkpoint that parses and CRC-validates.
    Valid(Checkpoint),
    /// Checkpoint files exist but none decodes (or none can be read).
    /// Recovery must not treat this like a fresh directory: with pruning
    /// enabled the corrupt file was the only copy of the pre-checkpoint
    /// history, and replaying the surviving WAL tail onto an empty state
    /// would silently drop every checkpointed record.
    AllCorrupt,
}

/// Loads the newest checkpoint that parses and CRC-validates, falling
/// back past corrupt or unreadable newer files to older valid ones (a
/// stray `.tmp` never counts — the name filter ignores it). Distinguishes
/// a directory with no checkpoint files at all from one where files exist
/// but every one is corrupt; see [`CheckpointScan`].
///
/// # Errors
///
/// Propagates directory-read failures; a corrupt checkpoint *file* is
/// reported via [`CheckpointScan::AllCorrupt`], not an error.
pub fn latest_valid_checkpoint(dir: &Path) -> std::io::Result<CheckpointScan> {
    let files = list_checkpoints(dir)?;
    if files.is_empty() {
        return Ok(CheckpointScan::NoFiles);
    }
    for (_, path) in files.into_iter().rev() {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        if let Ok(ckpt) = decode_checkpoint(&bytes) {
            return Ok(CheckpointScan::Valid(ckpt));
        }
    }
    Ok(CheckpointScan::AllCorrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_roundtrip_and_validate() {
        let ckpt = Checkpoint {
            id: 7,
            replay_from_seq: 3,
            state: (0..200u32).map(|i| i as u8).collect(),
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(decode_checkpoint(&corrupt).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn newest_valid_checkpoint_wins_and_corruption_falls_back() {
        let dir = crate::storage::scratch_dir("ckpt-unit").unwrap();
        let old = Checkpoint {
            id: 1,
            replay_from_seq: 1,
            state: vec![1, 2, 3],
        };
        let new = Checkpoint {
            id: 2,
            replay_from_seq: 2,
            state: vec![4, 5, 6],
        };
        let newest_id = |dir: &Path| match latest_valid_checkpoint(dir).unwrap() {
            CheckpointScan::Valid(c) => c.id,
            other => panic!("expected a valid checkpoint, got {other:?}"),
        };
        assert_eq!(
            latest_valid_checkpoint(&dir).unwrap(),
            CheckpointScan::NoFiles,
            "empty directory must read as never-checkpointed"
        );
        write_checkpoint(&dir, &old).unwrap();
        write_checkpoint(&dir, &new).unwrap();
        assert_eq!(newest_id(&dir), 2);

        // Corrupt the newest: recovery falls back to the older one.
        let mut bytes = std::fs::read(checkpoint_path(&dir, 2)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(checkpoint_path(&dir, 2), &bytes).unwrap();
        assert_eq!(newest_id(&dir), 1);

        // Corrupt both: reported distinctly from a fresh directory, so
        // recovery can refuse instead of replaying onto an empty state.
        std::fs::write(checkpoint_path(&dir, 1), b"garbage").unwrap();
        assert_eq!(
            latest_valid_checkpoint(&dir).unwrap(),
            CheckpointScan::AllCorrupt
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
