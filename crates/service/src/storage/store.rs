//! [`DurableService`] — the durable front over [`LdpService`].
//!
//! Wraps a plain or windowed service with a write-ahead log and periodic
//! checkpoints. Every ingest batch is absorbed all-or-nothing and then
//! logged as **one** WAL record (group commit: the batch is the commit
//! unit, so a thousand-frame batch costs one record and at most one
//! fsync). The [`FsyncPolicy`] decides how often acknowledged bytes are
//! forced to disk; [`DurableService::checkpoint`] serializes the merged
//! state, rotates the log, and truncates segments the checkpoint covers.
//!
//! One mutex serializes absorb + append (and seal + append): WAL order
//! therefore *is* an absorption order, which is what makes replay exact —
//! in particular a frame absorbed into epoch `N` always precedes the
//! `SEAL N` record. Ingestion through the wrapped service directly would
//! bypass the log; a durable deployment ingests only through this type.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ldp_ranges::{PersistableServer, SubtractableServer};

use crate::error::ServiceError;
use crate::obs::instruments::{ReplInstruments, StorageInstruments};
use crate::obs::trace::{current_span, set_current_span};
use crate::obs::{MetricsRegistry, TraceEvent, TraceOutcome, TraceRing, TraceStage};
use crate::repl::hub::ReplHub;
use crate::service::LdpService;
use crate::snapshot::{RangeSnapshot, SnapshotSource};
use crate::storage::recovery::{self, RecoveryReport, ResumePoint};
use crate::storage::wal::{FsyncPolicy, WalRecord, WalWriter};
use crate::storage::{checkpoint, wal};
use crate::window::{EpochRing, WindowedSnapshot};
use crate::wire::{WireReport, VERSION_EPOCH};

/// Reports decoded ahead of the WAL lock from one replicated FRAMES
/// record — each paired with its optional epoch tag — or `None` when the
/// record is not FRAMES (SEAL/CHECKPOINT decode nothing).
type DecodedRun<R> = Option<Vec<(Option<u64>, R)>>;

/// Sentinel for "no checkpoint taken yet" in the atomic id cell.
const NO_CHECKPOINT: u64 = u64::MAX;

/// Tuning knobs of a [`DurableService`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Shards of the wrapped [`LdpService`].
    pub num_shards: usize,
    /// Segment size threshold; the log rotates after crossing it.
    pub segment_bytes: u64,
    /// When acknowledged WAL bytes are forced to disk.
    pub fsync: FsyncPolicy,
    /// Take a checkpoint automatically after this many appended records
    /// (0 = only explicit [`DurableService::checkpoint`] /
    /// [`DurableService::finalize`] calls).
    pub checkpoint_every_records: u64,
    /// Keep segments and checkpoints a newer checkpoint supersedes
    /// (default `false`: they are deleted, bounding disk use). The
    /// recovery differential tests enable this to compare checkpoint +
    /// tail replay against a full-log replay.
    pub retain_history: bool,
    /// Metrics registry the storage tier (and the wrapped service)
    /// instruments itself into. `None` (the default) creates a private
    /// registry, reachable via [`DurableService::registry`].
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Trace ring the storage tier records its WAL-append span events
    /// into. `None` (the default) disables storage-tier tracing;
    /// `bind_durable` adopts this ring for the session tier when
    /// [`crate::net::NetConfig::trace`] is unset, the same way it adopts
    /// the registry — so one ring holds a message's whole
    /// decode→execute→append timeline.
    pub trace: Option<Arc<TraceRing>>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Always,
            checkpoint_every_records: 0,
            retain_history: false,
            registry: None,
            trace: None,
        }
    }
}

/// Durability progress counters (served over the socket as STATUS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableStatus {
    /// Id of the newest completed checkpoint, if any.
    pub last_checkpoint: Option<u64>,
    /// Segment currently being appended to.
    pub wal_segment_seq: u64,
    /// Records appended since open (not counting recovered history).
    pub wal_records: u64,
    /// Frames appended since open (not counting recovered history).
    pub wal_frames: u64,
    /// Automatic checkpoints that failed (and will be retried on the
    /// next append); explicit [`DurableService::checkpoint`] failures
    /// surface to their caller instead.
    pub checkpoint_failures: u64,
    /// Whether the service has fail-stopped after a WAL append failure
    /// (see [`DurableService::ingest_batch`]); a wedged service rejects
    /// all further ingest, seals, and checkpoints until restarted.
    pub wedged: bool,
}

enum DurableBackend<S>
where
    S: SnapshotSource + SubtractableServer,
{
    Plain(Arc<LdpService<S>>),
    Windowed(Arc<LdpService<EpochRing<S>>>),
}

/// A durable LDP aggregation service: [`LdpService`] + WAL + checkpoints.
pub struct DurableService<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer,
    S::Report: WireReport,
{
    backend: DurableBackend<S>,
    /// Serializes absorb + append, seal + append, and checkpointing. The
    /// WAL is inherently serial; holding one lock across the state change
    /// and its log record is what makes log order an absorption order.
    wal: Mutex<WalInner>,
    dir: PathBuf,
    config: DurableConfig,
    /// Newest completed checkpoint id ([`NO_CHECKPOINT`] = none).
    last_checkpoint: AtomicU64,
    /// The registry every tier below this store reports into.
    registry: Arc<MetricsRegistry>,
    /// Storage-tier instruments. These *are* the accounting state: the
    /// fail-stop wedge flag lives in `obs.wedged` (a `SeqCst` gauge —
    /// set when a WAL append fails after its batch was already absorbed,
    /// leaving in-memory state ahead of the log; every mutating path
    /// refuses while it reads 1, queries keep answering) and the
    /// auto-checkpoint failure count in `obs.checkpoint_failures`, with
    /// no shadow copies — [`DurableService::status`] and the METRICS
    /// exposition cannot disagree.
    obs: StorageInstruments,
    /// Trace ring for WAL-append span events ([`DurableConfig::trace`]).
    trace: Option<Arc<TraceRing>>,
    /// The replication hub, once this store serves as a leader (created
    /// lazily by [`DurableService::ensure_repl_hub`]). Append paths
    /// publish each logged record through it; `None` costs nothing.
    repl: OnceLock<Arc<ReplHub>>,
}

impl<S> Drop for DurableService<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer,
    S::Report: WireReport,
{
    fn drop(&mut self) {
        // Release the single-writer lock. After a real crash the stale
        // lock file remains; the next open reclaims it once the owning
        // pid is gone.
        let _ = std::fs::remove_file(lock_path(&self.dir));
    }
}

/// The single-writer lock file guarding a WAL directory.
fn lock_path(dir: &Path) -> PathBuf {
    dir.join("LOCK")
}

/// Creates the storage directory and makes its own directory entry
/// durable: a first-boot WAL directory whose entry never hit disk would
/// vanish wholesale on power loss — every acked record with it, misread
/// by the next open as a fresh, empty log — the same failure the
/// per-segment directory sync prevents, one level up. Only the immediate
/// parent is synced; provisioning a deeper ancestor chain durably is the
/// operator's concern.
fn create_dir_durable(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    if let Some(parent) = dir.parent().filter(|p| !p.as_os_str().is_empty()) {
        crate::storage::sync_dir(parent)?;
    }
    Ok(())
}

/// Takes the directory's single-writer lock: creates `LOCK` holding this
/// process id. Two writers appending to one log interleave record bytes
/// into CRC garbage, so a second open must fail instead. A stale lock
/// (the recorded pid no longer runs — a crashed previous owner) is
/// reclaimed; a live owner is an error.
fn acquire_lock(dir: &Path) -> Result<(), ServiceError> {
    let path = lock_path(dir);
    for _ in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                use std::io::Write;
                f.write_all(std::process::id().to_string().as_bytes())?;
                f.sync_all()?;
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = match holder {
                    // Linux: the pid is gone from /proc ⇒ the owner died
                    // without cleanup.
                    #[cfg(target_os = "linux")]
                    Some(pid) => !std::path::Path::new(&format!("/proc/{pid}")).exists(),
                    // Elsewhere there is no /proc to probe liveness with,
                    // so the lock is conservatively treated as held and
                    // the operator removes it by hand — wrongly reclaiming
                    // a live owner's lock would put two writers on one log.
                    #[cfg(not(target_os = "linux"))]
                    Some(_) => false,
                    None => false,
                };
                if !stale {
                    return Err(ServiceError::Io(std::io::Error::other(format!(
                        "WAL directory already locked by pid {holder:?} ({}); \
                         a second writer would corrupt the log",
                        path.display()
                    ))));
                }
                std::fs::remove_file(&path)?;
                // Loop once more to race-safely retake via create_new.
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(ServiceError::Io(std::io::Error::other(
        "could not acquire WAL directory lock",
    )))
}

struct WalInner {
    writer: WalWriter,
    records_since_checkpoint: u64,
}

/// Decodes a REPORT-style batch (back-to-back raw wire frames) under a
/// negotiated wire version, validating the declared count. Shared by the
/// durable ingest path and the network front end so both reject hostile
/// batches identically.
///
/// # Errors
///
/// A malformed frame or a count/payload mismatch surfaces as
/// [`ServiceError::BadFrame`] with the offending index.
pub(crate) fn decode_batch<R: WireReport>(
    wire_version: u8,
    count: u64,
    frames: &[u8],
) -> Result<Vec<(Option<u64>, R)>, ServiceError> {
    // Capacity is bounded by what the payload can physically hold (the
    // smallest well-formed frame is 5 bytes), never by the declared count
    // alone — a lying count must not buy a huge allocation before the
    // first decode failure rejects the batch.
    let plausible = (frames.len() / 5).min(count as usize);
    let mut reports: Vec<(Option<u64>, R)> = Vec::with_capacity(plausible);
    crate::wire::for_each_frame(wire_version, count, frames, |epoch, report| {
        reports.push((epoch, report));
        Ok(())
    })?;
    Ok(reports)
}

impl<S> DurableService<S>
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    /// Opens (or creates) a durable *plain* service in `dir`: runs
    /// recovery, seeds the wrapped [`LdpService`] with the recovered
    /// state, truncates any torn WAL tail, and resumes the log.
    ///
    /// # Errors
    ///
    /// I/O failures, a zero shard count, or a checkpoint that does not
    /// match `prototype`'s configuration.
    pub fn open(
        dir: impl AsRef<Path>,
        prototype: &S,
        config: DurableConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let dir = dir.as_ref().to_path_buf();
        create_dir_durable(&dir)?;
        acquire_lock(&dir)?;
        let result = (|| {
            let (state, report) = recovery::recover_plain(&dir, prototype)?;
            let service = LdpService::with_recovered(state, prototype, config.num_shards)?;
            Self::finish_open(
                dir.clone(),
                DurableBackend::Plain(Arc::new(service)),
                config,
                report,
            )
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(lock_path(&dir));
        }
        result
    }

    /// Opens (or creates) a durable *windowed* service in `dir`; the ring
    /// retains `window_len` sealed epochs (which must match any existing
    /// checkpoint).
    ///
    /// # Errors
    ///
    /// As [`DurableService::open`], plus `window_len == 0`.
    pub fn open_windowed(
        dir: impl AsRef<Path>,
        prototype: &S,
        window_len: usize,
        config: DurableConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let dir = dir.as_ref().to_path_buf();
        create_dir_durable(&dir)?;
        acquire_lock(&dir)?;
        let result = (|| {
            let (ring, report) = recovery::recover_windowed(&dir, prototype, window_len)?;
            let empty = ring.aligned_empty();
            let service = LdpService::with_recovered(ring, &empty, config.num_shards)?;
            Self::finish_open(
                dir.clone(),
                DurableBackend::Windowed(Arc::new(service)),
                config,
                report,
            )
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(lock_path(&dir));
        }
        result
    }

    fn finish_open(
        dir: PathBuf,
        backend: DurableBackend<S>,
        config: DurableConfig,
        report: RecoveryReport,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        // Resuming after a torn tail truncates the damage — destructive,
        // so it is allowed only for a genuine crash artifact at the
        // physical end of the log. Mid-log corruption, a segment gap, or
        // a CRC-valid record the state machine rejected (a mismatched
        // prototype, most likely) must not cost acknowledged records:
        // refuse to open for writing and leave the directory untouched.
        if !report.safe_to_resume {
            return Err(ServiceError::Range(ldp_ranges::RangeError::CorruptState(
                "WAL damaged before its physical tail (or its records do not match this \
                 prototype); refusing to truncate acknowledged records — inspect the log \
                 or reopen with the original configuration",
            )));
        }
        // Segments beyond the resume point (after a torn record) can
        // never be replayed again — delete them so a future recovery
        // cannot resurrect them after new appends.
        let resume_seq = match report.resume {
            ResumePoint::Fresh { seq } | ResumePoint::Continue { seq, .. } => seq,
        };
        for (seq, path) in wal::list_segments(&dir)? {
            if seq > resume_seq {
                std::fs::remove_file(path)?;
            }
        }
        let writer = match report.resume {
            ResumePoint::Fresh { seq } => {
                // A "fresh" resume can still find a file under this seq —
                // a segment whose header never reached disk, or arrived
                // corrupt. Nothing in it was replayable; clear it.
                let stale = wal::segment_path(&dir, seq);
                if stale.exists() {
                    std::fs::remove_file(&stale)?;
                }
                WalWriter::create(&dir, seq, config.segment_bytes, config.fsync)?
            }
            ResumePoint::Continue { seq, valid_len } => {
                WalWriter::resume(&dir, seq, valid_len, config.segment_bytes, config.fsync)?
            }
        };
        let last = report.checkpoint_id.unwrap_or(NO_CHECKPOINT);
        // One registry for the whole stack: the storage instruments, the
        // wrapped service's shard/refresh instruments, and (windowed)
        // the ring's rotation instruments all register here, so a single
        // snapshot sees every tier.
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let obs = StorageInstruments::register(&registry);
        obs.replay_records.add(report.records_replayed);
        obs.replay_frames.add(report.frames_replayed);
        match &backend {
            DurableBackend::Plain(s) => {
                s.attach_metrics(&registry);
            }
            DurableBackend::Windowed(s) => {
                s.attach_metrics(&registry);
                s.attach_window_metrics(&registry);
            }
        }
        let trace = config.trace.clone();
        Ok((
            Self {
                backend,
                wal: Mutex::new(WalInner {
                    writer,
                    records_since_checkpoint: 0,
                }),
                dir,
                config,
                last_checkpoint: AtomicU64::new(last),
                registry,
                obs,
                trace,
                repl: OnceLock::new(),
            },
            report,
        ))
    }

    /// The metrics registry this store (and the service it wraps)
    /// reports into — share it with [`crate::net::NetConfig::registry`]
    /// (done automatically by `bind_durable` when that is `None`) so one
    /// METRICS probe covers every tier.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The trace ring this store records WAL-append span events into
    /// ([`DurableConfig::trace`]) — `bind_durable` adopts it for the
    /// session tier when [`crate::net::NetConfig::trace`] is unset, like
    /// the registry.
    #[must_use]
    pub fn trace(&self) -> Option<&Arc<TraceRing>> {
        self.trace.as_ref()
    }

    /// Records one WAL-append span event: the span the worker's
    /// thread-local carries (a live REPORT/SEAL span on the leader, the
    /// leader-assigned record position on a follower re-apply), session
    /// 0 — the storage tier serves every session.
    fn trace_append(&self, started: Instant) {
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent {
                span: current_span().unwrap_or(0),
                session: 0,
                stage: TraceStage::WalAppend,
                msg_type: 0,
                outcome: TraceOutcome::Ok,
                ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
        }
    }

    /// Whether the backend is windowed.
    #[must_use]
    pub fn is_windowed(&self) -> bool {
        matches!(self.backend, DurableBackend::Windowed(_))
    }

    /// The storage directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped plain service, for queries (`None` when windowed).
    /// Ingest through the service directly bypasses the log — durable
    /// writers use [`DurableService::ingest_batch`].
    #[must_use]
    pub fn plain(&self) -> Option<&Arc<LdpService<S>>> {
        match &self.backend {
            DurableBackend::Plain(s) => Some(s),
            DurableBackend::Windowed(_) => None,
        }
    }

    /// The wrapped windowed service, for queries (`None` when plain).
    #[must_use]
    pub fn windowed(&self) -> Option<&Arc<LdpService<EpochRing<S>>>> {
        match &self.backend {
            DurableBackend::Windowed(s) => Some(s),
            DurableBackend::Plain(_) => None,
        }
    }

    /// Decodes one batch of raw wire frames, absorbs it all-or-nothing,
    /// logs it as one WAL record, applies the fsync policy, and returns
    /// the number of frames absorbed — the durable analogue of one
    /// REPORT message. Nothing is logged for a rejected batch, so replay
    /// never faces a frame the live service refused.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadFrame`] (with index) for malformed or rejected
    /// frames — state and log unchanged. [`ServiceError::Io`] when the
    /// append fails: the batch was absorbed in memory but is **not
    /// durable**, so the service fail-stops (*wedges*) — every further
    /// ingest/seal/checkpoint is refused until a restart re-establishes
    /// `log == state` via recovery. Without the wedge a retry would
    /// double-count and a later checkpoint would silently persist the
    /// unlogged batch.
    pub fn ingest_batch(
        &self,
        wire_version: u8,
        count: u64,
        frames: &[u8],
    ) -> Result<u64, ServiceError> {
        if wire_version == VERSION_EPOCH && !self.is_windowed() {
            return Err(crate::error::WireError::UnsupportedVersion(wire_version).into());
        }
        let reports = decode_batch::<S::Report>(wire_version, count, frames)?;
        let n = reports.len() as u64;
        let mut wal = self.lock_wal()?;
        self.check_wedged()?;
        match &self.backend {
            DurableBackend::Plain(s) => {
                let plain: Vec<S::Report> = reports.into_iter().map(|(_, r)| r).collect();
                s.submit_batch(&plain)?;
            }
            DurableBackend::Windowed(s) => s.submit_epoch_batch(&reports)?,
        }
        // Zero-copy append: the raw frame bytes go straight from the
        // request buffer to the log.
        let started = Instant::now();
        if let Err(e) = wal.writer.append_frames(wire_version, n, frames) {
            self.obs.wedged.set(1);
            return Err(e.into());
        }
        self.obs.append_ns.record_elapsed(started);
        self.trace_append(started);
        self.obs.batch_frames.record(n);
        self.obs.wal_records.incr();
        self.obs.wal_frames.add(n);
        wal.records_since_checkpoint += 1;
        self.notify_repl(&mut wal);
        self.maybe_auto_checkpoint(&mut wal);
        Ok(n)
    }

    /// Seals the open epoch on a windowed backend and logs the SEAL
    /// record, returning the sealed epoch id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotWindowed`] on a plain backend; otherwise as
    /// [`DurableService::ingest_batch`] (an append failure wedges the
    /// service).
    pub fn seal_epoch(&self) -> Result<u64, ServiceError> {
        let DurableBackend::Windowed(s) = &self.backend else {
            return Err(ServiceError::NotWindowed);
        };
        let mut wal = self.lock_wal()?;
        self.check_wedged()?;
        let epoch = s.seal_epoch()?;
        let started = Instant::now();
        if let Err(e) = wal.writer.append(&WalRecord::Seal { epoch }) {
            self.obs.wedged.set(1);
            return Err(e.into());
        }
        self.obs.append_ns.record_elapsed(started);
        self.trace_append(started);
        self.obs.wal_records.incr();
        wal.records_since_checkpoint += 1;
        self.notify_repl(&mut wal);
        self.maybe_auto_checkpoint(&mut wal);
        Ok(epoch)
    }

    /// Takes a checkpoint now: serializes the merged state, appends a
    /// CHECKPOINT marker, rotates the log (so the checkpoint boundary is
    /// a segment boundary), writes the checkpoint file atomically, and —
    /// unless [`DurableConfig::retain_history`] — deletes the segments
    /// and older checkpoints it supersedes. Returns the checkpoint id.
    ///
    /// # Errors
    ///
    /// I/O and lock failures; on error the previous checkpoint and the
    /// full log remain intact.
    pub fn checkpoint(&self) -> Result<u64, ServiceError> {
        let mut wal = self.lock_wal()?;
        self.check_wedged()?;
        self.checkpoint_locked(&mut wal)
    }

    /// Graceful shutdown epilogue: checkpoint and force everything to
    /// disk, so the next open restores from the checkpoint without any
    /// replay. Returns the final checkpoint id.
    ///
    /// # Errors
    ///
    /// As [`DurableService::checkpoint`].
    pub fn finalize(&self) -> Result<u64, ServiceError> {
        let mut wal = self.lock_wal()?;
        self.check_wedged()?;
        let id = self.checkpoint_locked(&mut wal)?;
        wal.writer.sync()?;
        Ok(id)
    }

    /// Forces all appended-but-buffered WAL bytes to disk (a durability
    /// barrier under relaxed fsync policies).
    ///
    /// # Errors
    ///
    /// I/O and lock failures.
    pub fn sync(&self) -> Result<(), ServiceError> {
        let mut wal = self.lock_wal()?;
        if let Err(e) = wal.writer.sync() {
            // A failed flush can leave a partial record on disk; writing
            // anything after it would bury acked records behind garbage.
            self.obs.wedged.set(1);
            return Err(e.into());
        }
        Ok(())
    }

    /// Durability progress counters.
    ///
    /// # Errors
    ///
    /// Lock poisoning.
    pub fn status(&self) -> Result<DurableStatus, ServiceError> {
        let wal = self.lock_wal()?;
        let last = self.last_checkpoint.load(Ordering::Relaxed);
        Ok(DurableStatus {
            last_checkpoint: (last != NO_CHECKPOINT).then_some(last),
            wal_segment_seq: wal.writer.seq(),
            wal_records: wal.writer.appended_records(),
            wal_frames: wal.writer.appended_frames(),
            // Read from the registry instruments — the only copy.
            checkpoint_failures: self.obs.checkpoint_failures.get(),
            wedged: self.obs.wedged.get() != 0,
        })
    }

    /// Total reports currently reflected in the backend (retained window
    /// for windowed backends).
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        match &self.backend {
            DurableBackend::Plain(s) => s.num_reports(),
            DurableBackend::Windowed(s) => s.num_reports(),
        }
    }

    /// The most recently published snapshot of the backend.
    #[must_use]
    pub fn snapshot(&self) -> Arc<RangeSnapshot> {
        match &self.backend {
            DurableBackend::Plain(s) => s.snapshot(),
            DurableBackend::Windowed(s) => s.snapshot(),
        }
    }

    /// Merges current state and publishes a fresh snapshot.
    ///
    /// # Errors
    ///
    /// As [`LdpService::refresh_snapshot`].
    pub fn refresh_snapshot(&self) -> Result<Arc<RangeSnapshot>, ServiceError> {
        match &self.backend {
            DurableBackend::Plain(s) => s.refresh_snapshot(),
            DurableBackend::Windowed(s) => s.refresh_snapshot(),
        }
    }

    /// Freezes the trailing `epochs` sealed epochs (windowed backends).
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotWindowed`] on a plain backend; otherwise as
    /// [`LdpService::window_snapshot`].
    pub fn window_snapshot(&self, epochs: usize) -> Result<WindowedSnapshot, ServiceError> {
        match &self.backend {
            DurableBackend::Windowed(s) => s.window_snapshot(epochs),
            DurableBackend::Plain(_) => Err(ServiceError::NotWindowed),
        }
    }

    /// The attached replication hub, if this store has ever served as a
    /// replication leader.
    pub(crate) fn repl_hub(&self) -> Option<&Arc<ReplHub>> {
        self.repl.get()
    }

    /// Attaches (or returns) the replication hub: scans the retained log
    /// once — under the WAL lock, so the count cannot race an append —
    /// to seed the absolute record count and decide availability (the
    /// log must still start at segment 0 for positions to be exact from
    /// the origin).
    ///
    /// # Errors
    ///
    /// I/O and lock failures during the seeding scan.
    pub(crate) fn ensure_repl_hub(&self) -> Result<Arc<ReplHub>, ServiceError> {
        let mut wal = self.lock_wal()?;
        if let Some(hub) = self.repl.get() {
            return Ok(Arc::clone(hub));
        }
        let (records, origin) = self.scan_log_locked(&mut wal)?;
        let hub = Arc::new(ReplHub::new(
            records,
            origin,
            ReplInstruments::register(&self.registry),
        ));
        let _ = self.repl.set(Arc::clone(&hub));
        Ok(hub)
    }

    /// Counts every record in the retained log (FRAMES, SEAL, and
    /// CHECKPOINT markers alike) and reports whether the log still
    /// starts at segment 0. Used to seed the leader's replication hub
    /// and to position a follower at its local tail.
    ///
    /// # Errors
    ///
    /// I/O and lock failures; corruption inside a sealed segment.
    pub(crate) fn scan_log(&self) -> Result<(u64, bool), ServiceError> {
        let mut wal = self.lock_wal()?;
        self.scan_log_locked(&mut wal)
    }

    fn scan_log_locked(&self, wal: &mut WalInner) -> Result<(u64, bool), ServiceError> {
        if let Err(e) = wal.writer.flush_buffer() {
            // A failed flush can leave a partial record on disk; writing
            // past it would bury acked records behind garbage.
            self.obs.wedged.set(1);
            return Err(e.into());
        }
        let origin = wal::list_segments(&self.dir)?
            .first()
            .is_some_and(|(seq, _)| *seq == 0);
        let mut reader = wal::WalReader::open_start(&self.dir)?;
        while !reader.next_batch(usize::MAX)?.is_empty() {}
        Ok((reader.records_read(), origin))
    }

    /// Publishes one appended record to the replication hub: flushes the
    /// writer's buffer so tail-following cursors see the record even
    /// under lazy fsync policies, then bumps the hub's absolute count
    /// and wakes streaming sessions. Called with the WAL lock held, so
    /// hub count order is log order.
    fn notify_repl(&self, wal: &mut WalInner) {
        let Some(hub) = self.repl.get() else {
            return;
        };
        if hub.has_followers() && wal.writer.flush_buffer().is_err() {
            // Same hazard as a failed sync: a partial record may now be
            // on disk, and appending past it would corrupt the log.
            self.obs.wedged.set(1);
        }
        hub.record_appended();
    }

    /// Applies a *run* of replicated WAL records under **one** WAL lock —
    /// the follower's group-commit path. Adjacent FRAMES records absorb
    /// through a single staged-clone commit (one shard clone for the whole
    /// run instead of one per record), then each record is appended with
    /// its original framing so the follower's log still mirrors the
    /// leader's record for record; SEAL records seal and log at their
    /// original positions between the runs, and a CHECKPOINT record is
    /// appended as a marker only (the follower checkpoints on its own
    /// schedule, which for a live follower is never). Each element pairs
    /// the leader-assigned record position with the record so per-record
    /// `WalAppend` trace spans stay correct.
    ///
    /// All-or-nothing per run: if a run is rejected, none of its records
    /// reached state or log, and records *before* it in `records` are
    /// already applied and appended — the caller's position (its own log
    /// length) stays truthful either way.
    ///
    /// # Errors
    ///
    /// As [`DurableService::ingest_batch`] / [`DurableService::seal_epoch`];
    /// a SEAL naming a different epoch than the follower's ring sealed
    /// surfaces as corrupt state (the logs have diverged).
    pub(crate) fn apply_replicated_batch(
        &self,
        records: &[(u64, WalRecord)],
    ) -> Result<(), ServiceError> {
        // Decode every FRAMES payload before taking the lock.
        let mut decoded: Vec<DecodedRun<S::Report>> = Vec::with_capacity(records.len());
        for (_, record) in records {
            decoded.push(match record {
                WalRecord::Frames {
                    wire_version,
                    count,
                    frames,
                } => {
                    if *wire_version == VERSION_EPOCH && !self.is_windowed() {
                        return Err(
                            crate::error::WireError::UnsupportedVersion(*wire_version).into()
                        );
                    }
                    Some(decode_batch::<S::Report>(*wire_version, *count, frames)?)
                }
                _ => None,
            });
        }
        let mut wal = self.lock_wal()?;
        self.check_wedged()?;
        let mut i = 0;
        while i < records.len() {
            match &records[i].1 {
                WalRecord::Frames { .. } => {
                    let start = i;
                    let mut reports = Vec::new();
                    while i < records.len() && decoded[i].is_some() {
                        reports.append(decoded[i].as_mut().expect("run holds decoded frames"));
                        i += 1;
                    }
                    set_current_span(Some(records[start].0));
                    match &self.backend {
                        DurableBackend::Plain(s) => {
                            let plain: Vec<S::Report> =
                                reports.into_iter().map(|(_, r)| r).collect();
                            s.submit_batch(&plain)?;
                        }
                        DurableBackend::Windowed(s) => s.submit_epoch_batch(&reports)?,
                    }
                    for (position, record) in &records[start..i] {
                        let WalRecord::Frames {
                            wire_version,
                            count,
                            frames,
                        } = record
                        else {
                            unreachable!("run holds only FRAMES records");
                        };
                        set_current_span(Some(*position));
                        let started = Instant::now();
                        if let Err(e) = wal.writer.append_frames(*wire_version, *count, frames) {
                            self.obs.wedged.set(1);
                            return Err(e.into());
                        }
                        self.obs.append_ns.record_elapsed(started);
                        self.trace_append(started);
                        self.obs.batch_frames.record(*count);
                        self.obs.wal_records.incr();
                        self.obs.wal_frames.add(*count);
                        wal.records_since_checkpoint += 1;
                        self.notify_repl(&mut wal);
                    }
                }
                WalRecord::Seal { epoch } => {
                    let DurableBackend::Windowed(s) = &self.backend else {
                        return Err(ServiceError::NotWindowed);
                    };
                    set_current_span(Some(records[i].0));
                    let sealed = s.seal_epoch()?;
                    if sealed != *epoch {
                        return Err(ServiceError::Range(ldp_ranges::RangeError::CorruptState(
                            "replicated SEAL names a different epoch than the follower sealed \
                             — the logs have diverged",
                        )));
                    }
                    let started = Instant::now();
                    if let Err(e) = wal.writer.append(&WalRecord::Seal { epoch: *epoch }) {
                        self.obs.wedged.set(1);
                        return Err(e.into());
                    }
                    self.obs.append_ns.record_elapsed(started);
                    self.trace_append(started);
                    self.obs.wal_records.incr();
                    wal.records_since_checkpoint += 1;
                    self.notify_repl(&mut wal);
                    i += 1;
                }
                WalRecord::Checkpoint { id } => {
                    set_current_span(Some(records[i].0));
                    if let Err(e) = wal.writer.append(&WalRecord::Checkpoint { id: *id }) {
                        self.obs.wedged.set(1);
                        return Err(e.into());
                    }
                    self.obs.wal_records.incr();
                    self.notify_repl(&mut wal);
                    i += 1;
                }
            }
        }
        self.maybe_auto_checkpoint(&mut wal);
        Ok(())
    }

    fn lock_wal(&self) -> Result<std::sync::MutexGuard<'_, WalInner>, ServiceError> {
        self.wal
            .lock()
            .map_err(|_| ServiceError::LockPoisoned("wal"))
    }

    /// Refuses mutating operations after a WAL append failure left
    /// in-memory state ahead of the log.
    fn check_wedged(&self) -> Result<(), ServiceError> {
        if self.obs.wedged.get() != 0 {
            return Err(ServiceError::Io(std::io::Error::other(
                "durable service wedged by an earlier WAL append failure; \
                 restart to recover the logged prefix",
            )));
        }
        Ok(())
    }

    /// Runs an automatic checkpoint when the record threshold is
    /// reached. A failure here must *not* be attributed to the batch
    /// that triggered it — that batch is already absorbed and durably
    /// logged — so it is counted (visible in [`DurableService::status`])
    /// and retried on the next append; the previous checkpoint and the
    /// full log stay intact either way.
    fn maybe_auto_checkpoint(&self, wal: &mut WalInner) {
        if self.config.checkpoint_every_records > 0
            && wal.records_since_checkpoint >= self.config.checkpoint_every_records
            && self.checkpoint_locked(wal).is_err()
        {
            self.obs.checkpoint_failures.incr();
        }
    }

    fn checkpoint_locked(&self, wal: &mut WalInner) -> Result<u64, ServiceError> {
        let started = Instant::now();
        let last = self.last_checkpoint.load(Ordering::Relaxed);
        let id = if last == NO_CHECKPOINT { 0 } else { last + 1 };
        let state = match &self.backend {
            DurableBackend::Plain(s) => {
                let merged = s.merged_state()?;
                let mut bytes = Vec::new();
                merged.persist_state(&mut bytes);
                bytes
            }
            DurableBackend::Windowed(s) => {
                let merged = s.merged_state()?;
                let mut bytes = Vec::new();
                merged.persist_state(&mut bytes);
                bytes
            }
        };
        // Log failures here wedge like any other append failure — a
        // partial marker or unflushed rotation must not be written past.
        // A failure *after* rotation (checkpoint file, truncation) does
        // not wedge: the log itself is intact and the previous
        // checkpoint still covers it.
        if let Err(e) = wal.writer.append(&WalRecord::Checkpoint { id }) {
            self.obs.wedged.set(1);
            return Err(e.into());
        }
        self.obs.wal_records.incr();
        self.notify_repl(wal);
        let replay_from_seq = match wal.writer.rotate() {
            Ok(seq) => seq,
            Err(e) => {
                self.obs.wedged.set(1);
                return Err(e.into());
            }
        };
        checkpoint::write_checkpoint(
            &self.dir,
            &checkpoint::Checkpoint {
                id,
                replay_from_seq,
                state,
            },
        )?;
        if !self.config.retain_history {
            let mut pruned = false;
            for (seq, path) in wal::list_segments(&self.dir)? {
                if seq < replay_from_seq {
                    std::fs::remove_file(path)?;
                    pruned = true;
                }
            }
            for (old_id, path) in checkpoint::list_checkpoints(&self.dir)? {
                if old_id < id {
                    std::fs::remove_file(path)?;
                }
            }
            if pruned {
                // Records before the checkpoint no longer exist on disk:
                // positions can no longer be served from the origin, so
                // new replication subscriptions are refused (in-flight
                // cursors past the pruned point keep streaming).
                if let Some(hub) = self.repl.get() {
                    hub.mark_pruned();
                }
            }
        }
        self.last_checkpoint.store(id, Ordering::Relaxed);
        wal.records_since_checkpoint = 0;
        self.obs.checkpoint_ns.record_elapsed(started);
        self.obs.checkpoints.incr();
        Ok(id)
    }
}
