//! The segmented write-ahead log.
//!
//! A WAL is a directory of numbered segment files, each a short header
//! followed by back-to-back records:
//!
//! ```text
//! segment  := magic(4B = "LDPW")  version(1B = 1)  seq(8B LE)  record*
//! record   := len(4B LE, 1 ..= MAX_RECORD_BYTES)  crc32(4B LE)  body
//! body     := type(1B)  payload
//!
//! type 0x01 FRAMES      payload := wire_version(1B: 1|2)  count:varint
//!                                  wire_frame × count   (raw, back to back)
//! type 0x02 SEAL        payload := epoch:varint
//! type 0x03 CHECKPOINT  payload := checkpoint_id:varint
//! ```
//!
//! FRAMES payloads are the [`crate::wire`] frames *exactly as the client
//! sent them* — the wire format is the log format, so one codec (and one
//! set of adversarial guarantees) covers transport and storage. Decoding
//! is total and allocation-capped like `net/proto.rs`: the declared
//! length is validated against [`MAX_RECORD_BYTES`] before anything is
//! read, the CRC is checked before the body is interpreted, and a FRAMES
//! count is validated against the payload it arrived in. Any violation is
//! a typed error carrying the byte offset, which is how recovery
//! implements the torn-tail rule.

use std::fs::{File, OpenOptions};
use std::io::{IoSlice, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::WireError;
use crate::wire::{put_varint, Reader};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"LDPW";
/// Segment format version.
pub const SEGMENT_VERSION: u8 = 1;
/// Bytes of the segment header (magic + version + seq).
pub const SEGMENT_HEADER_BYTES: u64 = 13;
/// Hard cap on one record body, enforced before allocation. Sized so
/// that any batch a maximum-length session REPORT message can carry
/// still fits once the record header (type + wire version + count
/// varint) is added — a legal ack must never produce an oversized,
/// unreplayable record.
pub const MAX_RECORD_BYTES: usize = crate::net::proto::MAX_MESSAGE_BYTES + 16;

const REC_FRAMES: u8 = 0x01;
const REC_SEAL: u8 = 0x02;
const REC_CHECKPOINT: u8 = 0x03;

// --- crc32 -------------------------------------------------------------

/// The CRC-32/ISO-HDLC (IEEE 802.3) table, built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Feeds `bytes` into a running CRC-32 state (start from `!0`, finish
/// with a final complement) — lets the append path checksum a record
/// split across a header and a borrowed payload without concatenating.
fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// CRC-32 (IEEE) of `bytes` — the record integrity check.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

// --- records -----------------------------------------------------------

/// One write-ahead-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One acknowledged report batch: the raw wire frames exactly as
    /// received (v1 epoch-less or v2 epoch-tagged, per `wire_version`).
    Frames {
        /// Wire version the frames decode under (1 or 2).
        wire_version: u8,
        /// Number of back-to-back frames in `frames`.
        count: u64,
        /// The concatenated raw wire frames.
        frames: Vec<u8>,
    },
    /// The open epoch was sealed (windowed backends only).
    Seal {
        /// Id of the epoch that was sealed.
        epoch: u64,
    },
    /// A checkpoint with this id was taken covering every record up to
    /// here; replay ignores it (the checkpoint *file* carries the state),
    /// it exists so a full-log scan can see where checkpoints happened.
    Checkpoint {
        /// The checkpoint's id.
        id: u64,
    },
}

impl WalRecord {
    /// Encodes the record body (type byte + payload, no framing).
    #[must_use]
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Self::Frames {
                wire_version,
                count,
                frames,
            } => {
                out.reserve(frames.len());
                out.push(REC_FRAMES);
                out.push(*wire_version);
                put_varint(&mut out, *count);
                out.extend_from_slice(frames);
            }
            Self::Seal { epoch } => {
                out.push(REC_SEAL);
                put_varint(&mut out, *epoch);
            }
            Self::Checkpoint { id } => {
                out.push(REC_CHECKPOINT);
                put_varint(&mut out, *id);
            }
        }
        out
    }

    /// Decodes one record body. Total: malformed bytes yield a
    /// [`WireError`], never a panic, and nothing is allocated beyond the
    /// input's own length.
    ///
    /// # Errors
    ///
    /// Fails on an empty body, an unknown type byte, a bad wire version,
    /// a frame count the payload cannot hold, or trailing bytes.
    pub fn decode_body(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let record = match r.u8()? {
            REC_FRAMES => {
                let wire_version = r.u8()?;
                if wire_version != crate::wire::VERSION
                    && wire_version != crate::wire::VERSION_EPOCH
                {
                    return Err(WireError::UnsupportedVersion(wire_version));
                }
                let count = r.varint()?;
                let frames = r.bytes(r.remaining())?.to_vec();
                // The smallest well-formed wire frame is 5 bytes; a count
                // the payload cannot physically hold is rejected here so
                // replay-side allocations stay bounded by real bytes.
                if count > frames.len() as u64 {
                    return Err(WireError::Malformed("frame count exceeds payload"));
                }
                Self::Frames {
                    wire_version,
                    count,
                    frames,
                }
            }
            REC_SEAL => Self::Seal { epoch: r.varint()? },
            REC_CHECKPOINT => Self::Checkpoint { id: r.varint()? },
            t => return Err(WireError::UnknownKind(t)),
        };
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after record"));
        }
        Ok(record)
    }

    /// Encodes the full framed record (`len + crc + body`).
    #[must_use]
    pub fn encode_framed(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }
}

/// Decodes one framed record from the front of `buf`, returning it and
/// the bytes consumed. This is the single validation point the recovery
/// scan drives: any return of `Err` at offset `o` means the log is valid
/// exactly up to `o`.
///
/// # Errors
///
/// Fails on truncation, a declared length outside `1 ..= MAX_RECORD_BYTES`
/// (checked *before* the body is touched), a CRC mismatch, or a malformed
/// body.
pub fn decode_framed(buf: &[u8]) -> Result<(WalRecord, usize), WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice")) as usize;
    if len == 0 || len > MAX_RECORD_BYTES {
        return Err(WireError::SizeOverCap(len as u64));
    }
    let expected_crc = u32::from_le_bytes(buf[4..8].try_into().expect("4-byte slice"));
    let body = buf.get(8..8 + len).ok_or(WireError::Truncated)?;
    if crc32(body) != expected_crc {
        return Err(WireError::Malformed("record CRC mismatch"));
    }
    Ok((WalRecord::decode_body(body)?, 8 + len))
}

// --- segment files -----------------------------------------------------

/// The filename of segment `seq`.
#[must_use]
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Parses a segment filename back to its sequence number.
#[must_use]
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Lists the WAL segments in `dir`, sorted by sequence number.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// Validates a segment's 13-byte header against its expected sequence
/// number, returning the offset of the first record.
///
/// # Errors
///
/// Typed [`WireError`] on a short, misidentified, or misnumbered header.
pub fn check_segment_header(bytes: &[u8], expected_seq: u64) -> Result<u64, WireError> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(WireError::Truncated);
    }
    if bytes[0..4] != SEGMENT_MAGIC {
        return Err(WireError::BadMagic([bytes[0], bytes[1]]));
    }
    if bytes[4] != SEGMENT_VERSION {
        return Err(WireError::UnsupportedVersion(bytes[4]));
    }
    let seq = u64::from_le_bytes(bytes[5..13].try_into().expect("8-byte slice"));
    if seq != expected_seq {
        return Err(WireError::Malformed("segment header seq != filename seq"));
    }
    Ok(SEGMENT_HEADER_BYTES)
}

// --- durability policy -------------------------------------------------

/// When acknowledged WAL bytes are forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record: an ack implies the bytes
    /// survive power loss. The durable default.
    Always,
    /// `fdatasync` once at least this many bytes have accumulated since
    /// the last sync (group durability): bounded data-loss window, a
    /// fraction of the fsync cost.
    EveryBytes(u64),
    /// Never sync on append; only rotation, checkpoints, and shutdown
    /// sync. Survives a process crash (the OS flushes page cache), not a
    /// host crash.
    Never,
}

// --- the writer --------------------------------------------------------

/// Staged record bytes are handed to the kernel in one write once they
/// accumulate past this threshold. Under a lazy [`FsyncPolicy`] this is
/// the group-commit knob: adjacent appends coalesce in the staging buffer
/// and reach the OS as one large write instead of four small ones per
/// record.
const WRITE_COALESCE_BYTES: usize = 256 << 10;

/// A record tail at least this large skips the staging copy entirely:
/// the staged bytes (earlier records plus this record's framing) and the
/// borrowed tail go to the kernel together in one vectored write, so a
/// big REPORT batch is never memcpy'd into the log's buffer at all.
const DIRECT_TAIL_BYTES: usize = 8 << 10;

/// Capacity the staging buffer is allowed to retain across flushes — a
/// single oversized record must not pin megabytes for the log's lifetime.
const STAGING_RETAIN_BYTES: usize = WRITE_COALESCE_BYTES;

/// `write_all` over two buffers via `writev`, so a borrowed record tail
/// lands on disk after the staged bytes without being concatenated with
/// them. Loops on short writes exactly like `write_all`.
fn write_all_vectored(file: &mut File, mut head: &[u8], mut tail: &[u8]) -> std::io::Result<()> {
    while !head.is_empty() || !tail.is_empty() {
        let n = file.write_vectored(&[IoSlice::new(head), IoSlice::new(tail)])?;
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        if n >= head.len() {
            tail = &tail[n - head.len()..];
            head = &[];
        } else {
            head = &head[n..];
        }
    }
    Ok(())
}

/// Append side of the WAL: owns the current segment file, rotates at the
/// configured size, and applies the [`FsyncPolicy`].
///
/// Appends are *coalesced*: records are framed into an owned staging
/// buffer and flushed to the OS in one write (or one vectored write, for
/// large borrowed payloads) when a sync is due, the buffer crosses the
/// group-commit threshold (`WRITE_COALESCE_BYTES`, 256 KiB), or a
/// tail-follower needs visibility — never one syscall per field like a
/// naive `BufWriter` drain.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    seq: u64,
    file: File,
    /// Framed record bytes not yet handed to the OS.
    staging: Vec<u8>,
    segment_len: u64,
    unsynced: u64,
    segment_bytes: u64,
    fsync: FsyncPolicy,
    appended_records: u64,
    appended_frames: u64,
}

impl WalWriter {
    /// Creates a fresh segment `seq` in `dir` and positions the writer at
    /// its first record.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures (including an already-existing
    /// segment — the WAL never overwrites).
    pub fn create(
        dir: &Path,
        seq: u64,
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(segment_path(dir, seq))?;
        // fdatasync on the file makes the record bytes durable, but the
        // segment's *name* lives in the directory: without a directory
        // sync a power loss can drop the entry — and a whole segment of
        // acknowledged batches with it — which recovery would misread as
        // a shorter, clean log.
        crate::storage::sync_dir(dir)?;
        let mut staging = Vec::with_capacity(4 << 10);
        staging.extend_from_slice(&SEGMENT_MAGIC);
        staging.push(SEGMENT_VERSION);
        staging.extend_from_slice(&seq.to_le_bytes());
        Ok(Self {
            dir: dir.to_path_buf(),
            seq,
            file,
            staging,
            segment_len: SEGMENT_HEADER_BYTES,
            unsynced: SEGMENT_HEADER_BYTES,
            segment_bytes,
            fsync,
            appended_records: 0,
            appended_frames: 0,
        })
    }

    /// Reopens segment `seq` for appending after recovery, truncating it
    /// to `valid_len` first — anything past the last valid record (a torn
    /// tail from the crash) is discarded so new records are reachable.
    ///
    /// # Errors
    ///
    /// Propagates open/truncate failures.
    pub fn resume(
        dir: &Path,
        seq: u64,
        valid_len: u64,
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(segment_path(dir, seq))?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            seq,
            file,
            staging: Vec::with_capacity(4 << 10),
            segment_len: valid_len,
            unsynced: 0,
            segment_bytes,
            fsync,
            appended_records: 0,
            appended_frames: 0,
        })
    }

    /// Sequence number of the segment currently being appended to.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records appended through this writer (since open).
    #[must_use]
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Frames appended through this writer (since open).
    #[must_use]
    pub fn appended_frames(&self) -> u64 {
        self.appended_frames
    }

    /// Appends one record, applies the fsync policy, and rotates the
    /// segment if it crossed the size threshold.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the record must be treated as
    /// not durable, and nothing further may be appended (a partial
    /// record may be on disk — the durable service fail-stops).
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let body = record.encode_body();
        let frames = match record {
            WalRecord::Frames { count, .. } => *count,
            _ => 0,
        };
        self.append_parts(&body, &[], frames)
    }

    /// Appends one FRAMES record straight from the borrowed payload —
    /// the ingest hot path: the raw wire frames are checksummed and
    /// written in place (no intermediate record, body, or framing
    /// buffers), so a large batch costs one small header allocation.
    ///
    /// # Errors
    ///
    /// As [`WalWriter::append`].
    pub fn append_frames(
        &mut self,
        wire_version: u8,
        count: u64,
        frames: &[u8],
    ) -> std::io::Result<()> {
        let mut head = Vec::with_capacity(12);
        head.push(REC_FRAMES);
        head.push(wire_version);
        put_varint(&mut head, count);
        self.append_parts(&head, frames, count)
    }

    /// Shared append tail: frames the record as `head ++ tail` into the
    /// staging buffer, updates counters, applies the fsync policy, and
    /// rotates on overflow. A large borrowed `tail` bypasses staging and
    /// reaches the kernel in one vectored write with the staged bytes.
    fn append_parts(&mut self, head: &[u8], tail: &[u8], frames: u64) -> std::io::Result<()> {
        let len = head.len() + tail.len();
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(std::io::Error::other(
                "record body outside (0, MAX_RECORD_BYTES]",
            ));
        }
        let crc = !crc32_update(crc32_update(!0, head), tail);
        self.staging.extend_from_slice(&(len as u32).to_le_bytes());
        self.staging.extend_from_slice(&crc.to_le_bytes());
        self.staging.extend_from_slice(head);
        if tail.len() >= DIRECT_TAIL_BYTES {
            write_all_vectored(&mut self.file, &self.staging, tail)?;
            self.staging.clear();
        } else {
            self.staging.extend_from_slice(tail);
        }
        self.segment_len += len as u64 + 8;
        self.unsynced += len as u64 + 8;
        self.appended_records += 1;
        self.appended_frames += frames;
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryBytes(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        if self.staging.len() >= WRITE_COALESCE_BYTES {
            self.flush_staging()?;
        }
        if self.segment_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Hands every staged byte to the OS in one write. The staging buffer
    /// keeps a bounded capacity afterwards so one oversized record cannot
    /// pin its allocation forever.
    fn flush_staging(&mut self) -> std::io::Result<()> {
        if !self.staging.is_empty() {
            self.file.write_all(&self.staging)?;
            self.staging.clear();
        }
        if self.staging.capacity() > STAGING_RETAIN_BYTES {
            self.staging.shrink_to(STAGING_RETAIN_BYTES);
        }
        Ok(())
    }

    /// Flushes staged bytes and forces them to disk.
    ///
    /// # Errors
    ///
    /// Propagates flush/fsync failures.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush_staging()?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Flushes staged bytes to the OS without forcing them to disk —
    /// under a lazy [`FsyncPolicy`] this is what makes freshly appended
    /// records visible to a tail-following [`WalReader`] promptly (the
    /// replication stream) without paying an fsync per record.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn flush_buffer(&mut self) -> std::io::Result<()> {
        self.flush_staging()
    }

    /// Syncs and closes the current segment and opens the next one,
    /// returning the new sequence number. Checkpoints rotate explicitly
    /// so the checkpoint boundary is a segment boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn rotate(&mut self) -> std::io::Result<u64> {
        self.sync()?;
        let next = Self::create(&self.dir, self.seq + 1, self.segment_bytes, self.fsync)?;
        let appended_records = self.appended_records;
        let appended_frames = self.appended_frames;
        *self = next;
        self.appended_records = appended_records;
        self.appended_frames = appended_frames;
        Ok(self.seq)
    }
}

// --- the tail-follow reader --------------------------------------------

/// Read side of a *live* WAL: a cursor that scans records in order and
/// follows the tail while a [`WalWriter`] keeps appending — the feed a
/// replication leader streams to its followers from.
///
/// The cursor distinguishes three tail shapes:
///
/// * **Nothing more yet** — the current segment ends cleanly (or in a
///   partial record the writer is still producing) and no later segment
///   exists: [`WalReader::next_batch`] returns an empty batch and the
///   caller retries after the next append.
/// * **Rotation** — the current segment is exhausted on a record
///   boundary and segment `seq + 1` exists: the cursor advances into it
///   transparently.
/// * **Damage** — an undecodable record in a *sealed* segment (one with
///   a successor: the writer only rotates on record boundaries), or a
///   segment deleted under the cursor (checkpoint pruning outran it).
///   Both are hard errors; a torn tail in the *last* segment is never
///   one, because it is indistinguishable from a write in progress.
#[derive(Debug)]
pub struct WalReader {
    dir: PathBuf,
    seq: u64,
    file: Option<File>,
    /// Unconsumed bytes read from the current segment, starting at a
    /// record boundary (or at byte 0 before the header is validated).
    buf: Vec<u8>,
    /// Whether the current segment's header has been validated (and
    /// stripped from `buf`).
    header_done: bool,
    /// Records yielded so far — position `records_read()` is the next
    /// record the cursor will produce.
    records_read: u64,
}

impl WalReader {
    /// Opens a cursor at the first record of the earliest segment in
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be listed or holds no segments.
    pub fn open_start(dir: &Path) -> std::io::Result<Self> {
        let segments = list_segments(dir)?;
        let Some(&(seq, _)) = segments.first() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "WAL directory holds no segments",
            ));
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            seq,
            file: None,
            buf: Vec::new(),
            header_done: false,
            records_read: 0,
        })
    }

    /// Sequence number of the segment the cursor is positioned in.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records yielded so far — the absolute position (relative to the
    /// first retained segment) of the next record.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Pulls bytes from the current segment file into `buf`. Returns
    /// whether any new bytes arrived.
    fn fill(&mut self) -> std::io::Result<bool> {
        use std::io::Read;
        if self.file.is_none() {
            match File::open(segment_path(&self.dir, self.seq)) {
                Ok(f) => self.file = Some(f),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Not created yet (the writer is about to) — unless a
                    // later segment exists, in which case this one was
                    // pruned out from under the cursor.
                    let later = list_segments(&self.dir)?
                        .iter()
                        .any(|&(seq, _)| seq > self.seq);
                    if later {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::NotFound,
                            format!("WAL segment {} pruned under the cursor", self.seq),
                        ));
                    }
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        let file = self.file.as_mut().expect("file just opened");
        let before = self.buf.len();
        // The file handle's own cursor tracks how far we have read; a
        // concurrent writer only ever appends past it.
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match file.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(self.buf.len() > before)
    }

    /// Reads the next run of complete records, up to roughly `max_bytes`
    /// of record bodies per call (at least one record when one is
    /// available). An empty result means the log holds no complete
    /// record past the cursor *yet* — retry after the writer appends.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, a pruned segment, or corruption in a
    /// sealed (non-last) segment. A partial record at the very tail is
    /// not an error.
    pub fn next_batch(&mut self, max_bytes: usize) -> std::io::Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        let mut budget = max_bytes;
        loop {
            self.fill()?;
            if !self.header_done {
                if self.buf.len() < SEGMENT_HEADER_BYTES as usize {
                    return Ok(out); // header still being written
                }
                check_segment_header(&self.buf, self.seq)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                self.buf.drain(..SEGMENT_HEADER_BYTES as usize);
                self.header_done = true;
            }
            let mut pos = 0usize;
            let mut stalled = false;
            while pos < self.buf.len() {
                match decode_framed(&self.buf[pos..]) {
                    Ok((record, used)) => {
                        pos += used;
                        budget = budget.saturating_sub(used);
                        self.records_read += 1;
                        out.push(record);
                        if budget == 0 {
                            self.buf.drain(..pos);
                            return Ok(out);
                        }
                    }
                    Err(WireError::Truncated) => {
                        stalled = true;
                        break;
                    }
                    Err(e) => {
                        // Complete-looking but invalid bytes. In the last
                        // segment this can transiently happen while the
                        // writer's bytes land; only a *sealed* segment
                        // (successor exists) makes it real corruption.
                        if segment_path(&self.dir, self.seq + 1).exists() {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("WAL record corrupt in sealed segment {}: {e}", self.seq),
                            ));
                        }
                        stalled = true;
                        break;
                    }
                }
            }
            self.buf.drain(..pos);
            if stalled || self.buf.is_empty() {
                // At the readable end of this segment. If the writer has
                // rotated past it, leftover bytes are a torn rotation
                // (impossible from the writer, so: corruption); a clean
                // boundary advances the cursor.
                if segment_path(&self.dir, self.seq + 1).exists() {
                    // Re-read once: the tail bytes may have completed
                    // between our fill and the rotation.
                    if self.fill()? {
                        continue;
                    }
                    if !self.buf.is_empty() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("torn record at end of sealed segment {}", self.seq),
                        ));
                    }
                    self.seq += 1;
                    self.file = None;
                    self.header_done = false;
                    continue;
                }
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_roundtrip_framed() {
        let records = [
            WalRecord::Frames {
                wire_version: 1,
                count: 3,
                frames: vec![0xAB; 17],
            },
            WalRecord::Frames {
                wire_version: 2,
                count: 0,
                frames: Vec::new(),
            },
            WalRecord::Seal { epoch: 41 },
            WalRecord::Checkpoint { id: u64::MAX },
        ];
        for record in records {
            let framed = record.encode_framed();
            let (decoded, used) = decode_framed(&framed).expect("decode own encoding");
            assert_eq!(used, framed.len());
            assert_eq!(decoded, record);
            // Every truncation prefix is an error, never a panic.
            for cut in 0..framed.len() {
                assert!(decode_framed(&framed[..cut]).is_err(), "prefix {cut}");
            }
            // Any single flipped body byte fails the CRC.
            for i in 8..framed.len() {
                let mut corrupt = framed.clone();
                corrupt[i] ^= 0x40;
                assert!(decode_framed(&corrupt).is_err(), "flip at {i} accepted");
            }
        }
    }

    #[test]
    fn append_frames_fast_path_is_byte_identical_to_record_append() {
        let dir_a = crate::storage::scratch_dir("wal-fast-a").unwrap();
        let dir_b = crate::storage::scratch_dir("wal-fast-b").unwrap();
        let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let mut a = WalWriter::create(&dir_a, 0, 1 << 20, FsyncPolicy::Never).unwrap();
        a.append(&WalRecord::Frames {
            wire_version: 2,
            count: 40,
            frames: payload.clone(),
        })
        .unwrap();
        a.sync().unwrap();
        let mut b = WalWriter::create(&dir_b, 0, 1 << 20, FsyncPolicy::Never).unwrap();
        b.append_frames(2, 40, &payload).unwrap();
        b.sync().unwrap();
        assert_eq!(
            std::fs::read(segment_path(&dir_a, 0)).unwrap(),
            std::fs::read(segment_path(&dir_b, 0)).unwrap(),
            "fast path diverged from the record codec"
        );
        assert_eq!(b.appended_records(), 1);
        assert_eq!(b.appended_frames(), 40);
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(u32::MAX).to_le_bytes());
        hostile.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_framed(&hostile),
            Err(WireError::SizeOverCap(_))
        ));
        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        zero.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            decode_framed(&zero),
            Err(WireError::SizeOverCap(0))
        ));
    }

    #[test]
    fn frame_count_is_validated_against_payload() {
        let body_over = {
            let mut b = vec![REC_FRAMES, 1];
            put_varint(&mut b, 1_000_000);
            b.extend_from_slice(&[0u8; 4]);
            b
        };
        assert!(matches!(
            WalRecord::decode_body(&body_over),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            WalRecord::decode_body(&[REC_FRAMES, 9, 0]),
            Err(WireError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            WalRecord::decode_body(&[0x66]),
            Err(WireError::UnknownKind(0x66))
        ));
        assert!(matches!(
            WalRecord::decode_body(&[]),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn writer_rotates_and_segments_scan_back() {
        let dir = crate::storage::scratch_dir("wal-unit").unwrap();
        let mut writer = WalWriter::create(&dir, 0, 256, FsyncPolicy::Never).unwrap();
        for i in 0..40u64 {
            writer
                .append(&WalRecord::Frames {
                    wire_version: 1,
                    count: 1,
                    frames: vec![i as u8; 16],
                })
                .unwrap();
        }
        writer.sync().unwrap();
        assert!(writer.seq() > 0, "no rotation happened");
        assert_eq!(writer.appended_records(), 40);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len() as u64, writer.seq() + 1);
        let mut total = 0u64;
        for (seq, path) in &segments {
            let bytes = std::fs::read(path).unwrap();
            let mut pos = check_segment_header(&bytes, *seq).unwrap() as usize;
            while pos < bytes.len() {
                let (_, used) = decode_framed(&bytes[pos..]).unwrap();
                pos += used;
                total += 1;
            }
        }
        assert_eq!(total, 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_tail_follows_across_rotations() {
        let dir = crate::storage::scratch_dir("wal-reader").unwrap();
        let mut writer = WalWriter::create(&dir, 0, 256, FsyncPolicy::Never).unwrap();
        let mut reader = WalReader::open_start(&dir).unwrap();
        // Nothing yet (header only).
        writer.flush_buffer().unwrap();
        assert!(reader.next_batch(1 << 20).unwrap().is_empty());

        let mut written = Vec::new();
        for i in 0..25u64 {
            let rec = WalRecord::Frames {
                wire_version: 1,
                count: 1,
                frames: vec![i as u8; 16],
            };
            writer.append(&rec).unwrap();
            written.push(rec);
        }
        writer.append(&WalRecord::Seal { epoch: 0 }).unwrap();
        written.push(WalRecord::Seal { epoch: 0 });
        writer.flush_buffer().unwrap();
        assert!(writer.seq() > 0, "no rotation happened");

        // The reader walks every record across the rotations, in order.
        let mut seen = Vec::new();
        loop {
            let batch = reader.next_batch(128).unwrap();
            if batch.is_empty() {
                break;
            }
            seen.extend(batch);
        }
        assert_eq!(seen, written);
        assert_eq!(reader.records_read(), written.len() as u64);

        // A partial record at the tail is "nothing yet", not an error —
        // hand-append a framed record minus its last byte.
        let framed = WalRecord::Seal { epoch: 9 }.encode_framed();
        let tail_path = segment_path(&dir, writer.seq());
        use std::io::Write as _;
        let mut raw = OpenOptions::new().append(true).open(&tail_path).unwrap();
        raw.write_all(&framed[..framed.len() - 1]).unwrap();
        raw.flush().unwrap();
        assert!(reader.next_batch(1 << 20).unwrap().is_empty());
        // Completing the record makes it readable.
        raw.write_all(&framed[framed.len() - 1..]).unwrap();
        raw.flush().unwrap();
        drop(raw);
        assert_eq!(
            reader.next_batch(1 << 20).unwrap(),
            vec![WalRecord::Seal { epoch: 9 }]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_errors_on_pruned_segment_and_sealed_corruption() {
        let dir = crate::storage::scratch_dir("wal-reader-err").unwrap();
        let mut writer = WalWriter::create(&dir, 0, 200, FsyncPolicy::Never).unwrap();
        for i in 0..20u64 {
            writer
                .append(&WalRecord::Frames {
                    wire_version: 1,
                    count: 1,
                    frames: vec![i as u8; 16],
                })
                .unwrap();
        }
        writer.sync().unwrap();
        assert!(writer.seq() >= 2, "need several segments");

        // Corruption inside a sealed (non-last) segment is a hard error.
        let mut reader = WalReader::open_start(&dir).unwrap();
        let bytes = std::fs::read(segment_path(&dir, 0)).unwrap();
        let mut corrupt = bytes.clone();
        corrupt[SEGMENT_HEADER_BYTES as usize + 9] ^= 0x20;
        std::fs::write(segment_path(&dir, 0), &corrupt).unwrap();
        assert!(reader.next_batch(1 << 20).is_err());
        std::fs::write(segment_path(&dir, 0), &bytes).unwrap();

        // A segment deleted under the cursor (pruning outran it) errors
        // rather than silently skipping records.
        let mut reader = WalReader::open_start(&dir).unwrap();
        std::fs::remove_file(segment_path(&dir, 0)).unwrap();
        assert!(reader.next_batch(1 << 20).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
