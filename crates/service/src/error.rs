//! Error types of the aggregation service.

use std::fmt;

use ldp_ranges::RangeError;

/// Errors surfaced by the wire codec.
///
/// Decoding never panics on attacker-controlled bytes: every malformed
/// input maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the frame did.
    Truncated,
    /// The frame does not start with the `LQ` magic bytes.
    BadMagic([u8; 2]),
    /// The frame's format version is not one this build understands.
    UnsupportedVersion(u8),
    /// Unknown top-level report kind tag.
    UnknownKind(u8),
    /// Unknown frequency-oracle subtype tag.
    UnknownOracleTag(u8),
    /// A varint ran past 10 bytes or overflowed 64 bits.
    BadVarint,
    /// A declared size exceeds the codec's sanity cap
    /// ([`crate::wire::MAX_WIRE_DOMAIN`]).
    SizeOverCap(u64),
    /// Structurally valid frame whose fields violate report invariants
    /// (index out of domain, sign byte not 0/1, stray bits past the
    /// domain, hash value out of range...).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::BadMagic(m) => write!(f, "bad magic bytes {m:02x?}"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::UnknownKind(k) => write!(f, "unknown report kind {k}"),
            Self::UnknownOracleTag(t) => write!(f, "unknown oracle tag {t}"),
            Self::BadVarint => write!(f, "malformed varint"),
            Self::SizeOverCap(n) => write!(f, "declared size {n} exceeds codec cap"),
            Self::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors surfaced by the sharded aggregation service.
#[derive(Debug)]
pub enum ServiceError {
    /// A report failed to decode.
    Wire(WireError),
    /// A report or shard was rejected by the underlying mechanism.
    Range(RangeError),
    /// The service was configured with zero shards.
    NoShards,
    /// A worker thread panicked while ingesting.
    WorkerPanicked,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Range(e) => write!(f, "mechanism error: {e}"),
            Self::NoShards => write!(f, "aggregator needs at least one shard"),
            Self::WorkerPanicked => write!(f, "ingestion worker panicked"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<RangeError> for ServiceError {
    fn from(e: RangeError) -> Self {
        Self::Range(e)
    }
}
