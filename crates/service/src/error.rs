//! Error types of the aggregation service.

use std::fmt;

use ldp_ranges::RangeError;

/// Errors surfaced by the wire codec.
///
/// Decoding never panics on attacker-controlled bytes: every malformed
/// input maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the frame did.
    Truncated,
    /// The frame does not start with the `LQ` magic bytes.
    BadMagic([u8; 2]),
    /// The frame's format version is not one this build understands.
    UnsupportedVersion(u8),
    /// Unknown top-level report kind tag.
    UnknownKind(u8),
    /// Unknown frequency-oracle subtype tag.
    UnknownOracleTag(u8),
    /// A varint ran past 10 bytes or overflowed 64 bits.
    BadVarint,
    /// A declared size exceeds the codec's sanity cap
    /// ([`crate::wire::MAX_WIRE_DOMAIN`]).
    SizeOverCap(u64),
    /// Structurally valid frame whose fields violate report invariants
    /// (index out of domain, sign byte not 0/1, stray bits past the
    /// domain, hash value out of range...).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::BadMagic(m) => write!(f, "bad magic bytes {m:02x?}"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::UnknownKind(k) => write!(f, "unknown report kind {k}"),
            Self::UnknownOracleTag(t) => write!(f, "unknown oracle tag {t}"),
            Self::BadVarint => write!(f, "malformed varint"),
            Self::SizeOverCap(n) => write!(f, "declared size {n} exceeds codec cap"),
            Self::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors surfaced by the sharded aggregation service.
#[derive(Debug)]
pub enum ServiceError {
    /// A report failed to decode.
    Wire(WireError),
    /// A report or shard was rejected by the underlying mechanism.
    Range(RangeError),
    /// The service was configured with zero shards.
    NoShards,
    /// A worker thread panicked while ingesting.
    WorkerPanicked,
    /// One frame of an all-or-nothing batch was rejected. Carries the
    /// offending frame's position in the batch and the report type being
    /// ingested, so a producer can locate the bad frame in its own buffer
    /// instead of bisecting the batch.
    BadFrame {
        /// Zero-based position of the rejected frame within the batch.
        index: usize,
        /// The report type the batch was being decoded/absorbed as.
        report_type: &'static str,
        /// Why the frame was rejected.
        source: Box<ServiceError>,
    },
    /// An epoch-tagged report named an epoch other than the one currently
    /// open for ingestion (a stale straggler or a clock-skewed producer).
    EpochMismatch {
        /// Epoch id carried by the frame.
        frame: u64,
        /// Epoch currently open for ingestion.
        current: u64,
    },
    /// The window cannot hold or produce anything: a ring was configured
    /// with a zero window length or epoch width, or a windowed query
    /// asked for zero epochs / ran before any epoch was sealed.
    EmptyWindow,
    /// An epoch operation (seal, windowed query) reached a service whose
    /// backend is not windowed.
    NotWindowed,
    /// A filesystem operation of the durable storage layer failed.
    Io(std::io::Error),
    /// A lock was poisoned by a panicking holder. Surfaced as a typed
    /// error on fallible paths so one panicked writer degrades the
    /// service instead of cascading panics through every caller.
    LockPoisoned(&'static str),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Range(e) => write!(f, "mechanism error: {e}"),
            Self::NoShards => write!(f, "aggregator needs at least one shard"),
            Self::WorkerPanicked => write!(f, "ingestion worker panicked"),
            Self::BadFrame {
                index,
                report_type,
                source,
            } => write!(f, "frame {index} of {report_type} batch rejected: {source}"),
            Self::EpochMismatch { frame, current } => write!(
                f,
                "frame tagged for epoch {frame}, but epoch {current} is open for ingestion"
            ),
            Self::EmptyWindow => write!(
                f,
                "window is empty: zero window length/epoch width, or no epoch sealed yet"
            ),
            Self::NotWindowed => write!(f, "epoch operation against an unwindowed service"),
            Self::Io(e) => write!(f, "storage I/O error: {e}"),
            Self::LockPoisoned(what) => write!(f, "{what} lock poisoned by a panicked holder"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            Self::Range(e) => Some(e),
            Self::BadFrame { source, .. } => Some(source.as_ref()),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<RangeError> for ServiceError {
    fn from(e: RangeError) -> Self {
        Self::Range(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The unqualified report type name ("HhReport", not the full path) —
/// what a [`ServiceError::BadFrame`] log line wants.
pub(crate) fn report_type_name<R>() -> &'static str {
    let full = std::any::type_name::<R>();
    full.rsplit("::").next().unwrap_or(full)
}
