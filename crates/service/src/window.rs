//! Time-windowed streaming aggregation: the epoch ring.
//!
//! The one-shot snapshot path answers "what does the whole population
//! look like" over everything ever absorbed. A long-running service needs
//! the *continuous* variant: "what happened in the last K epochs" while
//! reports keep arriving. [`EpochRing`] provides it on top of two exact
//! algebraic facts about the mechanisms' integer sufficient statistics:
//!
//! * merging per-epoch accumulators is bit-identical to absorbing their
//!   reports into one server ([`MergeableServer`]), and
//! * a previously merged epoch can be removed again, bit-identically
//!   ([`SubtractableServer`]).
//!
//! So the ring keeps one accumulator per epoch plus a *running* merge of
//! every retained epoch. Sealing an epoch merges it into the running
//! state in `O(state)`; once the ring exceeds its window length, the
//! oldest epoch is retired by **subtraction** — also `O(state)` — instead
//! of re-merging the surviving `K − 1` epochs from scratch. Windowed
//! answers are therefore exactly what a from-scratch merge of the same
//! epochs would produce (the `window.rs` integration tests check this
//! bit-for-bit for all six mechanisms), at a per-rotation cost that does
//! not grow with the window length.
//!
//! ```text
//!        absorb                    seal_epoch            rotation
//!   ─────────────────► current ──────────────► ring ─────────────► retired
//!                        │                      │ merge              │
//!                        ▼                      ▼                    ▼
//!                      (open)              running += epoch   running −= epoch
//! ```
//!
//! Epoch boundaries are *logical*: the owner calls [`EpochRing::seal_epoch`]
//! on whatever cadence defines an epoch (wall-clock ticks, report counts
//! via [`EpochRing::with_epoch_width`], upstream watermarks). The ring
//! itself never consults a clock, which keeps every test deterministic.
//!
//! [`WindowedSnapshot`] freezes any trailing window of sealed epochs into
//! an immutable query handle ([`RangeSnapshot`] plus the epoch interval it
//! covers), so range/prefix/point/quantile queries keep answering while
//! ingestion continues — the continuous-query contract of industry stream
//! aggregation systems.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use ldp_ranges::persist::put_varint;
use ldp_ranges::{MergeableServer, PersistableServer, RangeError, StateReader, SubtractableServer};

use crate::error::ServiceError;
use crate::obs::instruments::WindowInstruments;
use crate::snapshot::{RangeSnapshot, SnapshotSource};

/// One sealed epoch: its id and the accumulator of every report absorbed
/// while it was open.
#[derive(Debug, Clone)]
pub struct SealedEpoch<S> {
    id: u64,
    server: S,
}

impl<S: MergeableServer> SealedEpoch<S> {
    /// The epoch's id (epoch 0 is the first epoch ever opened).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Reports absorbed during this epoch.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.server.num_reports()
    }

    /// The epoch's frozen accumulator.
    #[must_use]
    pub fn server(&self) -> &S {
        &self.server
    }
}

/// A ring of per-epoch accumulators answering sliding-window queries
/// while ingestion continues.
///
/// See the [module docs](self) for the design. The ring retains the last
/// `window_len` *sealed* epochs plus the currently open one; rotation
/// retires the oldest epoch by exact subtraction.
#[derive(Debug, Clone)]
pub struct EpochRing<S: SubtractableServer> {
    /// Empty-state template every new epoch starts from.
    prototype: S,
    /// Sealed epochs still inside the retention window, oldest first.
    ring: VecDeque<SealedEpoch<S>>,
    /// Running merge of every epoch in `ring`, maintained incrementally:
    /// sealing merges the new epoch in, rotation subtracts the retired
    /// epoch out.
    running: S,
    /// The open epoch, absorbing new reports.
    current: S,
    /// Id of the open epoch.
    current_id: u64,
    /// Maximum number of sealed epochs retained.
    window_len: usize,
    /// Auto-seal threshold in reports per epoch; 0 = manual sealing only.
    epoch_width: u64,
    /// Window-tier telemetry, shared across shard rings (cloned rings
    /// keep recording into the same instruments). Not part of the ring's
    /// *state*: excluded from persistence and from merge alignment.
    obs: Option<Arc<WindowInstruments>>,
}

impl<S: SubtractableServer> EpochRing<S> {
    /// Builds a ring retaining up to `window_len` sealed epochs, sealed
    /// manually via [`EpochRing::seal_epoch`].
    ///
    /// # Errors
    ///
    /// Rejects `window_len == 0` (nothing could ever be queried).
    pub fn new(prototype: &S, window_len: usize) -> Result<Self, ServiceError> {
        if window_len == 0 {
            return Err(ServiceError::EmptyWindow);
        }
        Ok(Self {
            prototype: prototype.clone(),
            ring: VecDeque::with_capacity(window_len + 1),
            running: prototype.clone(),
            current: prototype.clone(),
            current_id: 0,
            window_len,
            epoch_width: 0,
            obs: None,
        })
    }

    /// Attaches window-tier telemetry (rotation subtract latency and
    /// retired-epoch count are recorded by the ring itself; the seal
    /// sweep is timed by the owner). Shared instruments: clones of this
    /// ring keep recording into the same counters.
    pub fn set_instruments(&mut self, instruments: Arc<WindowInstruments>) {
        self.obs = Some(instruments);
    }

    /// Builds a ring that additionally self-seals: absorbing the
    /// `epoch_width`-th report of an epoch closes it. Meant for
    /// single-ring streaming use — sharded deployments should seal
    /// centrally (see [`crate::LdpService::seal_epoch`]) so shard rings
    /// stay epoch-aligned.
    ///
    /// # Errors
    ///
    /// Rejects `window_len == 0` and `epoch_width == 0`.
    pub fn with_epoch_width(
        prototype: &S,
        window_len: usize,
        epoch_width: u64,
    ) -> Result<Self, ServiceError> {
        if epoch_width == 0 {
            return Err(ServiceError::EmptyWindow);
        }
        let mut ring = Self::new(prototype, window_len)?;
        ring.epoch_width = epoch_width;
        Ok(ring)
    }

    /// Id of the epoch currently open for ingestion.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.current_id
    }

    /// Number of sealed epochs currently retained (≤ `window_len`).
    #[must_use]
    pub fn epochs_retained(&self) -> usize {
        self.ring.len()
    }

    /// Maximum number of sealed epochs retained.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Auto-seal threshold (0 = manual sealing).
    #[must_use]
    pub fn epoch_width(&self) -> u64 {
        self.epoch_width
    }

    /// The sealed epochs still retained, oldest first.
    pub fn sealed(&self) -> impl Iterator<Item = &SealedEpoch<S>> {
        self.ring.iter()
    }

    /// Reports in the open epoch so far.
    #[must_use]
    pub fn current_reports(&self) -> u64 {
        self.current.num_reports()
    }

    /// Absorbs one report into the open epoch, auto-sealing afterwards if
    /// an epoch width is configured and now reached.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the mechanism.
    pub fn absorb(&mut self, report: &S::Report) -> Result<(), ServiceError> {
        self.current.absorb(report)?;
        if self.epoch_width > 0 && self.current.num_reports() >= self.epoch_width {
            self.seal_epoch()?;
        }
        Ok(())
    }

    /// Absorbs one epoch-tagged report: the tag must name the open epoch.
    /// Untagged reports (`None`, from v1 wire frames) are accepted into
    /// the open epoch unconditionally.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::EpochMismatch`] for a stale or future tag;
    /// otherwise as [`EpochRing::absorb`].
    pub fn absorb_tagged(
        &mut self,
        epoch: Option<u64>,
        report: &S::Report,
    ) -> Result<(), ServiceError> {
        if let Some(tag) = epoch {
            if tag != self.current_id {
                return Err(ServiceError::EpochMismatch {
                    frame: tag,
                    current: self.current_id,
                });
            }
        }
        self.absorb(report)
    }

    /// Closes the open epoch (even an empty one — idle periods are real
    /// epochs), returning its id. The sealed epoch joins the ring and the
    /// running merge; if the ring now exceeds the window length, the
    /// oldest epoch is retired by exact subtraction.
    ///
    /// # Errors
    ///
    /// Merge/subtract failures are impossible for epochs this ring built
    /// itself (all clones of one prototype); an error indicates corrupted
    /// state.
    pub fn seal_epoch(&mut self) -> Result<u64, ServiceError> {
        let sealed = std::mem::replace(&mut self.current, self.prototype.clone());
        self.running.merge(&sealed)?;
        self.ring.push_back(SealedEpoch {
            id: self.current_id,
            server: sealed,
        });
        if self.ring.len() > self.window_len {
            let retired = self.ring.pop_front().expect("ring just grew");
            // The rotation that makes sliding windows O(state): remove
            // the retired epoch from the running merge instead of
            // re-merging the survivors.
            let started = self.obs.as_ref().map(|_| Instant::now());
            self.running.subtract(&retired.server)?;
            if let (Some(obs), Some(started)) = (&self.obs, started) {
                obs.rotate_ns.record_elapsed(started);
                obs.rotations.incr();
            }
        }
        let id = self.current_id;
        self.current_id += 1;
        Ok(id)
    }

    /// The merged accumulator of the trailing `epochs` sealed epochs
    /// (clamped to what the ring retains) — bit-identical to merging
    /// those epochs from scratch.
    ///
    /// Picks the cheaper of two exact routes: re-merge the `k` youngest
    /// epochs, or clone the running merge and subtract the `len − k`
    /// oldest. For the common full-window query the subtract route makes
    /// this a plain clone.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::EmptyWindow`] when `epochs == 0` or no
    /// epoch has been sealed yet.
    pub fn window_server(&self, epochs: usize) -> Result<S, ServiceError> {
        let k = epochs.min(self.ring.len());
        if k == 0 {
            return Err(ServiceError::EmptyWindow);
        }
        let drop = self.ring.len() - k;
        if drop <= k {
            let mut merged = self.running.clone();
            for epoch in self.ring.iter().take(drop) {
                merged.subtract(&epoch.server)?;
            }
            Ok(merged)
        } else {
            let mut survivors = self.ring.iter().skip(drop);
            let mut merged = survivors.next().expect("k >= 1").server.clone();
            for epoch in survivors {
                merged.merge(&epoch.server)?;
            }
            Ok(merged)
        }
    }

    /// The inclusive epoch-id interval a trailing window of `epochs`
    /// sealed epochs would cover, or `None` while nothing is sealed.
    #[must_use]
    pub fn window_bounds(&self, epochs: usize) -> Option<(u64, u64)> {
        let k = epochs.min(self.ring.len());
        if k == 0 {
            return None;
        }
        Some((
            self.ring[self.ring.len() - k].id,
            self.ring.back().expect("k >= 1").id,
        ))
    }

    /// An empty ring *epoch-aligned* with this one: same window
    /// configuration, same open epoch id, and one empty accumulator per
    /// retained sealed epoch (matching ids). This is what the remaining
    /// shards of a recovered windowed service start from, so shard rings
    /// merge and seal in lockstep with the shard holding the recovered
    /// state (see [`crate::LdpService::with_recovered`]).
    #[must_use]
    pub fn aligned_empty(&self) -> Self {
        Self {
            prototype: self.prototype.clone(),
            ring: self
                .ring
                .iter()
                .map(|e| SealedEpoch {
                    id: e.id,
                    server: self.prototype.clone(),
                })
                .collect(),
            running: self.prototype.clone(),
            current: self.prototype.clone(),
            current_id: self.current_id,
            window_len: self.window_len,
            epoch_width: self.epoch_width,
            obs: self.obs.clone(),
        }
    }

    /// Freezes the trailing `epochs` sealed epochs into an immutable
    /// query handle; ingestion into the open epoch continues undisturbed.
    ///
    /// # Errors
    ///
    /// As [`EpochRing::window_server`].
    pub fn window_snapshot(&self, epochs: usize) -> Result<WindowedSnapshot, ServiceError>
    where
        S: SnapshotSource,
    {
        let server = self.window_server(epochs)?;
        let (first, last) = self
            .window_bounds(epochs)
            .ok_or(ServiceError::EmptyWindow)?;
        Ok(WindowedSnapshot {
            snapshot: RangeSnapshot::freeze(&server, last),
            first_epoch: first,
            last_epoch: last,
        })
    }
}

// The ring is itself a mergeable accumulator, so the whole sharding and
// service stack (`ShardedAggregator<EpochRing<S>>`,
// `LdpService<EpochRing<S>>`) applies to windowed state unchanged.
// Merging requires epoch-aligned rings — same window configuration, same
// open epoch, same retained ids — which shard pools cloned from one
// prototype and sealed in lockstep satisfy by construction.
impl<S: SubtractableServer> MergeableServer for EpochRing<S> {
    type Report = S::Report;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        self.current.absorb(report)?;
        // Auto-sealing is deliberately *not* applied on this path: shards
        // absorb through this trait, and shard-local report counts would
        // seal shards at different moments, breaking epoch alignment.
        Ok(())
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        let aligned = other.window_len == self.window_len
            && other.epoch_width == self.epoch_width
            && other.current_id == self.current_id
            && other.ring.len() == self.ring.len()
            && other.ring.iter().zip(&self.ring).all(|(a, b)| a.id == b.id);
        if !aligned {
            return Err(RangeError::ReportShapeMismatch);
        }
        self.running.merge(&other.running)?;
        self.current.merge(&other.current)?;
        for (mine, theirs) in self.ring.iter_mut().zip(&other.ring) {
            mine.server.merge(&theirs.server)?;
        }
        Ok(())
    }

    fn num_reports(&self) -> u64 {
        // Reports inside the retention window: every sealed epoch still
        // ringed (the running merge) plus the open epoch.
        self.running.num_reports() + self.current.num_reports()
    }
}

/// Subtraction mirrors [`MergeableServer::merge`] slot by slot — running
/// merge, open epoch, and each retained sealed epoch — with the same
/// alignment requirements. This is the exact inverse the service's delta
/// snapshot refresh needs to swap a shard ring's previous contribution
/// out of a retained running merge
/// ([`crate::LdpService::refresh_snapshot`]). A misaligned subtrahend —
/// including a clone taken before this ring sealed another epoch — is
/// rejected up front, exactly like a misaligned merge.
impl<S: SubtractableServer> SubtractableServer for EpochRing<S> {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        let aligned = other.window_len == self.window_len
            && other.epoch_width == self.epoch_width
            && other.current_id == self.current_id
            && other.ring.len() == self.ring.len()
            && other.ring.iter().zip(&self.ring).all(|(a, b)| a.id == b.id);
        if !aligned {
            return Err(RangeError::ReportShapeMismatch);
        }
        self.running.subtract(&other.running)?;
        self.current.subtract(&other.current)?;
        for (mine, theirs) in self.ring.iter_mut().zip(&other.ring) {
            mine.server.subtract(&theirs.server)?;
        }
        Ok(())
    }
}

/// The ring's complete mutable state: the open epoch id, every retained
/// sealed epoch (id + accumulator), and the open accumulator. The window
/// configuration is written for validation only — the restoring side must
/// already hold a ring of the same shape — and the running merge is *not*
/// written: it is recomputed from the sealed epochs on restore, which
/// reproduces it bit-identically (integer sums) while guaranteeing the
/// restored ring is internally consistent.
impl<S> PersistableServer for EpochRing<S>
where
    S: SubtractableServer + PersistableServer,
{
    fn persist_state(&self, out: &mut Vec<u8>) {
        put_varint(out, self.window_len as u64);
        put_varint(out, self.epoch_width);
        put_varint(out, self.current_id);
        put_varint(out, self.ring.len() as u64);
        for epoch in &self.ring {
            put_varint(out, epoch.id);
            epoch.server.persist_state(out);
        }
        self.current.persist_state(out);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), RangeError> {
        if r.varint()? != self.window_len as u64 {
            return Err(RangeError::CorruptState("window length mismatch"));
        }
        if r.varint()? != self.epoch_width {
            return Err(RangeError::CorruptState("epoch width mismatch"));
        }
        let current_id = r.varint()?;
        let ring_len = r.varint()?;
        if ring_len > self.window_len as u64 || ring_len > current_id {
            return Err(RangeError::CorruptState("retained epochs exceed window"));
        }
        let mut ring = VecDeque::with_capacity(self.window_len + 1);
        let mut running = self.prototype.clone();
        for k in 0..ring_len {
            let id = r.varint()?;
            // Retained epochs are always the consecutive run ending just
            // below the open epoch — anything else never came from
            // `persist_state`.
            if id != current_id - (ring_len - k) {
                return Err(RangeError::CorruptState("sealed epoch ids not consecutive"));
            }
            let mut server = self.prototype.clone();
            server.restore_state(r)?;
            running.merge(&server)?;
            ring.push_back(SealedEpoch { id, server });
        }
        let mut current = self.prototype.clone();
        current.restore_state(r)?;
        self.ring = ring;
        self.running = running;
        self.current = current;
        self.current_id = current_id;
        Ok(())
    }
}

impl<S: SubtractableServer + SnapshotSource> SnapshotSource for EpochRing<S> {
    /// The live windowed estimate: every retained sealed epoch plus the
    /// open epoch. This is what `LdpService::refresh_snapshot` publishes
    /// for a windowed service — the trailing-window view, not the
    /// all-time population.
    fn frequency_estimate(&self) -> ldp_ranges::FrequencyEstimate {
        let mut merged = self.running.clone();
        merged
            .merge(&self.current)
            .expect("ring epochs share one prototype");
        merged.frequency_estimate()
    }
}

/// An immutable freeze of a trailing window of sealed epochs.
///
/// Wraps a [`RangeSnapshot`] (whose version is the newest epoch id
/// covered) plus the inclusive epoch interval it reflects, so readers can
/// reason about *which* slice of time they are querying.
#[derive(Debug, Clone)]
pub struct WindowedSnapshot {
    snapshot: RangeSnapshot,
    first_epoch: u64,
    last_epoch: u64,
}

impl WindowedSnapshot {
    /// Assembles a windowed handle from a frozen snapshot and the epoch
    /// interval it covers (the sharded service builds one from per-shard
    /// window servers).
    pub(crate) fn from_parts(snapshot: RangeSnapshot, first_epoch: u64, last_epoch: u64) -> Self {
        Self {
            snapshot,
            first_epoch,
            last_epoch,
        }
    }

    /// Oldest epoch id covered (inclusive).
    #[must_use]
    pub fn first_epoch(&self) -> u64 {
        self.first_epoch
    }

    /// Newest epoch id covered (inclusive).
    #[must_use]
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Number of epochs covered.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.last_epoch - self.first_epoch + 1
    }

    /// Reports reflected in this window.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.snapshot.num_reports()
    }

    /// Estimated fraction of window reports with value in `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds.
    #[must_use]
    pub fn range(&self, a: usize, b: usize) -> f64 {
        self.snapshot.range(a, b)
    }

    /// Estimated prefix fraction `R[0, b]` within the window.
    #[must_use]
    pub fn prefix(&self, b: usize) -> f64 {
        self.snapshot.prefix(b)
    }

    /// Estimated frequency of one item within the window.
    #[must_use]
    pub fn point(&self, z: usize) -> f64 {
        self.snapshot.point(z)
    }

    /// Estimated φ-quantile of the window distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ phi ≤ 1`.
    #[must_use]
    pub fn quantile(&self, phi: f64) -> usize {
        self.snapshot.quantile(phi)
    }

    /// The underlying frozen snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &RangeSnapshot {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::Epsilon;
    use ldp_ranges::{HhClient, HhConfig, HhServer, RangeEstimate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(domain: usize) -> (HhClient, HhServer) {
        let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).unwrap();
        (
            HhClient::new(config.clone()).unwrap(),
            HhServer::new(config).unwrap(),
        )
    }

    #[test]
    fn ring_rotates_and_matches_scratch_merge() {
        let (client, prototype) = setup(64);
        let mut ring = EpochRing::new(&prototype, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(901);
        let mut epochs: Vec<Vec<ldp_ranges::HhReport>> = Vec::new();
        for e in 0..6u64 {
            assert_eq!(ring.current_epoch(), e);
            let batch: Vec<_> = (0..200)
                .map(|i| client.report((e as usize * 7 + i) % 64, &mut rng).unwrap())
                .collect();
            for r in &batch {
                ring.absorb(r).unwrap();
            }
            epochs.push(batch);
            assert_eq!(ring.seal_epoch().unwrap(), e);
        }
        assert_eq!(ring.epochs_retained(), 3);
        assert_eq!(
            ring.sealed().map(SealedEpoch::id).collect::<Vec<_>>(),
            [3, 4, 5]
        );

        // Windowed state after rotation ≡ absorbing the covered epochs
        // into a fresh server, bit-for-bit.
        for k in 1..=3usize {
            let snap = ring.window_snapshot(k).unwrap();
            assert_eq!(snap.epochs(), k as u64);
            assert_eq!(snap.last_epoch(), 5);
            let mut scratch = prototype.clone();
            for batch in &epochs[6 - k..] {
                for r in batch {
                    MergeableServer::absorb(&mut scratch, r).unwrap();
                }
            }
            assert_eq!(snap.num_reports(), scratch.num_reports());
            let direct = scratch.estimate_consistent().to_frequency_estimate();
            for z in 0..64 {
                assert!(
                    snap.point(z).to_bits() == direct.point(z).to_bits(),
                    "k={k}: leaf {z} differs after rotation"
                );
            }
        }
    }

    #[test]
    fn auto_seal_by_epoch_width() {
        let (client, prototype) = setup(64);
        let mut ring = EpochRing::with_epoch_width(&prototype, 4, 50).unwrap();
        let mut rng = StdRng::seed_from_u64(902);
        for i in 0..175usize {
            ring.absorb(&client.report(i % 64, &mut rng).unwrap())
                .unwrap();
        }
        // 175 reports / width 50 → three sealed epochs, 25 in flight.
        assert_eq!(ring.current_epoch(), 3);
        assert_eq!(ring.epochs_retained(), 3);
        assert_eq!(ring.current_reports(), 25);
        let snap = ring.window_snapshot(usize::MAX).unwrap();
        assert_eq!(snap.num_reports(), 150);
    }

    #[test]
    fn epoch_tags_are_enforced() {
        let (client, prototype) = setup(64);
        let mut ring = EpochRing::new(&prototype, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(903);
        let r = client.report(5, &mut rng).unwrap();
        ring.absorb_tagged(Some(0), &r).unwrap();
        ring.absorb_tagged(None, &r).unwrap();
        assert!(matches!(
            ring.absorb_tagged(Some(1), &r),
            Err(ServiceError::EpochMismatch {
                frame: 1,
                current: 0
            })
        ));
        ring.seal_epoch().unwrap();
        assert!(matches!(
            ring.absorb_tagged(Some(0), &r),
            Err(ServiceError::EpochMismatch {
                frame: 0,
                current: 1
            })
        ));
        ring.absorb_tagged(Some(1), &r).unwrap();
    }

    #[test]
    fn empty_windows_are_rejected() {
        let (_, prototype) = setup(64);
        assert!(matches!(
            EpochRing::new(&prototype, 0),
            Err(ServiceError::EmptyWindow)
        ));
        assert!(matches!(
            EpochRing::with_epoch_width(&prototype, 2, 0),
            Err(ServiceError::EmptyWindow)
        ));
        let ring = EpochRing::new(&prototype, 2).unwrap();
        assert!(matches!(
            ring.window_snapshot(1),
            Err(ServiceError::EmptyWindow)
        ));
        let mut ring = ring;
        ring.seal_epoch().unwrap(); // an empty epoch is still an epoch
        assert!(matches!(
            ring.window_snapshot(0),
            Err(ServiceError::EmptyWindow)
        ));
        assert_eq!(ring.window_snapshot(1).unwrap().num_reports(), 0);
    }

    #[test]
    fn ring_merge_requires_alignment() {
        let (client, prototype) = setup(64);
        let mut rng = StdRng::seed_from_u64(904);
        let mut a = EpochRing::new(&prototype, 2).unwrap();
        let mut b = EpochRing::new(&prototype, 2).unwrap();
        let r = client.report(9, &mut rng).unwrap();
        a.absorb(&r).unwrap();
        b.absorb(&r).unwrap();
        a.seal_epoch().unwrap();
        b.seal_epoch().unwrap();
        // Aligned rings merge; total covers both shards' reports.
        let mut merged = a.clone();
        MergeableServer::merge(&mut merged, &b).unwrap();
        assert_eq!(merged.num_reports(), 2);
        // Misaligned rings (one sealed further) must refuse.
        b.seal_epoch().unwrap();
        assert!(MergeableServer::merge(&mut a, &b).is_err());
    }
}
