//! Parallel shard-local aggregation.
//!
//! A [`ShardedAggregator`] owns a pool of per-shard accumulators (any
//! [`MergeableServer`]) and feeds them from worker threads: each ingest
//! call splits its batch into one contiguous chunk per shard and absorbs
//! the chunks concurrently with `std::thread::scope`. Because every
//! mechanism's state is a plain sum ([`MergeableServer`]'s contract),
//! [`ShardedAggregator::merged`] returns *exactly* the state a
//! single-threaded server would hold after absorbing the same reports in
//! any order — sharding is a pure throughput change.
//!
//! The expensive step for encoded traffic is wire decoding plus absorb;
//! [`ShardedAggregator::ingest_encoded`] runs both on the workers, which
//! is where multi-core scaling shows up in the `service_throughput`
//! benchmark.

use ldp_ranges::MergeableServer;

use crate::error::ServiceError;
use crate::loadgen::EncodedStream;
use crate::obs::instruments::ShardInstruments;
use crate::obs::MetricsRegistry;
use crate::wire::{decode_frame, WireReport};

/// A pool of independently fed, mergeable shard accumulators.
#[derive(Debug, Clone)]
pub struct ShardedAggregator<S: MergeableServer> {
    shards: Vec<S>,
    obs: Option<ShardInstruments>,
}

impl<S: MergeableServer> ShardedAggregator<S> {
    /// Builds a pool of `num_shards` shards, each a clone of the (empty)
    /// `prototype`.
    ///
    /// # Errors
    ///
    /// Rejects `num_shards == 0`.
    pub fn new(prototype: &S, num_shards: usize) -> Result<Self, ServiceError> {
        if num_shards == 0 {
            return Err(ServiceError::NoShards);
        }
        Ok(Self {
            shards: vec![prototype.clone(); num_shards],
            obs: None,
        })
    }

    /// Attaches shard-tier telemetry from the shared `registry`: batch
    /// absorb wall time and accepted/rejected frame counts. Unattached,
    /// the ingest paths carry zero instrumentation cost.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.obs = Some(ShardInstruments::register(registry));
    }

    /// Number of shards in the pool.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shard states (used by tests and the snapshot
    /// layer).
    #[must_use]
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Total reports across all shards.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.shards.iter().map(MergeableServer::num_reports).sum()
    }

    /// Absorbs a batch of decoded reports, one contiguous chunk per shard,
    /// in parallel. **All-or-nothing**: on error, no report from the batch
    /// is kept (workers absorb into shard clones that are committed only
    /// when every chunk succeeds), so a failed batch can be retried or
    /// discarded without double-counting or losing reports.
    ///
    /// # Errors
    ///
    /// A rejected report surfaces as [`ServiceError::BadFrame`] carrying
    /// its batch index and report type (the lowest-indexed offender when
    /// several shards reject); a panicking worker surfaces as
    /// [`ServiceError::WorkerPanicked`]. The aggregator state is
    /// unchanged on error.
    pub fn ingest(&mut self, reports: &[S::Report]) -> Result<(), ServiceError> {
        self.run_sharded(reports.len(), |shard, lo, hi| {
            for (i, report) in reports[lo..hi].iter().enumerate() {
                shard.absorb(report).map_err(|e| (lo + i, e.into()))?;
            }
            Ok(())
        })
    }

    /// Decodes and absorbs a stream of encoded frames in parallel; both
    /// the codec work and the absorb work land on the shard workers.
    /// **All-or-nothing**, like [`ShardedAggregator::ingest`]: a malformed
    /// frame anywhere in the stream leaves the aggregator untouched.
    ///
    /// # Errors
    ///
    /// A malformed or rejected frame surfaces as
    /// [`ServiceError::BadFrame`] carrying its frame index and report
    /// type, so the producer can locate the offender in its own buffer
    /// without bisecting the batch; state is unchanged on error.
    pub fn ingest_encoded(&mut self, stream: &EncodedStream) -> Result<(), ServiceError>
    where
        S::Report: WireReport,
    {
        self.run_sharded(stream.len(), |shard, lo, hi| {
            for i in lo..hi {
                let frame = stream.frame(i);
                let (report, used) = decode_frame::<S::Report>(frame).map_err(|e| (i, e.into()))?;
                if used != frame.len() {
                    // A frame slot holding more than one frame's bytes
                    // (e.g. a sloppy push_raw) would silently drop the
                    // excess — surface it instead.
                    let e = crate::error::WireError::Malformed("trailing bytes after frame");
                    return Err((i, e.into()));
                }
                shard.absorb(&report).map_err(|e| (i, e.into()))?;
            }
            Ok(())
        })
    }

    /// Splits `0..n` into one contiguous slice per shard and runs `work`
    /// on each (shard, range) pair concurrently — against *clones* of the
    /// shards, swapped in only if every chunk succeeds. The clone is one
    /// accumulator state per shard (O(domain), independent of batch size),
    /// the price of batch atomicity.
    ///
    /// Workers report failures as `(item index, error)`; when several
    /// shards fail, the lowest-indexed offender wins, so the surfaced
    /// [`ServiceError::BadFrame`] is deterministic regardless of thread
    /// timing.
    fn run_sharded<F>(&mut self, n: usize, work: F) -> Result<(), ServiceError>
    where
        F: Fn(&mut S, usize, usize) -> Result<(), (usize, ServiceError)> + Sync,
    {
        // Handles are cheap Arc clones; unattached pools skip even the
        // Instant read.
        let obs = self.obs.clone();
        let started = obs.as_ref().map(|_| std::time::Instant::now());
        let result = self.run_sharded_inner(n, work);
        if let (Some(obs), Some(started)) = (obs, started) {
            obs.absorb_ns.record_elapsed(started);
            match &result {
                Ok(()) => obs.frames_accepted.add(n as u64),
                Err(_) => obs.frames_rejected.add(n as u64),
            }
        }
        result
    }

    fn run_sharded_inner<F>(&mut self, n: usize, work: F) -> Result<(), ServiceError>
    where
        F: Fn(&mut S, usize, usize) -> Result<(), (usize, ServiceError)> + Sync,
    {
        let num_shards = self.shards.len();
        let per_shard = n.div_ceil(num_shards.max(1));
        if num_shards == 1 || per_shard == 0 {
            let mut staged = self.shards[0].clone();
            work(&mut staged, 0, n).map_err(Self::bad_frame)?;
            self.shards[0] = staged;
            return Ok(());
        }
        let mut staged: Vec<S> = self.shards.clone();
        let work = &work;
        let mut panicked = false;
        let mut failures: Vec<(usize, ServiceError)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = staged
                .iter_mut()
                .enumerate()
                .map(|(k, shard)| {
                    let lo = (k * per_shard).min(n);
                    let hi = ((k + 1) * per_shard).min(n);
                    scope.spawn(move || work(shard, lo, hi))
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(failure)) => failures.push(failure),
                    Err(_) => panicked = true,
                }
            }
        });
        if panicked {
            return Err(ServiceError::WorkerPanicked);
        }
        if let Some(first) = failures.into_iter().min_by_key(|(i, _)| *i) {
            return Err(Self::bad_frame(first));
        }
        self.shards = staged;
        Ok(())
    }

    fn bad_frame((index, error): (usize, ServiceError)) -> ServiceError {
        ServiceError::BadFrame {
            index,
            report_type: crate::error::report_type_name::<S::Report>(),
            source: Box::new(error),
        }
    }

    /// Folds every shard into one server — exactly the state of a
    /// sequential server that absorbed all ingested reports.
    ///
    /// # Errors
    ///
    /// Cannot fail for shards built by [`ShardedAggregator::new`] (all
    /// clones of one prototype); an error indicates corrupted state.
    pub fn merged(&self) -> Result<S, ServiceError> {
        let mut merged = self.shards[0].clone();
        for shard in &self.shards[1..] {
            merged.merge(shard)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::Epsilon;
    use ldp_ranges::{HhClient, HhConfig, HhServer, MergeableServer, RangeEstimate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reports(n: usize, seed: u64, config: &HhConfig) -> Vec<ldp_ranges::HhReport> {
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| client.report(i % config.domain, &mut rng).unwrap())
            .collect()
    }

    #[test]
    fn parallel_ingest_equals_sequential_absorb() {
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let prototype = HhServer::new(config.clone()).unwrap();
        let batch = reports(1_000, 501, &config);

        let mut sequential = prototype.clone();
        for r in &batch {
            MergeableServer::absorb(&mut sequential, r).unwrap();
        }

        for shards in [1usize, 2, 4, 7] {
            let mut agg = ShardedAggregator::new(&prototype, shards).unwrap();
            agg.ingest(&batch).unwrap();
            assert_eq!(agg.num_shards(), shards);
            assert_eq!(agg.num_reports(), batch.len() as u64);
            let merged = agg.merged().unwrap();
            let a = sequential.estimate_consistent().to_frequency_estimate();
            let b = merged.estimate_consistent().to_frequency_estimate();
            for z in 0..64 {
                assert!(
                    a.point(z).to_bits() == b.point(z).to_bits(),
                    "{shards} shards: leaf {z} differs"
                );
            }
        }
    }

    #[test]
    fn failed_batches_leave_state_untouched() {
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let prototype = HhServer::new(config.clone()).unwrap();
        let mut agg = ShardedAggregator::new(&prototype, 4).unwrap();
        agg.ingest(&reports(100, 503, &config)).unwrap();
        let baseline = agg.merged().unwrap().estimate().to_frequency_estimate();

        // Typed path: a report with an impossible depth fails absorb
        // mid-batch; nothing from the batch may stick, and the error
        // names the offending index and report type.
        let mut bad_batch = reports(50, 504, &config);
        let alien = bad_batch[0].inner().clone();
        bad_batch[25] = ldp_ranges::HhReport::from_parts(99, alien);
        match agg.ingest(&bad_batch).unwrap_err() {
            ServiceError::BadFrame {
                index,
                report_type,
                source,
            } => {
                assert_eq!(index, 25, "wrong offender index");
                assert_eq!(report_type, "HhReport");
                assert!(matches!(*source, ServiceError::Range(_)));
            }
            other => panic!("expected BadFrame, got {other}"),
        }
        assert_eq!(agg.num_reports(), 100, "failed batch leaked reports");

        // Encoded path: one malformed frame poisons the whole stream,
        // and its frame index is surfaced.
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(505);
        let mut stream = crate::loadgen::EncodedStream::new();
        for i in 0..50 {
            stream.push(&client.report(i % 64, &mut rng).unwrap());
        }
        stream.push_raw(&[0xDE, 0xAD, 0xBE, 0xEF]);
        match agg.ingest_encoded(&stream).unwrap_err() {
            ServiceError::BadFrame {
                index,
                report_type,
                source,
            } => {
                assert_eq!(index, 50, "wrong offending frame index");
                assert_eq!(report_type, "HhReport");
                assert!(matches!(*source, ServiceError::Wire(_)));
            }
            other => panic!("expected BadFrame, got {other}"),
        }
        assert_eq!(
            agg.num_reports(),
            100,
            "failed encoded batch leaked reports"
        );

        // A frame slot carrying two concatenated frames (sloppy push_raw)
        // must error, not silently drop the second report.
        use crate::wire::WireReport;
        let mut doubled = crate::loadgen::EncodedStream::new();
        let mut two = client.report(1, &mut rng).unwrap().to_frame();
        two.extend_from_slice(&client.report(2, &mut rng).unwrap().to_frame());
        doubled.push_raw(&two);
        assert!(agg.ingest_encoded(&doubled).is_err());
        assert_eq!(agg.num_reports(), 100, "doubled frame leaked reports");

        let after = agg.merged().unwrap().estimate().to_frequency_estimate();
        for z in 0..64 {
            assert!(
                baseline.point(z).to_bits() == after.point(z).to_bits(),
                "estimate changed at leaf {z} after rejected batches"
            );
        }
    }

    #[test]
    fn lowest_failing_index_wins_across_shards() {
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let prototype = HhServer::new(config.clone()).unwrap();
        let mut agg = ShardedAggregator::new(&prototype, 4).unwrap();
        // 100 items over 4 shards → chunks of 25. Poison shard 0 (index
        // 10) and shard 2 (index 60): the surfaced error must name index
        // 10 no matter which worker finishes first.
        let mut batch = reports(100, 506, &config);
        let alien = batch[0].inner().clone();
        batch[10] = ldp_ranges::HhReport::from_parts(99, alien.clone());
        batch[60] = ldp_ranges::HhReport::from_parts(99, alien);
        match agg.ingest(&batch).unwrap_err() {
            ServiceError::BadFrame { index, .. } => assert_eq!(index, 10),
            other => panic!("expected BadFrame, got {other}"),
        }
        assert_eq!(agg.num_reports(), 0);
    }

    #[test]
    fn zero_shards_is_rejected() {
        let config = HhConfig::new(16, 4, Epsilon::new(1.0)).unwrap();
        let prototype = HhServer::new(config).unwrap();
        assert!(matches!(
            ShardedAggregator::new(&prototype, 0),
            Err(ServiceError::NoShards)
        ));
    }

    #[test]
    fn small_batches_and_empty_batches_work() {
        let config = HhConfig::new(16, 4, Epsilon::new(1.0)).unwrap();
        let prototype = HhServer::new(config.clone()).unwrap();
        let mut agg = ShardedAggregator::new(&prototype, 8).unwrap();
        agg.ingest(&[]).unwrap();
        assert_eq!(agg.num_reports(), 0);
        // Fewer reports than shards.
        agg.ingest(&reports(3, 502, &config)).unwrap();
        assert_eq!(agg.num_reports(), 3);
        agg.merged().unwrap();
    }
}
