//! WAL-shipping replication: hot standby and read replicas over the
//! session protocol.
//!
//! PR 4 made the wire format the log format — a WAL FRAMES record
//! carries raw wire frames exactly as clients sent them — and this
//! module exploits that: a **leader** (a durable server) streams its
//! acked WAL records (FRAMES, SEAL, and CHECKPOINT markers) to any
//! connected **follower**, which re-applies them through the same
//! decode/absorb/seal paths live ingestion uses and appends them to its
//! *own* log. Because absorption is exact integer arithmetic, the
//! follower's state is bit-identical to the leader's at the same
//! replication position — the property the replication differential
//! test pins down mechanism by mechanism.
//!
//! Positions are absolute record indices from the log's origin
//! (segment 0), counting every record — FRAMES, SEAL, and CHECKPOINT
//! markers alike. A leader serves replication only while its retained
//! log still starts at segment 0 (checkpoint pruning makes earlier
//! positions unservable, so new subscriptions are refused with
//! `REPL_UNAVAILABLE` after a prune); a follower never checkpoints, so
//! its own log length *is* its position, and a restart resumes exactly
//! from its local tail — the recovery torn-tail rule discards a record
//! half-received at disconnect, and the stream re-sends from there.
//!
//! The leader pushes records through the reactor's bounded per-session
//! output queue, so a slow follower costs at most the cap, never the
//! log; follower acknowledgements feed the `repl.followers` and
//! `repl.follower_lag_records` gauges. [`FollowerService::promote`]
//! seals replication and hands back the inner durable service — a
//! normal durable leader over the replicated log.

pub(crate) mod cursor;
mod feed;
mod follower;
pub(crate) mod hub;

pub use feed::ReplFeed;
pub use follower::FollowerService;
