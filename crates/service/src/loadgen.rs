//! Load generation: replaying `ldp-workloads` populations as encoded
//! report streams.
//!
//! The evaluation crates simulate aggregates directly (the paper's §5
//! shortcut); the service instead needs realistic *per-user traffic*. The
//! generator draws each user's value from a [`Dataset`]'s histogram,
//! encodes it through a real mechanism client, and serializes the report
//! into an [`EncodedStream`] — a single contiguous frame buffer plus a
//! frame-offset index, so shard workers can slice the stream without
//! re-scanning it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ldp_workloads::Dataset;

use crate::wire::WireReport;

/// A batch of wire-encoded reports: back-to-back frames plus an offset
/// index (`offsets[i]..offsets[i+1]` is frame `i`).
#[derive(Debug, Clone)]
pub struct EncodedStream {
    buf: Vec<u8>,
    /// Invariant: never empty — always starts with a leading 0.
    offsets: Vec<usize>,
}

impl Default for EncodedStream {
    fn default() -> Self {
        Self::new()
    }
}

impl EncodedStream {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Appends one report as a frame.
    pub fn push<T: WireReport>(&mut self, report: &T) {
        report.encode_frame(&mut self.buf);
        self.offsets.push(self.buf.len());
    }

    /// Appends one report as an epoch-tagged (v2) frame.
    pub fn push_epoch<T: WireReport>(&mut self, report: &T, epoch: u64) {
        crate::wire::encode_epoch_frame(report, epoch, &mut self.buf);
        self.offsets.push(self.buf.len());
    }

    /// Appends one already-encoded frame verbatim (relaying received
    /// bytes without re-encoding). No validation happens here; a
    /// malformed frame surfaces as a decode error at ingest time.
    pub fn push_raw(&mut self, frame: &[u8]) {
        self.buf.extend_from_slice(frame);
        self.offsets.push(self.buf.len());
    }

    /// Number of frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the stream holds no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The raw bytes of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn frame(&self, i: usize) -> &[u8] {
        &self.buf[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The whole concatenated frame buffer.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The contiguous bytes of frames `lo..hi` (half-open) — what the
    /// socket path ships as one batched REPORT message without copying
    /// frame by frame.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or `hi` exceeds the frame count.
    #[must_use]
    pub fn frame_span(&self, lo: usize, hi: usize) -> &[u8] {
        &self.buf[self.offsets[lo]..self.offsets[hi]]
    }

    /// Mean encoded bytes per report (the wire format's compactness
    /// metric; e.g. `HaarHRR` frames stay ~10 bytes where flat OUE frames
    /// grow with `D/8`).
    #[must_use]
    pub fn mean_frame_bytes(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.buf.len() as f64 / self.len() as f64
        }
    }
}

/// Draws user values i.i.d. from a dataset's empirical distribution —
/// a thin handle over [`Dataset::sample_value`], which reuses the
/// dataset's own precomputed prefix sums.
#[derive(Debug, Clone)]
pub struct ValueSampler {
    dataset: Dataset,
}

impl ValueSampler {
    /// Builds the sampler from a population histogram.
    ///
    /// # Panics
    ///
    /// Panics on an empty population (nothing to replay).
    #[must_use]
    pub fn new(dataset: &Dataset) -> Self {
        assert!(
            dataset.population() > 0,
            "cannot replay an empty population"
        );
        Self {
            dataset: dataset.clone(),
        }
    }

    /// Draws one value, distributed as the dataset's histogram.
    pub fn draw<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        self.dataset.sample_value(rng)
    }
}

/// Generates `users` wire-encoded reports whose values replay `dataset`'s
/// distribution, using `encode` to run the mechanism's client side.
///
/// The stream is deterministic in `seed`, so benchmarks and tests can
/// replay identical traffic at different shard counts.
pub fn generate_stream<T, F>(
    dataset: &Dataset,
    users: u64,
    seed: u64,
    mut encode: F,
) -> EncodedStream
where
    T: WireReport,
    F: FnMut(usize, &mut StdRng) -> T,
{
    let sampler = ValueSampler::new(dataset);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = EncodedStream::new();
    for _ in 0..users {
        let value = sampler.draw(&mut rng);
        let report = encode(value, &mut rng);
        stream.push(&report);
    }
    stream
}

/// Timestamped replay with a drifting population: one encoded stream per
/// epoch, all frames epoch-tagged (wire v2).
///
/// Epoch `e` draws each user from a mixture of the two endpoint
/// populations: with probability `e / (epochs − 1)` from `to`, otherwise
/// from `from`. The first epoch replays `from` exactly (a single-epoch
/// plan is all `from`), the last replays `to`, and the mixture shifts
/// linearly in between — so sliding-window estimates over the streams
/// *visibly track the drift* while all-time aggregates blur it.
/// Deterministic in `seed`, like [`generate_stream`].
///
/// # Panics
///
/// Panics when `epochs == 0` or either population is empty.
pub fn generate_drifting_epochs<T, F>(
    from: &Dataset,
    to: &Dataset,
    epochs: usize,
    users_per_epoch: u64,
    seed: u64,
    mut encode: F,
) -> Vec<EncodedStream>
where
    T: WireReport,
    F: FnMut(usize, &mut StdRng) -> T,
{
    assert!(epochs > 0, "a drifting replay needs at least one epoch");
    let from_sampler = ValueSampler::new(from);
    let to_sampler = ValueSampler::new(to);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|e| {
            let t = if epochs == 1 {
                0.0
            } else {
                e as f64 / (epochs - 1) as f64
            };
            let mut stream = EncodedStream::new();
            for _ in 0..users_per_epoch {
                let value = if rng.random::<f64>() < t {
                    to_sampler.draw(&mut rng)
                } else {
                    from_sampler.draw(&mut rng)
                };
                let report = encode(value, &mut rng);
                stream.push_epoch(&report, e as u64);
            }
            stream
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::Epsilon;
    use ldp_ranges::{HaarConfig, HaarHrrClient};

    #[test]
    fn sampler_tracks_histogram() {
        let ds = Dataset::from_counts(vec![0, 5_000, 0, 15_000]);
        let sampler = ValueSampler::new(&ds);
        let mut rng = StdRng::seed_from_u64(601);
        let mut hits = [0u32; 4];
        for _ in 0..20_000 {
            hits[sampler.draw(&mut rng)] += 1;
        }
        assert_eq!(hits[0], 0);
        assert_eq!(hits[2], 0);
        let frac1 = f64::from(hits[1]) / 20_000.0;
        assert!((frac1 - 0.25).abs() < 0.02, "frac {frac1}");
    }

    #[test]
    fn generated_stream_is_deterministic_and_indexed() {
        let ds = Dataset::from_counts(vec![100; 32]);
        let config = HaarConfig::new(32, Epsilon::new(1.1)).unwrap();
        let client = HaarHrrClient::new(config).unwrap();
        let make = |seed| generate_stream(&ds, 200, seed, |v, rng| client.report(v, rng).unwrap());
        let a = make(7);
        let b = make(7);
        let c = make(8);
        assert_eq!(a.len(), 200);
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_ne!(a.as_bytes(), c.as_bytes());
        // Offsets tile the buffer.
        let mut total = 0;
        for i in 0..a.len() {
            assert!(!a.frame(i).is_empty());
            total += a.frame(i).len();
        }
        assert_eq!(total, a.total_bytes());
        assert!(a.mean_frame_bytes() > 4.0);
    }
}
