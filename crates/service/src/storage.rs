//! Durable storage: write-ahead log + checkpoint/recovery with
//! bit-identical restore.
//!
//! Everything above this module is volatile — a process restart loses
//! every report ever absorbed. This module adds the persistence tier, and
//! because every mechanism's state is an exact integer sufficient
//! statistic ([`ldp_ranges::PersistableServer`]), durability is held to
//! the same standard as the socket path: recovery after a crash at *any*
//! byte offset must reproduce a snapshot bit-identical to an in-process
//! server fed exactly the durably-logged prefix, and the
//! `recovery_differential.rs` tests enforce it for all six mechanisms,
//! windowed and unwindowed.
//!
//! ```text
//!   ingest batch ──► decode ──► absorb (staged, all-or-nothing)
//!                                  │ ok
//!                                  ▼
//!                     WAL append (CRC-framed record,      wal-00000000.log
//!                     raw v1/v2 wire frames + SEAL)       wal-00000001.log …
//!                                  │ fsync policy
//!                                  ▼ ack
//!        periodic checkpoint: merged state → ckpt-00000007.ckpt
//!                     (then older segments truncated)
//!
//!   recovery: newest valid checkpoint ──► replay WAL tail ──► stop at
//!             first torn/corrupt record ──► bit-identical state
//! ```
//!
//! * [`wal`] — the segmented write-ahead log. Each record is CRC-framed
//!   (`len + crc32 + body`) with total, allocation-capped decoding like
//!   the session protocol; FRAMES records carry the *raw* v1/v2 wire
//!   frames exactly as they arrived (the wire format is the log format —
//!   nothing is re-encoded), SEAL and CHECKPOINT are control records.
//! * [`checkpoint`] — full-state snapshots serialized via
//!   [`ldp_ranges::PersistableServer`], written atomically
//!   (temp + fsync + rename) and CRC-validated on read, so a crash
//!   mid-checkpoint can never destroy the previous one.
//! * [`recovery`] — load the newest valid checkpoint, replay the WAL
//!   tail, stop cleanly at the first torn or corrupt record (the
//!   torn-tail rule). Checkpoint + tail replay is bit-identical to
//!   replaying the full log from scratch.
//! * [`store`] — [`DurableService`]: the durable front over
//!   [`crate::LdpService`] (plain or windowed). Batches absorb
//!   all-or-nothing and are logged as one record each (group commit);
//!   the [`FsyncPolicy`] decides how often acknowledged bytes are forced
//!   to disk, so ingest throughput survives durability.
//!
//! ## Write order and what an ack means
//!
//! A batch is absorbed *before* it is logged, and acked only after the
//! log append succeeds. The WAL therefore always holds a prefix of the
//! absorbed batches: a crash between absorb and append loses an
//! *unacknowledged* batch (the producer retries), never an acknowledged
//! one — under [`FsyncPolicy::Always`] an ack means the bytes were
//! fsynced. Rejected batches are never logged, so replay never faces a
//! frame the live service refused.

pub mod checkpoint;
pub mod recovery;
pub mod store;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use recovery::{RecoveryReport, TailStatus};
pub use store::{DurableConfig, DurableService, DurableStatus};
pub use wal::{FsyncPolicy, WalRecord};

use std::path::PathBuf;

/// Fsyncs a directory so just-created or just-renamed entries in it
/// survive power loss. A POSIX-only mechanism: on Windows `File::open`
/// on a directory fails (std does not pass `FILE_FLAG_BACKUP_SEMANTICS`)
/// and directory-entry durability is the filesystem's job, so this is a
/// no-op there.
#[cfg(unix)]
pub(crate) fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
pub(crate) fn sync_dir(_dir: &std::path::Path) -> std::io::Result<()> {
    Ok(())
}

/// A fresh scratch directory under the system temp dir, unique per call —
/// the no-external-deps stand-in for `tempfile`, shared by the storage
/// tests, benchmarks, and examples. The caller owns cleanup.
///
/// # Errors
///
/// Propagates directory-creation failures (an unwritable temp dir).
pub fn scratch_dir(tag: &str) -> std::io::Result<PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    let dir = std::env::temp_dir().join(format!(
        "ldp-{tag}-{}-{}-{nanos}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}
