//! The unified telemetry layer: a mergeable metrics registry, per-stage
//! latency histograms, and wire-exposed runtime introspection.
//!
//! Every tier of the service — shard absorb, snapshot publication, epoch
//! windowing, the session server, and the durable storage layer —
//! registers its instruments in one shared [`MetricsRegistry`] and
//! updates them lock-free on its hot paths. The frozen views
//! ([`RegistrySnapshot`], [`HistoSnapshot`]) obey the same exact
//! merge/subtract algebra as the mechanism servers, and are exposed on
//! three surfaces:
//!
//! 1. the version-gated METRICS session message
//!    ([`crate::net::proto::ClientMsg::Metrics`]),
//! 2. the verbose STATUS_OK payload
//!    ([`crate::net::proto::StatusReply::metrics`]),
//! 3. local text/JSON dumps ([`MetricsRegistry::render`] /
//!    [`MetricsRegistry::render_json`]) used by
//!    `examples/observability.rs` and the bench bins.
//!
//! A [`TraceRing`] rides along for postmortem debugging of the
//! adversarial session paths: a fixed-size lock-free ring of structured
//! events behind a runtime flag.
//!
//! See the README's "Observability" section for the full metric-name
//! table (name, type, unit, tier).

pub mod expose;
pub mod instruments;
pub mod registry;
pub mod trace;

pub use expose::{MetricEntry, MetricValue, RegistrySnapshot, MAX_METRICS, MAX_NAME_BYTES};
pub use registry::{
    Counter, Gauge, Histo, HistoSnapshot, Metric, MetricsRegistry, ObsError, HISTO_BUCKETS,
};
pub use trace::{TraceEvent, TraceOutcome, TraceRing};
