//! The unified telemetry layer: a mergeable metrics registry, per-stage
//! latency histograms, wire-exposed runtime introspection, and the ops
//! plane built on top of them — time-series sampling, derived component
//! health, and cross-tier span tracing.
//!
//! Every tier of the service — shard absorb, snapshot publication, epoch
//! windowing, the session server, and the durable storage layer —
//! registers its instruments in one shared [`MetricsRegistry`] and
//! updates them lock-free on its hot paths. The frozen views
//! ([`RegistrySnapshot`], [`HistoSnapshot`]) obey the same exact
//! merge/subtract algebra as the mechanism servers, and are exposed on
//! five surfaces:
//!
//! 1. the version-gated METRICS session message
//!    ([`crate::net::proto::ClientMsg::Metrics`]),
//! 2. the verbose STATUS_OK payload
//!    ([`crate::net::proto::StatusReply::metrics`]),
//! 3. local text/JSON dumps ([`MetricsRegistry::render`] /
//!    [`MetricsRegistry::render_json`]) used by
//!    `examples/observability.rs` and the bench bins,
//! 4. the Prometheus text exposition
//!    ([`RegistrySnapshot::render_prom`]) served by the plain-HTTP ops
//!    endpoint (`NetConfig::ops_addr`, `GET /metrics`),
//! 5. the time-series ring ([`TimeSeriesRing`]): a background
//!    [`Sampler`] freezes whole snapshots on a fixed interval, and the
//!    exact subtract algebra turns any two samples into a lossless
//!    per-interval delta — served by the `METRICS_RANGE` session
//!    message and `GET /metrics/range`.
//!
//! Health ([`health::evaluate`]) is a pure function over a frozen
//! snapshot: per-component `Healthy`/`Degraded`/`Unhealthy` verdicts
//! derived from signals the registry already carries, rolled into one
//! node verdict — served by the `HEALTH` session message, the verbose
//! STATUS, and `GET /health`.
//!
//! A [`TraceRing`] rides along for postmortem debugging of the
//! adversarial session paths: a fixed-size lock-free ring of structured
//! events behind a runtime flag. Events are **spans**: each message gets
//! an id at reactor decode that follows it through worker execute, WAL
//! group-commit, and follower re-apply ([`TraceStage`]), so one ring
//! tail reconstructs the decode→absorb→fsync→ack timeline of a single
//! REPORT.
//!
//! See the README's "Observability" section for the full metric-name
//! table (name, type, unit, tier) and the health-state semantics.

pub mod expose;
pub mod health;
pub mod instruments;
pub mod registry;
pub mod timeseries;
pub mod trace;

pub use expose::{MetricEntry, MetricValue, RegistrySnapshot, MAX_METRICS, MAX_NAME_BYTES};
pub use health::{evaluate, ComponentHealth, HealthReport, HealthState, HealthThresholds};
pub use registry::{
    Counter, Gauge, Histo, HistoSnapshot, Metric, MetricsRegistry, ObsError, HISTO_BUCKETS,
};
pub use timeseries::{MetricsRange, Sampler, TimeSample, TimeSeriesRing, MAX_RANGE_SAMPLES};
pub use trace::{TraceEvent, TraceOutcome, TraceRing, TraceStage};
