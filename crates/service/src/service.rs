//! The live service front: concurrent ingestion with snapshot-isolated
//! query serving.
//!
//! [`LdpService`] wires the pieces together for long-running use:
//!
//! * **Ingestion** — each shard sits behind its own mutex; submitters
//!   pick a shard round-robin, so writers contend only `1/num_shards` of
//!   the time and the service can absorb traffic from many threads at
//!   once.
//! * **Query serving** — readers never touch shard state. They clone an
//!   `Arc` to the latest published [`RangeSnapshot`] and answer queries
//!   lock-free against that immutable freeze.
//! * **Publication** — [`LdpService::refresh_snapshot`] locks shards one
//!   at a time (briefly, to clone), merges the clones, runs the expensive
//!   estimation *outside* any shard lock, and atomically swaps the
//!   published snapshot with a bumped version. Refreshes are *delta*
//!   refreshes: the service retains the merged accumulator between
//!   refreshes and re-clones only shards that absorbed since the last
//!   freeze, swapping each one's previous contribution out by exact
//!   subtraction — bit-identical to the from-scratch clone-and-merge
//!   (integer sufficient statistics), at a cost proportional to the
//!   shards that actually changed.
//!
//! Queries therefore keep answering — at a bounded staleness — while
//! ingestion continues, which is the contract industry aggregation
//! pipelines provide.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use ldp_ranges::SubtractableServer;

use crate::error::ServiceError;
use crate::obs::instruments::{ServiceInstruments, ShardInstruments, WindowInstruments};
use crate::obs::MetricsRegistry;
use crate::snapshot::{RangeSnapshot, SnapshotSource};
use crate::window::{EpochRing, WindowedSnapshot};
use crate::wire::{decode_frame, WireReport};

// The service's resolved instrument handles (shard tier: the per-shard
// absorb paths run inside this type; service tier: snapshot publication).
struct ServiceObs {
    shard: ShardInstruments,
    service: ServiceInstruments,
}

/// State carried from one snapshot refresh to the next so a refresh can
/// merge *deltas* instead of re-merging every shard from scratch:
/// `merged` always equals the merge of `retained`, and `seen[k]` is the
/// value shard `k`'s dirty counter had when `retained[k]` was cloned.
struct RefreshState<S> {
    merged: S,
    retained: Vec<S>,
    seen: Vec<u64>,
}

/// A sharded LDP aggregation service with snapshot-isolated reads.
pub struct LdpService<S: SnapshotSource> {
    shards: Vec<Mutex<S>>,
    /// Per-shard mutation counters, bumped under the shard lock on every
    /// committed state change; a delta refresh skips any shard whose
    /// counter has not moved since its retained clone was taken.
    dirty: Vec<AtomicU64>,
    next_shard: AtomicUsize,
    published: RwLock<Arc<RangeSnapshot>>,
    version: AtomicU64,
    /// Serializes refreshes end to end (clone → estimate → publish) so a
    /// slow refresher can never overwrite a newer snapshot with staler
    /// data, and holds the retained delta-refresh state (`None` until the
    /// first refresh, and reset by structural changes like epoch seals);
    /// readers stay lock-free on `published`.
    refresh: Mutex<Option<RefreshState<S>>>,
    /// Kill switch for the delta refresh path; disabled, every refresh
    /// falls back to the from-scratch clone-and-merge. Snapshots are
    /// bit-identical either way — the switch exists so CI can prove that
    /// equivalence (see [`LdpService::set_delta_refresh`]).
    delta_refresh: AtomicBool,
    /// Telemetry handles, attached at most once
    /// ([`LdpService::attach_metrics`]); unattached, every hot path pays
    /// one `OnceLock` load and nothing else.
    obs: OnceLock<ServiceObs>,
    /// Window-tier handles for the lockstep seal sweep
    /// (`attach_window_metrics`; meaningful only for windowed backends).
    window_obs: OnceLock<Arc<WindowInstruments>>,
}

/// Environment override for the delta refresh path: set
/// `LDP_DELTA_REFRESH` to `0`, `off`, `false`, or `no` to force every
/// refresh through the from-scratch clone-and-merge. CI uses this as a
/// negative control proving delta and full refreshes publish identical
/// snapshots.
pub const DELTA_REFRESH_ENV: &str = "LDP_DELTA_REFRESH";

fn delta_refresh_from_env() -> bool {
    match std::env::var(DELTA_REFRESH_ENV) {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// Locks a mutex, surfacing poisoning as a typed error instead of a
/// panic: one panicked writer must degrade the service, not cascade.
fn lock<'a, T>(mutex: &'a Mutex<T>, what: &'static str) -> Result<MutexGuard<'a, T>, ServiceError> {
    mutex.lock().map_err(|_| ServiceError::LockPoisoned(what))
}

/// Locks a mutex for a read-only peek, recovering from poisoning. Sound
/// here because every committed mutation of shard state is staged (built
/// against a clone, swapped in whole), so even a poisoned shard holds a
/// consistent value — at worst one report absorbed directly via
/// [`LdpService::submit`] is partially counted, which the racy-read
/// contracts of these paths already tolerate.
fn lock_infallible<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<S: SnapshotSource> LdpService<S> {
    /// Builds the service with `num_shards` shards cloned from the empty
    /// `prototype`; the initial published snapshot (version 0) is the
    /// prototype's empty-state estimate. Note that for the tree and Haar
    /// mechanisms an *empty* server estimates the uniform distribution
    /// with total mass pinned to 1 (their root/scaling coefficient is
    /// exact by construction), not all zeros — readers that must
    /// distinguish "no data yet" from real results should check
    /// [`RangeSnapshot::num_reports`] (0) or
    /// [`RangeSnapshot::version`] (0).
    ///
    /// # Errors
    ///
    /// Rejects `num_shards == 0`.
    pub fn new(prototype: &S, num_shards: usize) -> Result<Self, ServiceError> {
        Self::with_recovered(prototype.clone(), prototype, num_shards)
    }

    /// Builds the service with shard 0 seeded from `recovered` state and
    /// the remaining `num_shards - 1` shards cloned from `empty` — how
    /// the durable storage layer ([`crate::storage::DurableService`])
    /// reopens a service after crash recovery. Because merging is exact,
    /// concentrating the recovered state in one shard leaves every merged
    /// view (snapshots, `num_reports`) bit-identical to the pre-crash
    /// distribution across shards. The initial published snapshot
    /// (version 0) freezes the recovered state.
    ///
    /// For windowed backends `empty` must be epoch-aligned with
    /// `recovered` (see [`EpochRing::aligned_empty`]), or shard merging
    /// will reject the misalignment.
    ///
    /// # Errors
    ///
    /// Rejects `num_shards == 0`.
    pub fn with_recovered(
        recovered: S,
        empty: &S,
        num_shards: usize,
    ) -> Result<Self, ServiceError> {
        if num_shards == 0 {
            return Err(ServiceError::NoShards);
        }
        let initial = Arc::new(RangeSnapshot::freeze(&recovered, 0));
        let mut shards = Vec::with_capacity(num_shards);
        shards.push(Mutex::new(recovered));
        shards.extend((1..num_shards).map(|_| Mutex::new(empty.clone())));
        Ok(Self {
            shards,
            dirty: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            next_shard: AtomicUsize::new(0),
            published: RwLock::new(initial),
            version: AtomicU64::new(0),
            refresh: Mutex::new(None),
            delta_refresh: AtomicBool::new(delta_refresh_from_env()),
            obs: OnceLock::new(),
            window_obs: OnceLock::new(),
        })
    }

    /// Whether snapshot refreshes may take the delta path (re-clone and
    /// re-merge only shards that absorbed since the last freeze).
    #[must_use]
    pub fn delta_refresh_enabled(&self) -> bool {
        self.delta_refresh.load(Ordering::Relaxed)
    }

    /// Enables or disables the delta refresh path. The initial value
    /// comes from the [`DELTA_REFRESH_ENV`] environment variable
    /// (enabled unless set to `0`/`off`/`false`/`no`). Published
    /// snapshots are bit-identical on either path; disabling only costs
    /// refresh latency, which is why the negative control in CI can flip
    /// it without touching correctness.
    pub fn set_delta_refresh(&self, enabled: bool) {
        self.delta_refresh.store(enabled, Ordering::Relaxed);
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Attaches shard- and service-tier telemetry from the shared
    /// `registry`: batch absorb wall time, accepted/rejected frame
    /// counts, snapshot refresh latency, and the published version gauge.
    /// First attachment wins (returns `false` if already attached);
    /// unattached services carry zero instrumentation cost.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) -> bool {
        self.obs
            .set(ServiceObs {
                shard: ShardInstruments::register(registry),
                service: ServiceInstruments::register(registry),
            })
            .is_ok()
    }

    /// Absorbs one decoded report into the next shard (round-robin).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the mechanism.
    pub fn submit(&self, report: &S::Report) -> Result<(), ServiceError> {
        let k = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut shard = lock(&self.shards[k], "shard")?;
        let result = shard.absorb(report);
        if result.is_ok() {
            self.dirty[k].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(obs) = self.obs.get() {
            match &result {
                Ok(()) => obs.shard.frames_accepted.incr(),
                Err(_) => obs.shard.frames_rejected.incr(),
            }
        }
        result.map_err(Into::into)
    }

    /// Decodes one wire frame and absorbs it. The buffer must hold
    /// exactly one frame — trailing bytes (a second concatenated frame, a
    /// partial next report) are an error, never silently dropped.
    ///
    /// # Errors
    ///
    /// Propagates wire and mechanism errors.
    pub fn submit_frame(&self, frame: &[u8]) -> Result<(), ServiceError>
    where
        S::Report: WireReport,
    {
        let (report, used) = decode_frame::<S::Report>(frame)?;
        if used != frame.len() {
            return Err(crate::error::WireError::Malformed("trailing bytes after frame").into());
        }
        self.submit(&report)
    }

    /// Absorbs a batch of decoded reports into one round-robin shard,
    /// **all-or-nothing**: the batch is staged against a clone of the
    /// shard and committed only if every report absorbs, so a rejected
    /// batch can be retried or discarded without double-counting. This is
    /// the transactional unit the network front end
    /// ([`crate::net::LdpServer`]) acks per REPORT message.
    ///
    /// Because every mechanism's state is an integer sum, the staged
    /// clone-and-swap leaves state bit-identical to absorbing the same
    /// reports through [`LdpService::submit`] one at a time.
    ///
    /// # Errors
    ///
    /// A rejected report surfaces as [`ServiceError::BadFrame`] carrying
    /// its batch index and report type; state is unchanged on error.
    pub fn submit_batch(&self, reports: &[S::Report]) -> Result<(), ServiceError> {
        if reports.is_empty() {
            return Ok(());
        }
        let started = self.obs.get().map(|_| Instant::now());
        let result = self.submit_batch_inner(reports);
        if let (Some(obs), Some(started)) = (self.obs.get(), started) {
            obs.shard.absorb_ns.record_elapsed(started);
            match &result {
                Ok(()) => obs.shard.frames_accepted.add(reports.len() as u64),
                Err(_) => obs.shard.frames_rejected.add(reports.len() as u64),
            }
        }
        result
    }

    fn submit_batch_inner(&self, reports: &[S::Report]) -> Result<(), ServiceError> {
        let k = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut shard = lock(&self.shards[k], "shard")?;
        let mut staged = shard.clone();
        for (i, report) in reports.iter().enumerate() {
            staged.absorb(report).map_err(|e| ServiceError::BadFrame {
                index: i,
                report_type: crate::error::report_type_name::<S::Report>(),
                source: Box::new(e.into()),
            })?;
        }
        *shard = staged;
        self.dirty[k].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Absorbs a REPORT batch straight from its raw wire bytes into one
    /// round-robin shard, **all-or-nothing** like
    /// [`LdpService::submit_batch`], without materializing the decoded
    /// batch: each frame is decoded from its borrowed subslice of
    /// `frames` and absorbed into the staged clone immediately, so the
    /// batch machinery does O(1) allocations however many frames the
    /// message carries. Epoch tags (v2 frames) are ignored, exactly as
    /// the collecting network path ignored them for unwindowed backends.
    ///
    /// Returns the number of frames absorbed (always `count` on success).
    ///
    /// # Errors
    ///
    /// A malformed or rejected frame surfaces as
    /// [`ServiceError::BadFrame`] with its batch index; state is
    /// unchanged on error.
    pub fn submit_wire_batch(
        &self,
        wire_version: u8,
        count: u64,
        frames: &[u8],
    ) -> Result<u64, ServiceError>
    where
        S::Report: WireReport,
    {
        if count == 0 && frames.is_empty() {
            return Ok(0);
        }
        let started = self.obs.get().map(|_| Instant::now());
        let k = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let result = (|| {
            let mut shard = lock(&self.shards[k], "shard")?;
            let mut staged = shard.clone();
            let absorbed =
                crate::wire::for_each_frame(wire_version, count, frames, |_epoch, report| {
                    staged.absorb(&report).map_err(Into::into)
                })?;
            *shard = staged;
            self.dirty[k].fetch_add(1, Ordering::Relaxed);
            Ok(absorbed)
        })();
        self.observe_wire_batch(&result, count, frames.len(), started);
        result
    }

    /// Shard-tier accounting for the streaming batch paths, mirroring
    /// [`LdpService::submit_batch`]: all-or-nothing, with the rejected
    /// count bounded by what the payload could physically hold (the
    /// smallest frame is 5 bytes) so a lying count cannot inflate an
    /// operator-visible counter.
    fn observe_wire_batch(
        &self,
        result: &Result<u64, ServiceError>,
        count: u64,
        payload_len: usize,
        started: Option<Instant>,
    ) {
        if let (Some(obs), Some(started)) = (self.obs.get(), started) {
            obs.shard.absorb_ns.record_elapsed(started);
            match result {
                Ok(absorbed) => obs.shard.frames_accepted.add(*absorbed),
                Err(_) => obs
                    .shard
                    .frames_rejected
                    .add(count.min(payload_len as u64 / 5)),
            }
        }
    }

    /// Total reports across all shards right now (racy by nature while
    /// writers are active; exact when quiesced).
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock_infallible(s).num_reports())
            .sum()
    }

    /// The most recently published snapshot (lock-free once cloned).
    /// Poisoning is recovered from: the published slot only ever holds a
    /// whole `Arc`, so it is consistent even if a publisher panicked.
    #[must_use]
    pub fn snapshot(&self) -> Arc<RangeSnapshot> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Merges current shard state and publishes a fresh snapshot,
    /// returning it. Shards are locked one at a time only long enough to
    /// clone (or, on the delta path, to read one counter); estimation
    /// runs with no shard lock held.
    ///
    /// Refreshes after the first take the **delta path** whenever
    /// enabled (see [`LdpService::set_delta_refresh`]): the previous
    /// refresh's merged accumulator is retained, and only shards whose
    /// dirty counter moved since their last clone are re-cloned — each
    /// one's previous contribution is subtracted out and the fresh clone
    /// merged in. Integer sufficient statistics make subtract the exact
    /// inverse of merge and both order-insensitive, so the published
    /// snapshot is bit-identical to a from-scratch clone-and-merge (the
    /// `delta_refresh` proptest pins this for all six mechanisms).
    /// Structural changes (epoch seals) reset the retained state, forcing
    /// the next refresh through the full rebuild.
    ///
    /// # Errors
    ///
    /// Propagates merge failures (impossible for shards built by
    /// [`LdpService::new`]).
    pub fn refresh_snapshot(&self) -> Result<Arc<RangeSnapshot>, ServiceError> {
        // Serialize the whole clone → merge → estimate → publish sequence;
        // without this, a refresher that cloned earlier (staler data)
        // could publish after — and overwrite — a fresher snapshot.
        let mut guard = lock(&self.refresh, "refresh")?;
        let started = self.obs.get().map(|_| Instant::now());
        let reused = self.refresh_merged(&mut guard)?;
        let Some(state) = guard.as_ref() else {
            return Err(ServiceError::NoShards);
        };
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(RangeSnapshot::freeze(&state.merged, version));
        *self
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::clone(&snap);
        if let Some(obs) = self.obs.get() {
            if let Some(started) = started {
                obs.service.refresh_ns.record_elapsed(started);
            }
            obs.service.refreshes.incr();
            obs.service.snapshot_version.set(version);
            match reused {
                Some(n) => {
                    obs.service.refreshes_delta.incr();
                    obs.service.refresh_shards_reused.add(n as u64);
                }
                None => obs.service.refreshes_full.incr(),
            }
        }
        Ok(snap)
    }

    /// Brings the retained refresh state up to date with current shard
    /// contents: the delta path when state is retained and the switch is
    /// on, the from-scratch rebuild otherwise. On `Ok` the guard always
    /// holds a state whose `merged` equals a from-scratch clone-and-merge
    /// of every shard, bit for bit. Returns the number of unchanged
    /// shards the delta path reused (`None` when the full rebuild ran).
    fn refresh_merged(
        &self,
        state: &mut Option<RefreshState<S>>,
    ) -> Result<Option<usize>, ServiceError> {
        if self.delta_refresh.load(Ordering::Relaxed) {
            let applied = match state.as_mut() {
                // An error mid-delta (impossible for shards built by the
                // constructors) may leave `merged` half-updated: drop the
                // state below and rebuild instead of propagating.
                Some(s) => self.apply_shard_deltas(s).ok(),
                None => None,
            };
            if let Some(reused) = applied {
                return Ok(Some(reused));
            }
            *state = None;
        } else {
            // While the switch is off the retained clones go stale; drop
            // them so a later re-enable cannot delta against them.
            *state = None;
        }
        let mut retained = Vec::with_capacity(self.shards.len());
        let mut seen = Vec::with_capacity(self.shards.len());
        for (shard, dirty) in self.shards.iter().zip(&self.dirty) {
            let locked = lock(shard, "shard")?;
            // Read under the shard lock: the counter is bumped under this
            // same lock, so it exactly matches the cloned contents.
            seen.push(dirty.load(Ordering::Relaxed));
            retained.push(locked.clone());
        }
        let mut merged = retained.first().cloned().ok_or(ServiceError::NoShards)?;
        for shard in &retained[1..] {
            merged.merge(shard)?;
        }
        *state = Some(RefreshState {
            merged,
            retained,
            seen,
        });
        Ok(None)
    }

    /// The delta step: every shard whose dirty counter moved has its
    /// previous contribution subtracted out of the running merge and a
    /// fresh clone merged in (and retained). Unchanged shards cost one
    /// counter load — no clone, no merge. Returns how many were reused.
    fn apply_shard_deltas(&self, state: &mut RefreshState<S>) -> Result<usize, ServiceError> {
        debug_assert_eq!(state.retained.len(), self.shards.len());
        let mut reused = 0;
        for (k, (shard, dirty)) in self.shards.iter().zip(&self.dirty).enumerate() {
            let fresh = {
                let locked = lock(shard, "shard")?;
                let counter = dirty.load(Ordering::Relaxed);
                if counter == state.seen[k] {
                    reused += 1;
                    continue;
                }
                state.seen[k] = counter;
                locked.clone()
            };
            state.merged.subtract(&state.retained[k])?;
            state.merged.merge(&fresh)?;
            state.retained[k] = fresh;
        }
        Ok(reused)
    }

    /// Clones and merges every shard into one server — exactly the state
    /// a single sequential server absorbing the same reports would hold.
    /// Serialized with snapshot refreshes and epoch seals (the refresh
    /// guard), so the returned state never straddles an epoch boundary.
    /// This is what durable checkpoints serialize.
    ///
    /// # Errors
    ///
    /// Merge failures are impossible for shards built by
    /// [`LdpService::new`]; lock poisoning surfaces as
    /// [`ServiceError::LockPoisoned`].
    pub fn merged_state(&self) -> Result<S, ServiceError> {
        let _guard = lock(&self.refresh, "refresh")?;
        self.merge_shards()
    }

    /// Clone + merge of all shards; callers must hold the refresh guard.
    fn merge_shards(&self) -> Result<S, ServiceError> {
        let mut merged: Option<S> = None;
        for shard in &self.shards {
            let copy = lock(shard, "shard")?.clone();
            match &mut merged {
                None => merged = Some(copy),
                Some(m) => m.merge(&copy)?,
            }
        }
        merged.ok_or(ServiceError::NoShards)
    }
}

/// The windowed streaming front: every shard holds an [`EpochRing`], so
/// the service ingests into the open epoch, seals epochs in lockstep
/// across shards, and answers sliding-window queries while reports keep
/// arriving. [`LdpService::refresh_snapshot`] on a windowed service
/// publishes the *trailing-window* estimate (retained sealed epochs plus
/// the open one), not the all-time population.
impl<S> LdpService<EpochRing<S>>
where
    S: SnapshotSource + SubtractableServer,
{
    /// Builds a windowed service: `num_shards` shards, each an epoch ring
    /// retaining `window_len` sealed epochs. Shard rings use manual
    /// sealing only (driven by [`LdpService::seal_epoch`]) so they stay
    /// epoch-aligned.
    ///
    /// # Errors
    ///
    /// Rejects `num_shards == 0` and `window_len == 0`.
    pub fn windowed(
        prototype: &S,
        num_shards: usize,
        window_len: usize,
    ) -> Result<Self, ServiceError> {
        let ring = EpochRing::new(prototype, window_len)?;
        Self::new(&ring, num_shards)
    }

    /// Id of the epoch currently open for ingestion.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        lock_infallible(&self.shards[0]).current_epoch()
    }

    /// Attaches window-tier telemetry from the shared `registry`: the
    /// lockstep seal sweep's latency and count are recorded here, the
    /// per-ring rotation subtract inside each shard's [`EpochRing`]. One
    /// instrument set is shared by every shard ring — rotation counts
    /// from all shards fan into the same counters, exactly like shard
    /// state fans into one merge. First attachment wins.
    pub fn attach_window_metrics(&self, registry: &MetricsRegistry) -> bool {
        let instruments = Arc::new(WindowInstruments::register(registry));
        for shard in &self.shards {
            lock_infallible(shard).set_instruments(Arc::clone(&instruments));
        }
        self.window_obs.set(instruments).is_ok()
    }

    /// Seals the open epoch on every shard and returns its id. Holds the
    /// refresh lock for the whole sweep so a concurrent
    /// [`LdpService::refresh_snapshot`] or [`LdpService::window_snapshot`]
    /// never observes half-sealed (epoch-misaligned) shards.
    ///
    /// Boundary semantics for concurrent submitters: an *untagged* (v1)
    /// report racing the seal lands on one side of the boundary or the
    /// other; a *tagged* (v2) report racing the seal may be routed to a
    /// shard that has already advanced and be rejected with
    /// [`ServiceError::EpochMismatch`] — rejection, not misplacement, is
    /// the designed failure mode, and the producer resubmits under the
    /// new epoch id (or untagged).
    ///
    /// # Errors
    ///
    /// Impossible for shards built by [`LdpService::windowed`]; an error
    /// indicates corrupted state.
    pub fn seal_epoch(&self) -> Result<u64, ServiceError> {
        let mut guard = lock(&self.refresh, "refresh")?;
        let started = self.window_obs.get().map(|_| Instant::now());
        let mut sealed = None;
        for shard in &self.shards {
            let id = lock(shard, "shard")?.seal_epoch()?;
            debug_assert!(sealed.is_none_or(|s| s == id), "shards sealed out of step");
            sealed = Some(id);
        }
        // Sealing restructures every shard ring (new open epoch, rotated
        // retention), so the retained delta-refresh clones no longer
        // align; drop them and let the next refresh rebuild from scratch.
        *guard = None;
        if let (Some(obs), Some(started)) = (self.window_obs.get(), started) {
            obs.seal_ns.record_elapsed(started);
            obs.epochs_sealed.incr();
        }
        sealed.ok_or(ServiceError::NoShards)
    }

    /// Decodes one wire frame — v1 (epoch-less) or v2 (epoch-tagged) —
    /// and absorbs it into the open epoch. A v2 tag naming any epoch
    /// other than the open one is rejected: a stale straggler must not be
    /// silently folded into the wrong window. This includes tagged frames
    /// racing a concurrent [`LdpService::seal_epoch`] (see its boundary
    /// semantics) — resubmit under the fresh epoch id.
    ///
    /// # Errors
    ///
    /// Propagates wire and mechanism errors;
    /// [`ServiceError::EpochMismatch`] for stale or future tags.
    pub fn submit_epoch_frame(&self, frame: &[u8]) -> Result<(), ServiceError>
    where
        S::Report: WireReport,
    {
        let (epoch, report, used) = crate::wire::decode_epoch_frame::<S::Report>(frame)?;
        if used != frame.len() {
            return Err(crate::error::WireError::Malformed("trailing bytes after frame").into());
        }
        let k = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut shard = lock(&self.shards[k], "shard")?;
        let result = shard.absorb_tagged(epoch, &report);
        if result.is_ok() {
            self.dirty[k].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(obs) = self.obs.get() {
            match &result {
                Ok(()) => obs.shard.frames_accepted.incr(),
                Err(_) => obs.shard.frames_rejected.incr(),
            }
        }
        result
    }

    /// Absorbs a batch of epoch-tagged reports (`None` = untagged v1
    /// frame) into one round-robin shard, **all-or-nothing** like
    /// [`LdpService::submit_batch`]: tags are checked against the open
    /// epoch and the whole batch is staged before committing, so a stale
    /// straggler anywhere in the batch rejects it without any partial
    /// absorb.
    ///
    /// # Errors
    ///
    /// A rejected report surfaces as [`ServiceError::BadFrame`] carrying
    /// its batch index (with [`ServiceError::EpochMismatch`] as the
    /// source for stale or future tags); state is unchanged on error.
    pub fn submit_epoch_batch(
        &self,
        reports: &[(Option<u64>, S::Report)],
    ) -> Result<(), ServiceError> {
        if reports.is_empty() {
            return Ok(());
        }
        let started = self.obs.get().map(|_| Instant::now());
        let result = self.submit_epoch_batch_inner(reports);
        if let (Some(obs), Some(started)) = (self.obs.get(), started) {
            obs.shard.absorb_ns.record_elapsed(started);
            match &result {
                Ok(()) => obs.shard.frames_accepted.add(reports.len() as u64),
                Err(_) => obs.shard.frames_rejected.add(reports.len() as u64),
            }
        }
        result
    }

    fn submit_epoch_batch_inner(
        &self,
        reports: &[(Option<u64>, S::Report)],
    ) -> Result<(), ServiceError> {
        let k = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut shard = lock(&self.shards[k], "shard")?;
        let mut staged = shard.clone();
        for (i, (epoch, report)) in reports.iter().enumerate() {
            staged
                .absorb_tagged(*epoch, report)
                .map_err(|e| ServiceError::BadFrame {
                    index: i,
                    report_type: crate::error::report_type_name::<S::Report>(),
                    source: Box::new(e),
                })?;
        }
        *shard = staged;
        self.dirty[k].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Absorbs a REPORT batch straight from its raw wire bytes into one
    /// round-robin shard, **all-or-nothing** like
    /// [`LdpService::submit_epoch_batch`], without materializing the
    /// decoded batch — the windowed twin of
    /// [`LdpService::submit_wire_batch`]. Epoch tags are checked against
    /// the open epoch as each frame is decoded from its borrowed subslice
    /// of `frames` and absorbed into the staged clone.
    ///
    /// Returns the number of frames absorbed (always `count` on success).
    ///
    /// # Errors
    ///
    /// A malformed or rejected frame surfaces as
    /// [`ServiceError::BadFrame`] with its batch index (with
    /// [`ServiceError::EpochMismatch`] as the source for stale or future
    /// tags); state is unchanged on error.
    pub fn submit_epoch_wire_batch(
        &self,
        wire_version: u8,
        count: u64,
        frames: &[u8],
    ) -> Result<u64, ServiceError>
    where
        S::Report: WireReport,
    {
        if count == 0 && frames.is_empty() {
            return Ok(0);
        }
        let started = self.obs.get().map(|_| Instant::now());
        let k = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let result = (|| {
            let mut shard = lock(&self.shards[k], "shard")?;
            let mut staged = shard.clone();
            let absorbed =
                crate::wire::for_each_frame(wire_version, count, frames, |epoch, report| {
                    staged.absorb_tagged(epoch, &report)
                })?;
            *shard = staged;
            self.dirty[k].fetch_add(1, Ordering::Relaxed);
            Ok(absorbed)
        })();
        self.observe_wire_batch(&result, count, frames.len(), started);
        result
    }

    /// Merges the shard rings and freezes the trailing `epochs` sealed
    /// epochs into an immutable windowed query handle. Serialized with
    /// sealing (see [`LdpService::seal_epoch`]); queries on the returned
    /// snapshot are lock-free.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::EmptyWindow`] when `epochs == 0` or no
    /// epoch has been sealed yet.
    pub fn window_snapshot(&self, epochs: usize) -> Result<WindowedSnapshot, ServiceError> {
        // Extract each shard's trailing-window server (for the common
        // full-window query that is a clone of the shard's running merge)
        // under the refresh guard, so a concurrent seal cannot leave the
        // extraction straddling an epoch boundary. Merging and the
        // expensive estimation run after the guard drops — sealing and
        // snapshot refreshes never wait on estimation.
        let (servers, bounds) = {
            let _guard = lock(&self.refresh, "refresh")?;
            let mut servers = Vec::with_capacity(self.shards.len());
            let mut bounds = None;
            for shard in &self.shards {
                let ring = lock(shard, "shard")?;
                servers.push(ring.window_server(epochs)?);
                if bounds.is_none() {
                    // Shards seal in lockstep (under this same guard), so
                    // every shard reports identical bounds.
                    bounds = ring.window_bounds(epochs);
                }
            }
            (servers, bounds)
        };
        let (first, last) = bounds.ok_or(ServiceError::EmptyWindow)?;
        let mut servers = servers.into_iter();
        let mut merged = servers.next().ok_or(ServiceError::NoShards)?;
        for server in servers {
            merged.merge(&server)?;
        }
        Ok(WindowedSnapshot::from_parts(
            RangeSnapshot::freeze(&merged, last),
            first,
            last,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::Epsilon;
    use ldp_ranges::{HaarConfig, HaarHrrClient, HaarHrrServer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concurrent_ingest_and_query() {
        let config = HaarConfig::new(64, Epsilon::from_exp(3.0)).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let prototype = HaarHrrServer::new(config).unwrap();
        let service = LdpService::new(&prototype, 4).unwrap();
        assert_eq!(service.num_shards(), 4);
        assert_eq!(service.snapshot().version(), 0);

        let writers = 4u64;
        let per_writer = 2_000u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let service = &service;
                let client = &client;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(800 + w);
                    for i in 0..per_writer {
                        let v = 16 + (i as usize % 32);
                        let r = client.report(v, &mut rng).unwrap();
                        service.submit(&r).unwrap();
                    }
                });
            }
            // A reader refreshing and querying while writers run: the
            // snapshot must always be internally consistent.
            let service = &service;
            scope.spawn(move || {
                for _ in 0..20 {
                    let snap = service.refresh_snapshot().unwrap();
                    let total = snap.range(0, 63);
                    assert!((total - 1.0).abs() < 1e-9 || snap.num_reports() == 0);
                    let _ = snap.quantile(0.5);
                }
            });
        });

        assert_eq!(service.num_reports(), writers * per_writer);
        let final_snap = service.refresh_snapshot().unwrap();
        assert_eq!(final_snap.num_reports(), writers * per_writer);
        assert!(final_snap.version() >= 20);
        assert!((final_snap.range(16, 47) - 1.0).abs() < 0.1);
        // Old handles keep answering after newer publications.
        let old = service.snapshot();
        service.refresh_snapshot().unwrap();
        assert!(old.version() < service.snapshot().version());
        let _ = old.range(0, 63);
    }
}
