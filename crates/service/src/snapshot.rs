//! The snapshot query layer: frozen, immutable estimates served
//! concurrently while ingestion continues.
//!
//! Estimation (constrained inference, transform inversion, prefix-sum
//! construction) is much more expensive than absorbing a report, and the
//! raw shard accumulators mutate constantly. The service therefore
//! separates the two: [`RangeSnapshot`] freezes a merged server's state
//! into a fully materialized, query-optimized handle — per-item
//! frequencies plus prefix sums — answering range, prefix, point and
//! quantile queries in `O(1)`/`O(log D)` with no locks at all. Snapshots
//! are cheap to share (`Arc`) and carry a monotonically increasing
//! version plus the report count they reflect, so readers can reason
//! about staleness.

use ldp_ranges::{
    quantile, FlatServer, FrequencyEstimate, HaarHrrServer, HaarOueServer, Hh2dServer, HhServer,
    HhSplitServer, RangeEstimate, SubtractableServer,
};

/// Servers whose merged state can be frozen into a 1-D frequency
/// snapshot.
///
/// Implementations pick their mechanism's best estimator (constrained
/// inference for the hierarchical families, pyramid collapse for Haar),
/// so a snapshot is exactly what the underlying mechanism would publish.
///
/// The supertrait is [`SubtractableServer`], not just mergeable: the
/// service's delta snapshot refresh swaps a shard's previous
/// contribution *out* of a retained running merge by exact subtraction
/// ([`crate::LdpService::refresh_snapshot`]), so anything the service can
/// freeze must also be able to un-merge. Every mechanism's integer
/// sufficient statistics satisfy this for free.
pub trait SnapshotSource: SubtractableServer {
    /// Materializes the per-item frequency estimate of the current state.
    fn frequency_estimate(&self) -> FrequencyEstimate;
}

impl SnapshotSource for FlatServer {
    fn frequency_estimate(&self) -> FrequencyEstimate {
        self.estimate()
    }
}

impl SnapshotSource for HhServer {
    fn frequency_estimate(&self) -> FrequencyEstimate {
        self.estimate_consistent().to_frequency_estimate()
    }
}

impl SnapshotSource for HhSplitServer {
    fn frequency_estimate(&self) -> FrequencyEstimate {
        self.estimate_consistent().to_frequency_estimate()
    }
}

impl SnapshotSource for HaarHrrServer {
    fn frequency_estimate(&self) -> FrequencyEstimate {
        self.estimate().to_frequency_estimate()
    }
}

impl SnapshotSource for HaarOueServer {
    fn frequency_estimate(&self) -> FrequencyEstimate {
        self.estimate().to_frequency_estimate()
    }
}

/// The 2-D mechanism linearized: cell `(x, y)` of the `side × side` grid
/// becomes flattened item `x · side + y` (x-major), so the snapshot's
/// range/prefix queries run over the row-major cell order. Native
/// axis-aligned rectangle queries stay on [`Hh2dServer::estimate`]; this
/// impl is what lets the 2-D mechanism ride the generic service and
/// network stack (`LdpService`, `LdpServer`) beside the 1-D mechanisms.
impl SnapshotSource for Hh2dServer {
    fn frequency_estimate(&self) -> FrequencyEstimate {
        let est = self.estimate();
        let side = est.side();
        let mut freqs = Vec::with_capacity(side * side);
        for x in 0..side {
            for y in 0..side {
                freqs.push(est.rectangle(x, x, y, y));
            }
        }
        FrequencyEstimate::new(freqs)
    }
}

/// An immutable, query-ready freeze of merged aggregator state.
#[derive(Debug, Clone)]
pub struct RangeSnapshot {
    estimate: FrequencyEstimate,
    num_reports: u64,
    version: u64,
}

impl RangeSnapshot {
    /// Freezes a server's current state.
    #[must_use]
    pub fn freeze<S: SnapshotSource>(server: &S, version: u64) -> Self {
        Self {
            estimate: server.frequency_estimate(),
            num_reports: server.num_reports(),
            version,
        }
    }

    /// Builds a snapshot directly from a materialized estimate.
    #[must_use]
    pub fn from_estimate(estimate: FrequencyEstimate, num_reports: u64, version: u64) -> Self {
        Self {
            estimate,
            num_reports,
            version,
        }
    }

    /// Domain size `D`.
    #[must_use]
    pub fn domain(&self) -> usize {
        self.estimate.domain()
    }

    /// Reports reflected in this snapshot.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.num_reports
    }

    /// Monotone publication version (0 = the empty initial snapshot).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Estimated fraction of users with value in the inclusive `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds.
    #[must_use]
    pub fn range(&self, a: usize, b: usize) -> f64 {
        self.estimate.range(a, b)
    }

    /// Estimated prefix fraction `R[0, b]`.
    #[must_use]
    pub fn prefix(&self, b: usize) -> f64 {
        self.estimate.prefix(b)
    }

    /// Estimated frequency of one item.
    #[must_use]
    pub fn point(&self, z: usize) -> f64 {
        self.estimate.point(z)
    }

    /// Estimated φ-quantile (binary search over the estimated CDF).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ phi ≤ 1`.
    #[must_use]
    pub fn quantile(&self, phi: f64) -> usize {
        quantile(&self.estimate, phi)
    }

    /// The underlying frequency estimate.
    #[must_use]
    pub fn estimate(&self) -> &FrequencyEstimate {
        &self.estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::Epsilon;
    use ldp_ranges::{HhClient, HhConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_matches_direct_estimation() {
        let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(701);
        for i in 0..2_000 {
            let r = client.report(16 + (i % 32), &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        let snap = RangeSnapshot::freeze(&server, 3);
        assert_eq!(snap.version(), 3);
        assert_eq!(snap.num_reports(), 2_000);
        assert_eq!(snap.domain(), 64);
        let direct = server.estimate_consistent().to_frequency_estimate();
        for (a, b) in [(0, 63), (16, 47), (5, 5)] {
            assert_eq!(snap.range(a, b).to_bits(), direct.range(a, b).to_bits());
        }
        assert_eq!(snap.quantile(0.5), quantile(&direct, 0.5));
        assert!((snap.prefix(63) - 1.0).abs() < 0.05);
    }
}
