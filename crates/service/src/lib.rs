//! # ldp-service — sharded, mergeable LDP aggregation service
//!
//! The mechanism crates ([`ldp_ranges`], [`ldp_freq_oracle`]) implement
//! the SIGMOD'19 range-query mechanisms as single-threaded accumulators.
//! This crate turns them into a service shape able to absorb traffic from
//! millions of reporting users: a compact wire protocol, parallel
//! shard-local aggregation, and snapshot-isolated query serving.
//!
//! ## Architecture
//!
//! ```text
//!   clients                      service                       queries
//!   ───────                      ───────                       ───────
//!   value ──► mechanism client ──► wire frame ("LQ" v1)
//!                                    │
//!                                    ▼ (batches)
//!                     ┌─────────────────────────────┐
//!                     │ ShardedAggregator / LdpService │
//!                     │  shard 0   shard 1  …  shard k │   workers decode
//!                     │  (absorb)  (absorb)    (absorb)│   + absorb in
//!                     └─────────────┬───────────────┘   parallel
//!                                   │ merge (exact: integer
//!                                   ▼        sufficient statistics)
//!                            merged server
//!                                   │ freeze (CI / pyramid collapse,
//!                                   ▼         prefix sums)
//!                            RangeSnapshot (Arc, versioned)
//!                                   │
//!                                   ▼
//!                     range / prefix / point / quantile — lock-free
//! ```
//!
//! * [`wire`] — the versioned binary frame format for every report type
//!   (flat one-hots through any oracle, `HH_B` level reports, budget-split
//!   reports, both Haar variants, 2-D grids). Total decoding: malformed
//!   bytes produce [`error::WireError`], never a panic or an unbounded
//!   allocation.
//! * [`shard`] — [`ShardedAggregator`]: a pool of per-shard accumulators
//!   fed in parallel batches from worker threads. Merging relies on
//!   [`ldp_ranges::MergeableServer`]: every mechanism's state is an
//!   integer sum, so shard-merge equals sequential absorption *exactly*
//!   (bit-for-bit), making sharding a pure throughput change.
//! * [`snapshot`] — [`RangeSnapshot`]: merged state frozen into an
//!   immutable, prefix-summed estimate answering range/prefix/point/
//!   quantile queries in `O(1)`/`O(log D)`, shared by `Arc`, versioned
//!   for staleness reasoning.
//! * [`service`] — [`LdpService`]: the live front combining round-robin
//!   mutex-sharded ingestion with atomic snapshot publication, so queries
//!   keep answering while reports stream in.
//! * [`window`] — [`EpochRing`]: time-windowed streaming aggregation.
//!   Per-epoch accumulators in a ring, rotation that retires the oldest
//!   epoch by *exact subtraction* ([`SubtractableServer`]) instead of a
//!   full recompute, and [`WindowedSnapshot`] handles answering
//!   range/prefix/quantile queries over any trailing window while
//!   ingestion continues. Wire v2 frames carry an epoch id so stale
//!   stragglers are rejected, not folded into the wrong window.
//! * [`loadgen`] — replay of [`ldp_workloads::Dataset`] populations as
//!   deterministic encoded report streams ([`EncodedStream`]), powering
//!   the `service_throughput` benchmark and the integration tests; the
//!   drifting variant ([`generate_drifting_epochs`]) replays a population
//!   that shifts across epochs, the workload windowed queries exist for.
//! * [`net`] — the network tier: a std-only threaded TCP front end
//!   ([`LdpServer`] acceptor + bounded-queue worker pool, [`LdpClient`]
//!   blocking sessions) speaking a length-prefixed session protocol
//!   layered on the wire frames. Because every mechanism's state is an
//!   exact integer sufficient statistic, bytes-over-socket produce
//!   *bit-identical* snapshots to in-process submission — the transport
//!   is a pure function, and the differential tests enforce it.
//! * [`storage`] — the persistence tier: [`DurableService`] wraps a
//!   plain or windowed service with a segmented, CRC-framed write-ahead
//!   log (whose FRAMES records are the raw wire frames) and periodic
//!   checkpoints of the full mechanism state
//!   ([`ldp_ranges::PersistableServer`]). Recovery loads the newest
//!   valid checkpoint, replays the WAL tail, and stops cleanly at the
//!   first torn record; the same exactness argument makes durability
//!   *testable by bit-identity*, and the crash-recovery differential
//!   tests enforce it at arbitrary truncation offsets.
//! * [`repl`] — WAL-shipping replication: a durable leader streams its
//!   acked WAL records over the session protocol to followers
//!   ([`FollowerService`]) that re-apply them through the same
//!   decode/absorb paths into their own logs — hot standbys promotable
//!   to leaders ([`FollowerService::promote`]) and read replicas
//!   serving queries from their own snapshots, bit-identical to the
//!   leader's at the same replication position.
//! * [`obs`] — the telemetry layer: a shared lock-free
//!   [`MetricsRegistry`] of counters, gauges, and log-bucketed latency
//!   histograms threaded through every tier above, with frozen snapshots
//!   that merge/subtract exactly like the mechanism servers and are
//!   queryable live over the socket (METRICS / verbose STATUS), plus a
//!   [`TraceRing`] of structured per-message span events for
//!   postmortems. The ops plane builds on it: a background sampler
//!   freezes snapshots into a [`TimeSeriesRing`] (METRICS_RANGE /
//!   `GET /metrics/range`), a component-health model judges registry
//!   signals into a [`HealthReport`] (HEALTH / verbose STATUS /
//!   `GET /health`), and [`NetConfig::ops_addr`] serves it all over a
//!   std-only HTTP scrape endpoint (Prometheus text on `GET /metrics`).
//!
//! ## Quick start
//!
//! ```
//! use ldp_service::{LdpService, ShardedAggregator, loadgen};
//! use ldp_ranges::{HhClient, HhConfig, HhServer, Epsilon};
//! use ldp_workloads::Dataset;
//!
//! let config = HhConfig::new(256, 4, Epsilon::from_exp(3.0)).unwrap();
//! let client = HhClient::new(config.clone()).unwrap();
//! let prototype = HhServer::new(config).unwrap();
//!
//! // 1. Clients encode; the load generator replays a population.
//! let population = Dataset::from_counts(vec![100; 256]);
//! let stream = loadgen::generate_stream(&population, 20_000, 7, |value, rng| {
//!     client.report(value, rng).unwrap()
//! });
//!
//! // 2. Shards decode + absorb in parallel, then merge exactly.
//! let mut pool = ShardedAggregator::new(&prototype, 4).unwrap();
//! pool.ingest_encoded(&stream).unwrap();
//! assert_eq!(pool.num_reports(), 20_000);
//!
//! // 3. Freeze a snapshot and serve queries from it.
//! let service = LdpService::new(&prototype, 4).unwrap();
//! let snap = ldp_service::RangeSnapshot::freeze(&pool.merged().unwrap(), 1);
//! assert!((snap.range(0, 255) - 1.0).abs() < 0.1);
//! let median = snap.quantile(0.5);
//! assert!(median < 256 && service.num_shards() == 4);
//! ```

pub mod error;
pub mod loadgen;
pub mod net;
pub mod obs;
pub mod repl;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod storage;
pub mod window;
pub mod wire;

pub use error::{ServiceError, WireError};
pub use loadgen::{generate_drifting_epochs, generate_stream, EncodedStream, ValueSampler};
pub use net::{
    Hello, LdpClient, LdpServer, NetConfig, NetError, Query, QueryOp, QueryReply, ServerStats,
};
pub use obs::{
    HealthReport, HealthState, HealthThresholds, HistoSnapshot, MetricsRange, MetricsRegistry,
    RegistrySnapshot, TimeSample, TimeSeriesRing, TraceEvent, TraceOutcome, TraceRing, TraceStage,
};
pub use repl::{FollowerService, ReplFeed};
pub use service::LdpService;
pub use shard::ShardedAggregator;
pub use snapshot::{RangeSnapshot, SnapshotSource};
pub use storage::{
    DurableConfig, DurableService, DurableStatus, FsyncPolicy, RecoveryReport, TailStatus,
};
pub use window::{EpochRing, SealedEpoch, WindowedSnapshot};
pub use wire::{decode_all, decode_epoch_frame, decode_frame, WireReport};

// Re-export the traits the whole crate is generic over, so users need
// only this crate for the service surface.
pub use ldp_ranges::{MergeableServer, PersistableServer, SubtractableServer};
