//! Property tests for the delta snapshot refresh: after an *arbitrary*
//! interleaving of submits, refreshes, and (windowed) epoch seals, the
//! published snapshot must be bit-identical to a from-scratch
//! clone-and-merge of every shard — for all six mechanisms, plain and
//! windowed. Integer sufficient statistics make shard subtract the exact
//! inverse of shard merge, which is the whole correctness argument for
//! retaining the previous refresh's accumulator and only re-merging
//! dirty shards; these tests pin that argument against every absorb
//! path the service exposes.

use proptest::prelude::*;

use ldp_freq_oracle::{Epsilon, FrequencyOracle};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer,
};
use ldp_service::obs::instruments::names;
use ldp_service::{EpochRing, LdpService, MetricsRegistry, RangeSnapshot, SnapshotSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ORACLES: [FrequencyOracle; 4] = [
    FrequencyOracle::Oue,
    FrequencyOracle::Olh,
    FrequencyOracle::Hrr,
    FrequencyOracle::Sue,
];

/// One step of a generated interleaving. Values 0..8 submit the next
/// report (biasing runs toward submit-heavy histories, where dirty and
/// clean shards coexist); 8 refreshes; 9 seals the open epoch (windowed
/// drivers only — plain drivers treat it as a refresh).
const OP_REFRESH: u32 = 8;
const OP_SEAL: u32 = 9;

fn ops_strategy() -> impl Strategy<Value = Vec<u32>> {
    collection::vec(0u32..10, 1..60)
}

/// Refreshes the service and asserts the published snapshot is
/// bit-identical to an independent from-scratch clone-and-merge of the
/// current shard state ([`LdpService::merged_state`] shares no state
/// with the retained delta accumulator).
fn assert_refresh_exact<S: SnapshotSource>(service: &LdpService<S>) {
    let oracle = service.merged_state().expect("merged state");
    let snap = service.refresh_snapshot().expect("refresh");
    let expected = RangeSnapshot::freeze(&oracle, snap.version());
    assert_eq!(snap.num_reports(), expected.num_reports());
    assert_eq!(snap.domain(), expected.domain());
    for (z, (a, b)) in snap
        .estimate()
        .frequencies()
        .iter()
        .zip(expected.estimate().frequencies())
        .enumerate()
    {
        assert!(
            a.to_bits() == b.to_bits(),
            "delta refresh diverged from clone-and-merge at item {z}: {a} vs {b}"
        );
    }
}

/// Drives a *plain* service through the interleaving. A seal op on a
/// plain service degrades to a refresh, so the same generated histories
/// exercise both drivers.
fn run_plain<S: SnapshotSource>(prototype: &S, reports: &[S::Report], ops: &[u32], shards: usize) {
    let service = LdpService::new(prototype, shards).expect("service");
    let mut next = 0usize;
    for &op in ops {
        if op >= OP_REFRESH {
            assert_refresh_exact(&service);
        } else {
            service
                .submit(&reports[next % reports.len()])
                .expect("submit");
            next += 1;
        }
    }
    // Two final refreshes: the second observes zero dirty shards, so the
    // all-shards-reused delta path is exercised on every run.
    assert_refresh_exact(&service);
    assert_refresh_exact(&service);
}

/// Drives a *windowed* service: seals restructure every shard ring and
/// must invalidate the retained accumulator, never corrupt it.
fn run_windowed<S: SnapshotSource + ldp_ranges::SubtractableServer>(
    prototype: &S,
    reports: &[S::Report],
    ops: &[u32],
    shards: usize,
) where
    EpochRing<S>: SnapshotSource + ldp_ranges::MergeableServer<Report = S::Report>,
{
    let service = LdpService::<EpochRing<S>>::windowed(prototype, shards, 3).expect("service");
    let mut next = 0usize;
    for &op in ops {
        match op {
            OP_SEAL => {
                service.seal_epoch().expect("seal");
            }
            OP_REFRESH => assert_refresh_exact(&service),
            _ => {
                service
                    .submit(&reports[next % reports.len()])
                    .expect("submit");
                next += 1;
            }
        }
    }
    assert_refresh_exact(&service);
    assert_refresh_exact(&service);
}

proptest! {

    #[test]
    fn flat_delta_refresh_is_exact(
        seed in 0u64..5_000,
        ops in ops_strategy(),
        shards in 1usize..5,
        oracle_idx in 0usize..4,
    ) {
        let config = FlatConfig::with_oracle(32, Epsilon::new(1.1), ORACLES[oracle_idx]).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..48).map(|i| client.report(i % 32, &mut rng).unwrap()).collect();
        let prototype = FlatServer::new(&config).unwrap();
        run_plain(&prototype, &reports, &ops, shards);
        run_windowed(&prototype, &reports, &ops, shards);
    }

    #[test]
    fn hh_delta_refresh_is_exact(
        seed in 0u64..5_000,
        ops in ops_strategy(),
        shards in 1usize..5,
        oracle_idx in 0usize..4,
    ) {
        let config = HhConfig::with_oracle(64, 4, Epsilon::new(0.9), ORACLES[oracle_idx]).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..48).map(|i| client.report((i * 7) % 64, &mut rng).unwrap()).collect();
        let prototype = HhServer::new(config).unwrap();
        run_plain(&prototype, &reports, &ops, shards);
        run_windowed(&prototype, &reports, &ops, shards);
    }

    #[test]
    fn hh_split_delta_refresh_is_exact(
        seed in 0u64..5_000,
        ops in ops_strategy(),
        shards in 1usize..5,
    ) {
        let config = HhConfig::new(64, 2, Epsilon::new(1.4)).unwrap();
        let client = HhSplitClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..48).map(|i| client.report((i * 5) % 64, &mut rng).unwrap()).collect();
        let prototype = HhSplitServer::new(config).unwrap();
        run_plain(&prototype, &reports, &ops, shards);
        run_windowed(&prototype, &reports, &ops, shards);
    }

    #[test]
    fn haar_hrr_delta_refresh_is_exact(
        seed in 0u64..5_000,
        ops in ops_strategy(),
        shards in 1usize..5,
    ) {
        let config = HaarConfig::new(128, Epsilon::new(1.1)).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..48).map(|i| client.report((i * 11) % 128, &mut rng).unwrap()).collect();
        let prototype = HaarHrrServer::new(config).unwrap();
        run_plain(&prototype, &reports, &ops, shards);
        run_windowed(&prototype, &reports, &ops, shards);
    }

    #[test]
    fn haar_oue_delta_refresh_is_exact(
        seed in 0u64..5_000,
        ops in ops_strategy(),
        shards in 1usize..5,
    ) {
        let config = HaarConfig::new(64, Epsilon::new(0.8)).unwrap();
        let client = HaarOueClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..48).map(|i| client.report((i * 3) % 64, &mut rng).unwrap()).collect();
        let prototype = HaarOueServer::new(config).unwrap();
        run_plain(&prototype, &reports, &ops, shards);
        run_windowed(&prototype, &reports, &ops, shards);
    }

    #[test]
    fn hh2d_delta_refresh_is_exact(
        seed in 0u64..5_000,
        ops in ops_strategy(),
        shards in 1usize..5,
    ) {
        let config = Hh2dConfig::new(16, 2, Epsilon::new(1.1)).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = (0..48)
            .map(|i| client.report(i % 16, (i * 3) % 16, &mut rng).unwrap())
            .collect();
        let prototype = Hh2dServer::new(config).unwrap();
        run_plain(&prototype, &reports, &ops, shards);
        run_windowed(&prototype, &reports, &ops, shards);
    }
}

/// The runtime kill switch: with delta refresh off every refresh is a
/// full rebuild (and stays exact); re-enabling resumes the delta path
/// without ever delta-ing against the stale retained clones. Counters
/// `service.refreshes_delta` / `service.refreshes_full` partition the
/// refresh count between the two paths.
#[test]
fn kill_switch_forces_full_rebuilds_and_reenables_cleanly() {
    let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();
    let service = LdpService::new(&prototype, 4).unwrap();
    let registry = MetricsRegistry::new();
    assert!(service.attach_metrics(&registry));
    let delta = registry.counter(names::SERVICE_REFRESHES_DELTA);
    let full = registry.counter(names::SERVICE_REFRESHES_FULL);

    let mut rng = StdRng::seed_from_u64(99);
    let mut submit_some = |n: usize| {
        for i in 0..n {
            let r = client.report((i * 13) % 64, &mut rng).unwrap();
            service.submit(&r).unwrap();
        }
    };

    // First refresh is always a full rebuild; the second can delta.
    submit_some(20);
    assert_refresh_exact(&service);
    submit_some(7);
    assert_refresh_exact(&service);
    assert_eq!((full.get(), delta.get()), (1, 1));

    // Switch off: every refresh is a full rebuild, still exact.
    service.set_delta_refresh(false);
    assert!(!service.delta_refresh_enabled());
    submit_some(5);
    assert_refresh_exact(&service);
    assert_refresh_exact(&service);
    assert_eq!((full.get(), delta.get()), (3, 1));

    // Every off-mode rebuild re-retains fresh clones (and their dirty
    // counters), so nothing retained is ever stale: mutating while off
    // and re-enabling deltas immediately — and stays exact.
    submit_some(9);
    service.set_delta_refresh(true);
    assert!(service.delta_refresh_enabled());
    assert_refresh_exact(&service);
    assert_refresh_exact(&service);
    assert_eq!((full.get(), delta.get()), (3, 3));
}

/// An epoch seal invalidates the retained accumulator: the refresh after
/// a seal is a full rebuild (counter-visible), and subsequent refreshes
/// delta again — all bit-exact, which the windowed proptests above pin.
#[test]
fn seal_invalidates_retained_state() {
    let config = HhConfig::new(64, 2, Epsilon::from_exp(3.0)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();
    let service = LdpService::<EpochRing<HhServer>>::windowed(&prototype, 2, 3).unwrap();
    let registry = MetricsRegistry::new();
    assert!(service.attach_metrics(&registry));
    let delta = registry.counter(names::SERVICE_REFRESHES_DELTA);
    let full = registry.counter(names::SERVICE_REFRESHES_FULL);

    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..12 {
        let r = client.report(i % 64, &mut rng).unwrap();
        service.submit(&r).unwrap();
    }
    assert_refresh_exact(&service);
    assert_refresh_exact(&service);
    assert_eq!((full.get(), delta.get()), (1, 1));

    service.seal_epoch().unwrap();
    assert_refresh_exact(&service);
    assert_eq!(
        (full.get(), delta.get()),
        (2, 1),
        "refresh after seal must rebuild"
    );
    assert_refresh_exact(&service);
    assert_eq!((full.get(), delta.get()), (2, 2));
}
