//! Property tests for the durable-storage codecs, mirroring
//! `wire_roundtrip.rs` / `net_proto.rs` one layer down: WAL records and
//! checkpoint files encode → decode → re-encode to identical bytes,
//! truncation at *every* byte boundary is an error, and arbitrary byte
//! soup never panics any decoder — the totality contract the torn-tail
//! rule is built on.

use proptest::prelude::*;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer, MergeableServer, PersistableServer, StateReader};
use ldp_service::storage::checkpoint::{decode_checkpoint, encode_checkpoint, Checkpoint};
use ldp_service::storage::wal::{crc32, decode_framed, WalRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn roundtrip_record(record: &WalRecord) {
    let body = record.encode_body();
    let decoded = WalRecord::decode_body(&body).expect("decode own body");
    assert_eq!(&decoded, record);
    assert_eq!(decoded.encode_body(), body, "re-encode differs");

    let framed = record.encode_framed();
    let (decoded, used) = decode_framed(&framed).expect("decode own framing");
    assert_eq!(used, framed.len());
    assert_eq!(&decoded, record);
}

proptest! {
    #[test]
    fn wal_records_roundtrip(
        selector in 0u64..3,
        wire_v2 in 0u64..2,
        number in 0u64..u64::MAX,
        frames in proptest::collection::vec(0u64..256, 0..96),
    ) {
        let record = match selector {
            0 => {
                let frames: Vec<u8> = frames.iter().map(|&b| b as u8).collect();
                // The codec enforces count ≤ payload bytes.
                let count = (number % (frames.len() as u64 + 1)).min(frames.len() as u64);
                WalRecord::Frames {
                    wire_version: if wire_v2 == 1 { 2 } else { 1 },
                    count,
                    frames,
                }
            }
            1 => WalRecord::Seal { epoch: number },
            _ => WalRecord::Checkpoint { id: number },
        };
        roundtrip_record(&record);
    }

    /// Truncation at every boundary of a framed record is an error;
    /// flipping any body byte fails the CRC.
    #[test]
    fn framed_records_reject_truncation_and_bitflips(
        epoch in 0u64..u64::MAX,
        frames in proptest::collection::vec(0u64..256, 0..48),
        flip in 0usize..4096,
        bit in 0u32..8,
    ) {
        let frames: Vec<u8> = frames.iter().map(|&b| b as u8).collect();
        let count = frames.len() as u64;
        for record in [
            WalRecord::Frames { wire_version: 1, count, frames },
            WalRecord::Seal { epoch },
        ] {
            let framed = record.encode_framed();
            for cut in 0..framed.len() {
                prop_assert!(decode_framed(&framed[..cut]).is_err(), "prefix {cut} decoded");
            }
            let mut corrupt = framed.clone();
            let at = 8 + flip % (framed.len() - 8);
            corrupt[at] ^= 1 << bit;
            prop_assert!(decode_framed(&corrupt).is_err(), "bitflip at {at} accepted");
        }
    }

    /// Arbitrary byte soup never panics the record decoders — bare, and
    /// wrapped in a syntactically valid frame (length + matching CRC) so
    /// the body parsers get fuzzed past the CRC gate too.
    #[test]
    fn arbitrary_bytes_never_panic_wal_decoders(
        bytes in proptest::collection::vec(0u64..256, 0..128),
    ) {
        let soup: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = decode_framed(&soup);
        let _ = WalRecord::decode_body(&soup);

        if !soup.is_empty() {
            let mut framed = Vec::with_capacity(soup.len() + 8);
            framed.extend_from_slice(&(soup.len() as u32).to_le_bytes());
            framed.extend_from_slice(&crc32(&soup).to_le_bytes());
            framed.extend_from_slice(&soup);
            // CRC passes by construction; the body parser must still be
            // total.
            let _ = decode_framed(&framed);
        }
    }

    #[test]
    fn checkpoints_roundtrip_and_reject_everything_else(
        id in 0u64..u64::MAX,
        replay_from in 0u64..u64::MAX,
        state in proptest::collection::vec(0u64..256, 0..256),
    ) {
        let ckpt = Checkpoint {
            id,
            replay_from_seq: replay_from,
            state: state.iter().map(|&b| b as u8).collect(),
        };
        let bytes = encode_checkpoint(&ckpt);
        prop_assert_eq!(decode_checkpoint(&bytes).expect("decode own encoding"), ckpt);
        prop_assert_eq!(&encode_checkpoint(&decode_checkpoint(&bytes).unwrap()), &bytes);
        for cut in 0..bytes.len() {
            prop_assert!(decode_checkpoint(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_checkpoint_decoder(
        bytes in proptest::collection::vec(0u64..256, 0..160),
    ) {
        let soup: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = decode_checkpoint(&soup);
    }

    /// The server-state codec is total too: persisted state round-trips
    /// bit-identically through a prototype-built server, every
    /// truncation errors, and soup never panics `restore_state`.
    #[test]
    fn persisted_server_state_roundtrips_and_is_total(
        reports in 1usize..80,
        seed in 0u64..1_000,
        soup in proptest::collection::vec(0u64..256, 0..96),
    ) {
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let prototype = HhServer::new(config).unwrap();
        let mut server = prototype.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..reports {
            MergeableServer::absorb(&mut server, &client.report(i % 64, &mut rng).unwrap())
                .unwrap();
        }
        let mut bytes = Vec::new();
        server.persist_state(&mut bytes);
        let mut restored = prototype.clone();
        let mut r = StateReader::new(&bytes);
        restored.restore_state(&mut r).expect("restore own state");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(restored.num_reports(), server.num_reports());

        for cut in (0..bytes.len()).step_by(7) {
            let mut fresh = prototype.clone();
            prop_assert!(
                fresh.restore_state(&mut StateReader::new(&bytes[..cut])).is_err(),
                "truncated state at {cut} restored"
            );
        }
        let soup: Vec<u8> = soup.iter().map(|&b| b as u8).collect();
        let mut fresh = prototype.clone();
        let _ = fresh.restore_state(&mut StateReader::new(&soup));
    }
}
