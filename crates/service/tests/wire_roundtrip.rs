//! Fuzz-style wire-format round-trip tests: random reports of every type
//! over random configurations must encode → decode → re-encode to
//! identical bytes, and the decoded report must be semantically identical
//! (absorbing original vs decoded leaves identical server state).

use proptest::prelude::*;

use ldp_freq_oracle::{Epsilon, FrequencyOracle};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer, MergeableServer,
};
use ldp_service::{decode_frame, WireReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ORACLES: [FrequencyOracle; 4] = [
    FrequencyOracle::Oue,
    FrequencyOracle::Olh,
    FrequencyOracle::Hrr,
    FrequencyOracle::Sue,
];

/// Byte-level and semantic round trip for one report.
fn check_roundtrip<T, S>(report: &T, server: &S)
where
    T: WireReport,
    S: MergeableServer<Report = T> + Clone,
{
    let frame = report.to_frame();
    let (decoded, used) = decode_frame::<T>(&frame).expect("decode own encoding");
    assert_eq!(used, frame.len(), "frame not fully consumed");
    assert_eq!(
        decoded.to_frame(),
        frame,
        "re-encode produced different bytes"
    );

    let mut a = server.clone();
    let mut b = server.clone();
    a.absorb(report).expect("absorb original");
    b.absorb(&decoded).expect("absorb decoded");
    assert_eq!(a.num_reports(), b.num_reports());
}

proptest! {
    #[test]
    fn flat_reports_roundtrip(
        seed in 0u64..100_000,
        log_domain in 1u32..9,
        oracle_idx in 0usize..4,
        eps_v in 0.2f64..3.0,
    ) {
        let domain = 1usize << log_domain;
        let config =
            FlatConfig::with_oracle(domain, Epsilon::new(eps_v), ORACLES[oracle_idx]).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let server = FlatServer::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client.report(seed as usize % domain, &mut rng).unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn flat_reports_roundtrip_on_odd_domains(
        seed in 0u64..100_000,
        domain in 2usize..200,
        eps_v in 0.2f64..3.0,
    ) {
        // Non-power-of-two domains exercise the unary tail-bit masking
        // (OUE/SUE) and OLH; HRR requires powers of two and is covered
        // above.
        let oracle = if seed % 3 == 0 { FrequencyOracle::Olh } else { FrequencyOracle::Oue };
        let config = FlatConfig::with_oracle(domain, Epsilon::new(eps_v), oracle).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let server = FlatServer::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client.report(seed as usize % domain, &mut rng).unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn hh_reports_roundtrip(
        seed in 0u64..100_000,
        oracle_idx in 0usize..4,
        fanout_pow in 1u32..3,
    ) {
        let fanout = 1usize << fanout_pow; // 2 or 4: power-of-two for HRR
        let domain = fanout.pow(3);
        let config =
            HhConfig::with_oracle(domain, fanout, Epsilon::new(1.1), ORACLES[oracle_idx])
                .unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client.report(seed as usize % domain, &mut rng).unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn hh_split_reports_roundtrip(seed in 0u64..100_000, height in 1u32..5) {
        let domain = 1usize << height;
        let config = HhConfig::new(domain.max(2), 2, Epsilon::new(1.0)).unwrap();
        let client = HhSplitClient::new(config.clone()).unwrap();
        let server = HhSplitServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client.report(seed as usize % domain.max(2), &mut rng).unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn haar_hrr_reports_roundtrip(seed in 0u64..100_000, log_domain in 1u32..10) {
        let domain = 1usize << log_domain;
        let config = HaarConfig::new(domain, Epsilon::new(1.1)).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let server = HaarHrrServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client.report(seed as usize % domain, &mut rng).unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn haar_oue_reports_roundtrip(seed in 0u64..100_000, log_domain in 1u32..8) {
        let domain = 1usize << log_domain;
        let config = HaarConfig::new(domain, Epsilon::new(0.7)).unwrap();
        let client = HaarOueClient::new(config.clone()).unwrap();
        let server = HaarOueServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client.report(seed as usize % domain, &mut rng).unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn hh2d_reports_roundtrip(seed in 0u64..100_000, oracle_idx in 0usize..4) {
        let config =
            Hh2dConfig::with_oracle(16, 2, Epsilon::new(1.1), ORACLES[oracle_idx]).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let server = Hh2dServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = client
            .report(seed as usize % 16, (seed / 16) as usize % 16, &mut rng)
            .unwrap();
        check_roundtrip(&report, &server);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(0u64..256, 0..64),
    ) {
        // Totality fuzz: arbitrary byte soup must produce Ok or Err, never
        // a panic. (Values are folded into u8s.)
        let buf: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = decode_frame::<ldp_ranges::HhReport>(&buf);
        let _ = decode_frame::<ldp_ranges::HaarHrrReport>(&buf);
        let _ = decode_frame::<ldp_freq_oracle::AnyReport>(&buf);
        // And with a valid header grafted on, the payload parser is fuzzed.
        let mut framed = vec![b'L', b'Q', 1, 0];
        framed.extend_from_slice(&buf);
        let _ = decode_frame::<ldp_freq_oracle::AnyReport>(&framed);
    }
}
