//! Replication differential tests: a follower is a *pure function* of
//! the leader's acked record stream.
//!
//! For all six mechanisms, windowed and unwindowed: ingest through a
//! durable leader over the socket while a [`FollowerService`] streams
//! the WAL, disconnect the follower at an arbitrary acked offset,
//! ingest more, restart the follower from its own local log tail, let
//! it catch up, and promote it. The promoted service's snapshot must be
//! bit-identical to a fresh in-process service fed exactly the acked
//! traffic — and a read replica's QUERY replies over the socket must be
//! bit-identical to the leader's at the same replication position.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_freq_oracle::{AnyReport, Epsilon};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer, PersistableServer, SubtractableServer,
};
use ldp_service::net::proto::QueryResult;
use ldp_service::net::{Hello, NetConfig, WIRE_V1};
use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy};
use ldp_service::{
    EncodedStream, EpochRing, FollowerService, LdpClient, LdpServer, LdpService, RangeSnapshot,
    SnapshotSource, WireReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config() -> DurableConfig {
    DurableConfig {
        num_shards: 3,
        // Small segments so every stream exercises segment rotation.
        segment_bytes: 4 << 10,
        fsync: FsyncPolicy::Always,
        checkpoint_every_records: 0,
        retain_history: false,
        ..DurableConfig::default()
    }
}

fn assert_snapshots_identical(a: &RangeSnapshot, b: &RangeSnapshot, what: &str) {
    assert_eq!(a.num_reports(), b.num_reports(), "{what}: num_reports");
    let fa = a.estimate().frequencies();
    let fb = b.estimate().frequencies();
    assert_eq!(fa.len(), fb.len(), "{what}: domain");
    for (z, (x, y)) in fa.iter().zip(fb).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: estimates differ at item {z}: {x} vs {y}"
        );
    }
}

/// Polls the follower until it reaches `position` (every record applied
/// *and* logged locally) or the deadline passes.
fn await_position<S>(follower: &FollowerService<S>, position: u64, what: &str)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let deadline = Instant::now() + Duration::from_secs(20);
    while follower.position() < position {
        assert!(
            Instant::now() < deadline,
            "{what}: follower stuck at {} of {position} (stream error: {:?})",
            follower.position(),
            follower.last_error()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(follower.position(), position, "{what}: follower overshot");
}

/// In-process reference fed the same frames the leader acked.
fn reference_plain<S>(prototype: &S, batches: &[EncodedStream]) -> RangeSnapshot
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let service = LdpService::new(prototype, 1).unwrap();
    for batch in batches {
        let mut buf = batch.as_bytes();
        while !buf.is_empty() {
            let (_, used) = ldp_service::decode_frame::<S::Report>(buf).unwrap();
            service.submit_frame(&buf[..used]).unwrap();
            buf = &buf[used..];
        }
    }
    service.refresh_snapshot().unwrap().as_ref().clone()
}

fn reference_windowed<S>(prototype: &S, window: usize, epochs: &[EncodedStream]) -> RangeSnapshot
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let service = LdpService::<EpochRing<S>>::windowed(prototype, 1, window).unwrap();
    for stream in epochs {
        let mut buf = stream.as_bytes();
        while !buf.is_empty() {
            let (_, _, used) = ldp_service::decode_epoch_frame::<S::Report>(buf).unwrap();
            service.submit_epoch_frame(&buf[..used]).unwrap();
            buf = &buf[used..];
        }
        service.seal_epoch().unwrap();
    }
    service.refresh_snapshot().unwrap().as_ref().clone()
}

/// The unwindowed acceptance loop for one mechanism: stream `cut`
/// batches to a follower, disconnect it, stream the rest, restart the
/// follower from its local tail, catch up, check replica queries, and
/// promote — the promoted state must equal the reference bit for bit.
fn check_plain_replication<S>(prototype: &S, batches: &[EncodedStream], cut: usize, tag: &str)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    assert!(cut > 0 && cut < batches.len(), "cut must be interior");
    let leader_dir = scratch_dir(&format!("repl-{tag}-leader")).unwrap();
    let follower_dir = scratch_dir(&format!("repl-{tag}-follower")).unwrap();
    let (leader, _) = DurableService::open(&leader_dir, prototype, config()).unwrap();
    let leader = Arc::new(leader);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default()).unwrap();
    let addr = format!("{}", server.local_addr());

    // Phase 1: follower subscribed from the origin.
    let (follower, report) =
        FollowerService::open(&follower_dir, prototype, &addr, config()).unwrap();
    assert_eq!(report.records_replayed, 0);
    let mut session = LdpClient::connect(&addr, Hello::plain::<S::Report>()).unwrap();
    for batch in &batches[..cut] {
        let acked = session
            .send_batch(batch.len() as u64, batch.as_bytes())
            .unwrap();
        assert_eq!(acked, batch.len() as u64);
    }
    await_position(&follower, cut as u64, tag);
    drop(follower); // arbitrary disconnect offset: the cut

    // Phase 2: the leader keeps ingesting with no follower attached.
    for batch in &batches[cut..] {
        session
            .send_batch(batch.len() as u64, batch.as_bytes())
            .unwrap();
    }

    // Phase 3: restart from the local tail — recovery replays the local
    // log (cut records), and the stream resumes at exactly that position.
    let (follower, report) =
        FollowerService::open(&follower_dir, prototype, &addr, config()).unwrap();
    assert_eq!(report.records_replayed, cut as u64, "{tag}: local tail");
    await_position(&follower, batches.len() as u64, tag);

    // The read replica answers queries bit-identically to the leader at
    // the same replication position (both are quiescent here).
    let replica = LdpServer::bind_replica(
        "127.0.0.1:0",
        Arc::clone(follower.service()),
        NetConfig::default(),
    )
    .unwrap();
    let replica_addr = replica.local_addr();
    let mut replica_session =
        LdpClient::connect(replica_addr, Hello::plain::<S::Report>()).unwrap();
    let domain = replica_session.negotiated().domain;
    for (a, b) in [(0, domain - 1), (0, domain / 2), (domain / 3, domain - 1)] {
        let ours = replica_session.range(a, b).unwrap();
        let leaders = session.range(a, b).unwrap();
        let (QueryResult::Fraction(x), QueryResult::Fraction(y)) = (ours.result, leaders.result)
        else {
            panic!("{tag}: range query returned non-fraction");
        };
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{tag}: replica range [{a}, {b}] differs from leader"
        );
    }
    // A replica is read-only: REPORT is refused and absorbs nothing.
    let err = replica_session
        .send_batch(batches[0].len() as u64, batches[0].as_bytes())
        .unwrap_err();
    assert!(
        matches!(err, ldp_service::NetError::Remote(_)),
        "{tag}: replica accepted a REPORT"
    );
    let _ = replica.shutdown();
    session.bye().unwrap();

    // Phase 4: the leader dies; the promoted follower must be the
    // reference state, bit for bit.
    let _ = server.shutdown();
    drop(leader);
    let promoted = follower.promote().unwrap();
    let snap = promoted.refresh_snapshot().unwrap();
    let expected = reference_plain(prototype, batches);
    assert_snapshots_identical(&snap, &expected, &format!("{tag} promoted"));
    // The promoted service is a normal durable leader: it keeps
    // ingesting through its own (replicated) log.
    let more = promoted
        .ingest_batch(WIRE_V1, batches[0].len() as u64, batches[0].as_bytes())
        .unwrap();
    assert_eq!(more, batches[0].len() as u64);
    drop(promoted);
    std::fs::remove_dir_all(&leader_dir).unwrap();
    std::fs::remove_dir_all(&follower_dir).unwrap();
}

/// The windowed acceptance loop: epoch batches with interleaved seals —
/// the stream ships SEAL records and the follower's ring rotates in
/// lockstep with the leader's.
fn check_windowed_replication<S>(
    prototype: &S,
    epochs: &[EncodedStream],
    window: usize,
    cut_epoch: usize,
    tag: &str,
) where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    assert!(cut_epoch > 0 && cut_epoch < epochs.len());
    let leader_dir = scratch_dir(&format!("replw-{tag}-leader")).unwrap();
    let follower_dir = scratch_dir(&format!("replw-{tag}-follower")).unwrap();
    let (leader, _) =
        DurableService::open_windowed(&leader_dir, prototype, window, config()).unwrap();
    let leader = Arc::new(leader);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default()).unwrap();
    let addr = format!("{}", server.local_addr());

    let (follower, _) =
        FollowerService::open_windowed(&follower_dir, prototype, window, &addr, config()).unwrap();
    let mut session = LdpClient::connect(&addr, Hello::windowed::<S::Report>()).unwrap();
    // Two FRAMES records + one SEAL per epoch: position = 3 per epoch.
    let mut drive = |stream: &EncodedStream, epoch: usize| {
        let mid = stream.len() / 2;
        session
            .send_batch(mid as u64, stream.frame_span(0, mid))
            .unwrap();
        session
            .send_batch(
                (stream.len() - mid) as u64,
                stream.frame_span(mid, stream.len()),
            )
            .unwrap();
        assert_eq!(session.seal_epoch().unwrap(), epoch as u64);
    };
    for (e, stream) in epochs[..cut_epoch].iter().enumerate() {
        drive(stream, e);
    }
    await_position(&follower, 3 * cut_epoch as u64, tag);
    drop(follower); // disconnect mid-window

    for (e, stream) in epochs[cut_epoch..].iter().enumerate() {
        drive(stream, cut_epoch + e);
    }

    let (follower, report) =
        FollowerService::open_windowed(&follower_dir, prototype, window, &addr, config()).unwrap();
    // Recovery does not count checkpoint markers (there are none on a
    // follower anyway), so the replayed count is exactly the local tail.
    assert_eq!(report.records_replayed, 3 * cut_epoch as u64, "{tag}");
    await_position(&follower, 3 * epochs.len() as u64, tag);
    session.bye().unwrap();

    let _ = server.shutdown();
    drop(leader);
    let promoted = follower.promote().unwrap();
    let snap = promoted.refresh_snapshot().unwrap();
    let expected = reference_windowed(prototype, window, epochs);
    assert_snapshots_identical(&snap, &expected, &format!("{tag} promoted (live)"));
    // The trailing window agrees too — the follower's ring sealed and
    // rotated epoch by epoch, exactly as the leader's did.
    let win = promoted.window_snapshot(window).unwrap();
    let reference = LdpService::<EpochRing<S>>::windowed(prototype, 1, window).unwrap();
    for stream in epochs {
        let mut buf = stream.as_bytes();
        while !buf.is_empty() {
            let (_, _, used) = ldp_service::decode_epoch_frame::<S::Report>(buf).unwrap();
            reference.submit_epoch_frame(&buf[..used]).unwrap();
            buf = &buf[used..];
        }
        reference.seal_epoch().unwrap();
    }
    let exp_win = reference.window_snapshot(window).unwrap();
    assert_eq!(win.first_epoch(), exp_win.first_epoch(), "{tag}");
    assert_eq!(win.last_epoch(), exp_win.last_epoch(), "{tag}");
    assert_snapshots_identical(
        win.snapshot(),
        exp_win.snapshot(),
        &format!("{tag} promoted (window)"),
    );
    drop(promoted);
    std::fs::remove_dir_all(&leader_dir).unwrap();
    std::fs::remove_dir_all(&follower_dir).unwrap();
}

fn plain_batches<T: WireReport>(
    batches: usize,
    per_batch: usize,
    seed: u64,
    mut encode: impl FnMut(usize, &mut StdRng) -> T,
) -> Vec<EncodedStream> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|b| {
            let mut stream = EncodedStream::new();
            for i in 0..per_batch {
                stream.push(&encode(b * per_batch + i, &mut rng));
            }
            stream
        })
        .collect()
}

fn epoch_streams<T: WireReport>(
    epochs: usize,
    per_epoch: usize,
    seed: u64,
    mut encode: impl FnMut(usize, &mut StdRng) -> T,
) -> Vec<EncodedStream> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|e| {
            let mut stream = EncodedStream::new();
            for i in 0..per_epoch {
                stream.push_epoch(&encode(e * per_epoch + i, &mut rng), e as u64);
            }
            stream
        })
        .collect()
}

/// The acceptance-criterion sweep, unwindowed: all six mechanisms, each
/// with a different disconnect offset.
#[test]
fn replication_is_bit_identical_for_all_six_mechanisms() {
    const BATCHES: usize = 6;
    const PER_BATCH: usize = 40;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_plain_replication(
        &FlatServer::new(&flat_config).unwrap(),
        &plain_batches::<AnyReport>(BATCHES, PER_BATCH, 4001, |i, rng| {
            flat_client.report(i % 32, rng).unwrap()
        }),
        1,
        "flat",
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_plain_replication(
        &HhServer::new(hh_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 4002, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
        2,
        "hh",
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_plain_replication(
        &HhSplitServer::new(split_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 4003, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
        3,
        "hhsplit",
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_plain_replication(
        &HaarHrrServer::new(haar_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 4004, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
        4,
        "haarhrr",
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_plain_replication(
        &HaarOueServer::new(haar_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 4005, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
        5,
        "haaroue",
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_plain_replication(
        &Hh2dServer::new(config_2d.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 4006, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
        3,
        "hh2d",
    );
}

/// The acceptance-criterion sweep, windowed: all six mechanisms with
/// seals in the stream and window rotation on both sides.
#[test]
fn windowed_replication_is_bit_identical_for_all_six_mechanisms() {
    const EPOCHS: usize = 4;
    const PER_EPOCH: usize = 40;
    const WINDOW: usize = 2;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_windowed_replication(
        &FlatServer::new(&flat_config).unwrap(),
        &epoch_streams::<AnyReport>(EPOCHS, PER_EPOCH, 4101, |i, rng| {
            flat_client.report(i % 32, rng).unwrap()
        }),
        WINDOW,
        1,
        "flat",
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_windowed_replication(
        &HhServer::new(hh_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 4102, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
        WINDOW,
        2,
        "hh",
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_windowed_replication(
        &HhSplitServer::new(split_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 4103, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
        WINDOW,
        3,
        "hhsplit",
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_windowed_replication(
        &HaarHrrServer::new(haar_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 4104, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
        WINDOW,
        1,
        "haarhrr",
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_windowed_replication(
        &HaarOueServer::new(haar_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 4105, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
        WINDOW,
        2,
        "haaroue",
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_windowed_replication(
        &Hh2dServer::new(config_2d.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 4106, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
        WINDOW,
        3,
        "hh2d",
    );
}

/// A follower that was streaming while the leader checkpoints: the
/// pushed CHECKPOINT marker lands in the follower's log as a no-op
/// marker, the follower's position counts it, and a *new* subscription
/// after the prune is refused with `REPL_UNAVAILABLE`.
#[test]
fn checkpoint_markers_replicate_and_pruning_refuses_new_subscriptions() {
    let eps = Epsilon::new(1.1);
    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    let prototype = HhServer::new(hh_config).unwrap();
    let batches = plain_batches(4, 30, 4201, |i, rng| {
        hh_client.report((i * 7) % 64, rng).unwrap()
    });

    let leader_dir = scratch_dir("repl-ckpt-leader").unwrap();
    let follower_dir = scratch_dir("repl-ckpt-follower").unwrap();
    let (leader, _) = DurableService::open(&leader_dir, &prototype, config()).unwrap();
    let leader = Arc::new(leader);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default()).unwrap();
    let addr = format!("{}", server.local_addr());

    let (follower, _) = FollowerService::open(&follower_dir, &prototype, &addr, config()).unwrap();
    let mut session = LdpClient::connect(&addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    for batch in &batches[..2] {
        session
            .send_batch(batch.len() as u64, batch.as_bytes())
            .unwrap();
    }
    // Let the cursor reach the tail first, so the prune below can never
    // delete a segment the stream has not opened yet (in-flight cursors
    // past the pruned point keep streaming; lagging ones would die).
    await_position(&follower, 2, "ckpt-marker pre-prune");
    // The leader checkpoints (pruning its early segments): the marker is
    // streamed, the follower appends it without checkpointing itself.
    leader.checkpoint().unwrap();
    for batch in &batches[2..] {
        session
            .send_batch(batch.len() as u64, batch.as_bytes())
            .unwrap();
    }
    // 4 FRAMES + 1 CHECKPOINT marker.
    await_position(&follower, 5, "ckpt-marker");

    // New subscriptions from the origin are refused after the prune.
    let refused = ldp_service::ReplFeed::connect(&addr, 0);
    assert!(
        matches!(refused, Err(ldp_service::NetError::Remote(ref e))
            if matches!(e.code, ldp_service::net::proto::ErrorCode::ReplUnavailable)),
        "pruned leader admitted a new follower: {refused:?}"
    );

    session.bye().unwrap();
    let _ = server.shutdown();
    drop(leader);
    let promoted = follower.promote().unwrap();
    let snap = promoted.refresh_snapshot().unwrap();
    let expected = reference_plain(&prototype, &batches);
    assert_snapshots_identical(&snap, &expected, "ckpt-marker promoted");
    drop(promoted);
    std::fs::remove_dir_all(&leader_dir).unwrap();
    std::fs::remove_dir_all(&follower_dir).unwrap();
}
