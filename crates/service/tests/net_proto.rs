//! Property tests for the session-message codecs, mirroring
//! `wire_roundtrip.rs` one layer up: every message encodes → decodes →
//! re-encodes to identical bytes, and decoding arbitrary byte soup never
//! panics (Ok or Err, nothing else).

use proptest::prelude::*;

use ldp_service::net::proto::{
    ClientMsg, ErrorCode, Hello, HelloOk, Query, QueryOp, QueryReply, QueryResult, RemoteError,
    ReportBatch, ServerMsg,
};
use ldp_service::net::{WIRE_EPOCH, WIRE_V1};

fn roundtrip_client(msg: &ClientMsg) {
    let body = msg.encode();
    let decoded = ClientMsg::decode(&body).expect("decode own encoding");
    assert_eq!(&decoded, msg);
    assert_eq!(decoded.encode(), body, "re-encode produced different bytes");
}

fn roundtrip_server(msg: &ServerMsg) {
    let body = msg.encode();
    let decoded = ServerMsg::decode(&body).expect("decode own encoding");
    assert_eq!(&decoded, msg);
    assert_eq!(decoded.encode(), body, "re-encode produced different bytes");
}

/// Builds one of every query shape from numeric parameters.
fn query_from(selector: u64, a: u64, b: u64, phi_milli: u64, window: u64) -> Query {
    let (lo, hi) = (a.min(b), a.max(b));
    let op = match selector % 4 {
        0 => QueryOp::Range { a: lo, b: hi },
        1 => QueryOp::Prefix { b: hi },
        2 => QueryOp::Point { z: a },
        _ => QueryOp::Quantile {
            phi: (phi_milli % 1001) as f64 / 1000.0,
        },
    };
    Query {
        op,
        window: (window > 0).then_some(window),
    }
}

const CODES: [ErrorCode; 14] = [
    ErrorCode::Protocol,
    ErrorCode::UnsupportedProto,
    ErrorCode::KindMismatch,
    ErrorCode::WireVersionMismatch,
    ErrorCode::EpochModeMismatch,
    ErrorCode::BadFrame,
    ErrorCode::EpochMismatch,
    ErrorCode::BadQuery,
    ErrorCode::EmptyWindow,
    ErrorCode::BadState,
    ErrorCode::ShuttingDown,
    ErrorCode::Internal,
    ErrorCode::IdleTimeout,
    ErrorCode::ReplUnavailable,
];

proptest! {
    #[test]
    fn client_messages_roundtrip(
        kind in 0u64..6,
        wire_v2 in 0u64..2,
        windowed in 0u64..2,
        selector in 0u64..8,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        phi_milli in 0u64..5_000,
        window in 0u64..1_000,
        frames in proptest::collection::vec(0u64..256, 0..64),
    ) {
        let msg = match selector % 7 {
            0 => ClientMsg::Hello(Hello {
                kind: kind as u8,
                wire_version: if wire_v2 == 1 { WIRE_EPOCH } else { WIRE_V1 },
                windowed: windowed == 1,
            }),
            1 => {
                let frames: Vec<u8> = frames.iter().map(|&x| x as u8).collect();
                // The codec enforces count ≤ payload bytes.
                let count = (a % (frames.len() as u64 + 1)).min(frames.len() as u64);
                ClientMsg::Report(ReportBatch { count, frames })
            }
            2 => ClientMsg::Query(query_from(selector, a, b, phi_milli, window)),
            3 => ClientMsg::Seal,
            4 => ClientMsg::Replicate { start: a },
            5 => ClientMsg::ReplAck { acked: b },
            _ => ClientMsg::Bye,
        };
        roundtrip_client(&msg);
    }

    #[test]
    fn server_messages_roundtrip(
        selector in 0u64..12,
        kind in 0u64..6,
        windowed in 0u64..2,
        x in 0u64..u64::MAX,
        y in 0u64..u64::MAX,
        code_idx in 0usize..14,
        has_index in 0u64..2,
        detail_len in 0usize..64,
        body in proptest::collection::vec(0u64..256, 1..48),
    ) {
        let msg = match selector % 8 {
            0 => ServerMsg::HelloOk(HelloOk {
                kind: kind as u8,
                wire_version: if windowed == 1 { WIRE_EPOCH } else { WIRE_V1 },
                windowed: windowed == 1,
                domain: x,
            }),
            1 => ServerMsg::ReportOk { accepted: x },
            2 => ServerMsg::QueryOk(QueryReply {
                result: if selector % 2 == 0 {
                    // Any finite fraction round-trips through its bits.
                    QueryResult::Fraction((x as f64) / ((y as f64) + 1.0))
                } else {
                    QueryResult::Index(y)
                },
                version: x,
                num_reports: y,
                window: (windowed == 1).then_some((x.min(y), x.max(y))),
            }),
            3 => ServerMsg::SealOk { epoch: x },
            4 => ServerMsg::ByeOk,
            5 => ServerMsg::ReplOk {
                start: x.min(y),
                leader_records: x.max(y),
            },
            6 => ServerMsg::ReplRecord {
                position: x,
                // The codec enforces a non-empty record body.
                body: body.iter().map(|&b| b as u8).collect(),
            },
            _ => ServerMsg::Error(RemoteError::new(
                CODES[code_idx],
                (has_index == 1).then_some(x),
                "e".repeat(detail_len),
            )),
        };
        roundtrip_server(&msg);
    }

    /// Totality fuzz: arbitrary byte soup must produce Ok or Err from
    /// both decoders, never a panic — bare, and grafted behind each
    /// valid message-type byte so every payload parser gets fuzzed.
    #[test]
    fn arbitrary_bytes_never_panic_the_codecs(
        bytes in proptest::collection::vec(0u64..256, 0..96),
        type_byte in 0u64..256,
    ) {
        let soup: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = ClientMsg::decode(&soup);
        let _ = ServerMsg::decode(&soup);

        let mut framed = vec![type_byte as u8];
        framed.extend_from_slice(&soup);
        let _ = ClientMsg::decode(&framed);
        let _ = ServerMsg::decode(&framed);
    }

    /// The REPLICATE codec at every truncation split: valid stream
    /// messages cut at every byte boundary must decode to Err (never a
    /// panic, never a bogus Ok shorter than the original), and the
    /// surviving full messages round-trip — the leader's stream can die
    /// mid-envelope at any offset, and the follower's parser must treat
    /// every cut as a clean torn tail.
    #[test]
    fn replication_messages_survive_every_truncation(
        start in 0u64..u64::MAX,
        position in 0u64..u64::MAX,
        acked in 0u64..u64::MAX,
        body in proptest::collection::vec(0u64..256, 1..64),
    ) {
        let client_msgs = [
            ClientMsg::Replicate { start },
            ClientMsg::ReplAck { acked },
        ];
        for msg in &client_msgs {
            roundtrip_client(msg);
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                prop_assert!(ClientMsg::decode(&bytes[..cut]).is_err());
            }
        }
        let server_msgs = [
            ServerMsg::ReplOk { start, leader_records: start.saturating_add(position) },
            ServerMsg::ReplRecord {
                position,
                body: body.iter().map(|&b| b as u8).collect(),
            },
        ];
        for msg in &server_msgs {
            roundtrip_server(msg);
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // A REPL_REC body is delimited by the envelope, so a cut
                // inside it *is* a valid shorter record — acceptable only
                // if byte-exact self-consistent; everything else must be
                // a clean decode error.
                if let Ok(decoded) = ServerMsg::decode(&bytes[..cut]) {
                    prop_assert_eq!(decoded.encode(), &bytes[..cut]);
                    prop_assert!(matches!(decoded, ServerMsg::ReplRecord { .. }));
                }
            }
        }
    }
}
