//! Adversarial-input tests at the socket boundary: truncated length
//! prefixes, oversized declared lengths, garbage HELLOs, mid-stream
//! disconnects, and handshake mismatches all yield clean typed errors —
//! never a panic, a hang, or a partial absorb — and the server keeps
//! serving well-behaved clients afterwards. Every test ends in a graceful
//! shutdown, which joins every server thread (a leak would hang the
//! test).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HaarConfig, HaarHrrClient, HaarHrrServer, HhClient, HhConfig, HhServer};
use ldp_service::net::proto::{read_message, write_message, ClientMsg, ReportBatch, ServerMsg};
use ldp_service::net::{ErrorCode, Hello, NetConfig, Query, QueryOp, WIRE_EPOCH, WIRE_V1};
use ldp_service::{EncodedStream, LdpClient, LdpServer, LdpService, NetError, WireReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

type HhService = Arc<LdpService<HhServer>>;

fn hh_fixture() -> (HhClient, HhService, LdpServer<HhServer>) {
    let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let server =
        LdpServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();
    (client, service, server)
}

/// Reads the server's typed error reply off a raw socket.
fn read_error(stream: &mut TcpStream) -> ldp_service::net::RemoteError {
    let body = read_message(stream).expect("server answers before closing");
    match ServerMsg::decode(&body).expect("well-formed reply") {
        ServerMsg::Error(e) => e,
        other => panic!("expected an error reply, got {other:?}"),
    }
}

/// A well-behaved session still works — the liveness probe run after
/// every hostile client.
fn probe_alive(addr: std::net::SocketAddr, client: &HhClient, expect_reports: u64) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut stream = EncodedStream::new();
    for i in 0..5 {
        stream.push(&client.report(i % 64, &mut rng).unwrap());
    }
    let mut session = LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    assert_eq!(session.send_stream(&stream, 8).unwrap(), 5);
    let reply = session.range(0, 63).unwrap();
    assert_eq!(reply.num_reports, expect_reports + 5);
    session.bye().unwrap();
}

#[test]
fn hostile_bytes_yield_typed_errors_and_the_server_survives() {
    let (client, service, server) = hh_fixture();
    let addr = server.local_addr();

    // 1. Truncated length prefix: two bytes, then silence, then close.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0x10, 0x00]).unwrap();
    drop(raw);

    // 2. Oversized declared length: rejected with a typed error before
    //    any allocation, connection closed.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x01]).unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::Protocol);
    drop(raw);

    // 3. Zero-length envelope: same typed rejection.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0x00, 0x00, 0x00, 0x00]).unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::Protocol);
    drop(raw);

    // 4. Garbage HELLO: a well-framed envelope of byte soup.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_message(&mut raw, &[0x01, 0xDE, 0xAD, 0xBE, 0xEF, 0x99, 0x99]).unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::Protocol);
    drop(raw);

    // 5. An unknown message type before HELLO.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_message(&mut raw, &[0x66, 1, 2, 3]).unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::Protocol);
    drop(raw);

    // 6. REPORT before HELLO: a state error, not a decode attempt.
    let mut raw = TcpStream::connect(addr).unwrap();
    let body = ClientMsg::Report(ReportBatch {
        count: 1,
        frames: vec![0xAA; 8],
    })
    .encode();
    write_message(&mut raw, &body).unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::BadState);
    drop(raw);

    // 7. Mid-stream disconnect: a session that negotiates, starts a
    //    REPORT envelope, and vanishes. Nothing may be absorbed.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_message(
        &mut raw,
        &ClientMsg::Hello(Hello::plain::<ldp_ranges::HhReport>()).encode(),
    )
    .unwrap();
    let body = read_message(&mut raw).unwrap();
    assert!(matches!(
        ServerMsg::decode(&body).unwrap(),
        ServerMsg::HelloOk(_)
    ));
    raw.write_all(&[200, 0, 0, 0]).unwrap(); // declares 200 bytes...
    raw.write_all(&[0x11; 20]).unwrap(); // ...delivers 20, then dies
    drop(raw);

    // After every attack: zero reports absorbed, and a clean session
    // still works end to end.
    assert_eq!(service.num_reports(), 0, "hostile bytes leaked state");
    probe_alive(addr, &client, 0);

    let stats = server.shutdown();
    assert_eq!(stats.num_reports, 5);
    assert_eq!(stats.frames_absorbed, 5);
}

#[test]
fn handshake_mismatches_are_typed_errors() {
    let (_, _, server) = hh_fixture();
    let addr = server.local_addr();

    // Wrong report kind.
    let err = LdpClient::connect(addr, Hello::plain::<ldp_ranges::HaarHrrReport>()).unwrap_err();
    match err {
        NetError::Remote(e) => assert_eq!(e.code, ErrorCode::KindMismatch),
        other => panic!("expected a remote kind mismatch, got {other}"),
    }

    // Epoch-tagged wire version against an unwindowed backend.
    let err = LdpClient::connect(
        addr,
        Hello {
            kind: ldp_ranges::HhReport::KIND,
            wire_version: WIRE_EPOCH,
            windowed: false,
        },
    )
    .unwrap_err();
    match err {
        NetError::Remote(e) => assert_eq!(e.code, ErrorCode::WireVersionMismatch),
        other => panic!("expected a remote wire-version mismatch, got {other}"),
    }

    // Windowed session against an unwindowed backend.
    let err = LdpClient::connect(addr, Hello::windowed::<ldp_ranges::HhReport>()).unwrap_err();
    match err {
        NetError::Remote(e) => assert_eq!(e.code, ErrorCode::EpochModeMismatch),
        other => panic!("expected a remote epoch-mode mismatch, got {other}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.num_reports, 0);

    // And the mirror image: a plain session against a windowed backend.
    let config = HaarConfig::new(32, Epsilon::new(1.1)).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();
    let service = Arc::new(LdpService::windowed(&prototype, 2, 2).unwrap());
    let server = LdpServer::bind_windowed("127.0.0.1:0", service, NetConfig::default()).unwrap();
    let err = LdpClient::connect(
        server.local_addr(),
        Hello::plain::<ldp_ranges::HaarHrrReport>(),
    )
    .unwrap_err();
    match err {
        NetError::Remote(e) => assert_eq!(e.code, ErrorCode::EpochModeMismatch),
        other => panic!("expected a remote epoch-mode mismatch, got {other}"),
    }
    let _ = server.shutdown();
}

#[test]
fn bad_batches_reject_all_or_nothing_with_the_offending_index() {
    let (client, service, server) = hh_fixture();
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(77);

    // Five good frames, then garbage: the whole batch bounces, the error
    // names index 5, nothing is absorbed.
    let mut stream = EncodedStream::new();
    for i in 0..5 {
        stream.push(&client.report(i, &mut rng).unwrap());
    }
    stream.push_raw(&[0xDE, 0xAD, 0xBE, 0xEF]);
    let mut session = LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let err = session
        .send_batch(stream.len() as u64, stream.as_bytes())
        .unwrap_err();
    match err {
        NetError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::BadFrame);
            assert_eq!(e.index, Some(5));
        }
        other => panic!("expected a remote bad-frame error, got {other}"),
    }
    assert_eq!(service.num_reports(), 0, "rejected batch leaked reports");

    // A count lying about the payload (too many / too few frames).
    let mut one = EncodedStream::new();
    one.push(&client.report(1, &mut rng).unwrap());
    let err = session.send_batch(5, one.as_bytes()).unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::BadFrame));
    let err = session.send_batch(0, one.as_bytes()).unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::BadFrame));
    assert_eq!(service.num_reports(), 0);

    // The session survives its own rejected batches.
    assert_eq!(session.send_batch(1, one.as_bytes()).unwrap(), 1);
    session.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.num_reports, 1);
    assert_eq!(stats.frames_absorbed, 1);
    assert!(stats.frames_rejected >= 6);
}

#[test]
fn hostile_queries_and_epoch_mismatches_are_typed() {
    // Windowed backend for the full query surface.
    let config = HaarConfig::new(32, Epsilon::new(1.1)).unwrap();
    let haar_client = HaarHrrClient::new(config.clone()).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();
    let service = Arc::new(LdpService::windowed(&prototype, 2, 2).unwrap());
    let server =
        LdpServer::bind_windowed("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
            .unwrap();
    let mut session = LdpClient::connect(
        server.local_addr(),
        Hello::windowed::<ldp_ranges::HaarHrrReport>(),
    )
    .unwrap();

    // A windowed query before any seal: EmptyWindow.
    let err = session
        .query(Query {
            op: QueryOp::Point { z: 3 },
            window: Some(1),
        })
        .unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::EmptyWindow));

    // Out-of-domain bounds: BadQuery, not a panic.
    let err = session.range(0, 32).unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::BadQuery));

    // A stale epoch tag: the typed epoch mismatch, batch untouched.
    let mut rng = StdRng::seed_from_u64(88);
    let report = haar_client.report(3, &mut rng).unwrap();
    let mut stream = EncodedStream::new();
    stream.push_epoch(&report, 7);
    let err = session.send_batch(1, stream.as_bytes()).unwrap_err();
    match err {
        NetError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::EpochMismatch);
            assert_eq!(e.index, Some(0));
        }
        other => panic!("expected a remote epoch mismatch, got {other}"),
    }
    assert_eq!(service.num_reports(), 0);

    // Current-epoch traffic flows; a post-seal straggler for the sealed
    // epoch bounces the same way a direct submit would.
    let mut current = EncodedStream::new();
    current.push_epoch(&report, 0);
    assert_eq!(session.send_batch(1, current.as_bytes()).unwrap(), 1);
    assert_eq!(session.seal_epoch().unwrap(), 0);
    let err = session.send_batch(1, current.as_bytes()).unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::EpochMismatch));

    // The windowed query now answers.
    let reply = session
        .query(Query {
            op: QueryOp::Range { a: 0, b: 31 },
            window: Some(1),
        })
        .unwrap();
    assert_eq!(reply.num_reports, 1);
    assert_eq!(reply.window, Some((0, 0)));

    session.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.num_reports, 1);

    // SEAL and windowed queries against a plain backend are BadState.
    let (_, _, server) = hh_fixture();
    let mut session = LdpClient::connect(
        server.local_addr(),
        Hello {
            kind: ldp_ranges::HhReport::KIND,
            wire_version: WIRE_V1,
            windowed: false,
        },
    )
    .unwrap();
    let err = session.seal_epoch().unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::BadState));
    let err = session
        .query(Query {
            op: QueryOp::Point { z: 0 },
            window: Some(1),
        })
        .unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::BadState));
    session.bye().unwrap();
    let _ = server.shutdown();
}

/// Hostile replication clients: bogus start positions, garbage acks,
/// non-ack messages on the stream, and mid-record disconnects. The
/// leader must stay live for its report sessions throughout, the lag
/// accounting must stay clamped, and every dead stream must leave zero
/// follower state behind.
#[test]
fn hostile_followers_cannot_wedge_the_leader() {
    use std::io::Read;
    use std::time::{Duration, Instant};

    use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy};
    use ldp_service::ReplFeed;

    let names = ldp_service::obs::instruments::names::REPL_FOLLOWERS;
    let lag_name = ldp_service::obs::instruments::names::REPL_FOLLOWER_LAG_RECORDS;

    // REPLICATE against a non-durable backend: a typed refusal, and the
    // server keeps serving.
    let (client, _, plain_server) = hh_fixture();
    let err = ReplFeed::connect(plain_server.local_addr(), 0).unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::ReplUnavailable));
    probe_alive(plain_server.local_addr(), &client, 0);
    let _ = plain_server.shutdown();

    // A durable leader with four acked FRAMES records.
    let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();
    let dir = scratch_dir("repl-hostile").unwrap();
    let (leader, _) = DurableService::open(
        &dir,
        &prototype,
        DurableConfig {
            num_shards: 2,
            fsync: FsyncPolicy::Always,
            checkpoint_every_records: 0,
            ..DurableConfig::default()
        },
    )
    .unwrap();
    let leader = Arc::new(leader);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(99);
    let mut session = LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    for _ in 0..4 {
        let mut stream = EncodedStream::new();
        for i in 0..8 {
            stream.push(&client.report(i % 64, &mut rng).unwrap());
        }
        assert_eq!(session.send_batch(8, stream.as_bytes()).unwrap(), 8);
    }
    let gauge = |name: &str| server.registry().snapshot().gauge(name).unwrap_or(0);
    let await_gauge = |name: &str, want: u64, what: &str| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while gauge(name) != want {
            assert!(
                Instant::now() < deadline,
                "{what}: gauge {name} never hit {want}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    // 1. Subscribing past the log end: typed refusal, nothing registered.
    let err = ReplFeed::connect(addr, 999).unwrap_err();
    assert!(matches!(err, NetError::Remote(ref e) if e.code == ErrorCode::ReplUnavailable));
    assert_eq!(gauge(names), 0, "refused subscription leaked a follower");

    // 2. REPLICATE on an already-negotiated report session: a state
    //    error — a stream session never negotiates.
    let negotiated = LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let mut raw = negotiated.into_stream();
    write_message(&mut raw, &ClientMsg::Replicate { start: 0 }.encode()).unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::BadState);
    drop(raw);

    // 3. A subscribed follower that acks garbage: u64::MAX clamps to the
    //    log end, a replayed stale ack cannot move the gauge backwards,
    //    and a QUERY on the stream is a typed state error that ends it.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_message(&mut raw, &ClientMsg::Replicate { start: 0 }.encode()).unwrap();
    let body = read_message(&mut raw).unwrap();
    assert!(matches!(
        ServerMsg::decode(&body).unwrap(),
        ServerMsg::ReplOk {
            start: 0,
            leader_records: 4,
        }
    ));
    assert_eq!(gauge(names), 1, "subscription not registered");
    for expected in 0..4u64 {
        let body = read_message(&mut raw).unwrap();
        match ServerMsg::decode(&body).unwrap() {
            ServerMsg::ReplRecord { position, .. } => assert_eq!(position, expected),
            other => panic!("expected pushed record {expected}, got {other:?}"),
        }
    }
    write_message(&mut raw, &ClientMsg::ReplAck { acked: u64::MAX }.encode()).unwrap();
    await_gauge(lag_name, 0, "clamped ack");
    write_message(&mut raw, &ClientMsg::ReplAck { acked: 0 }.encode()).unwrap();
    write_message(
        &mut raw,
        &ClientMsg::Query(Query {
            op: QueryOp::Point { z: 0 },
            window: None,
        })
        .encode(),
    )
    .unwrap();
    let e = read_error(&mut raw);
    assert_eq!(e.code, ErrorCode::BadState);
    // The stale ack arrived before the QUERY killed the stream and must
    // not have moved the gauge backwards.
    assert_eq!(gauge(lag_name), 0, "stale ack moved the lag backwards");
    drop(raw);
    await_gauge(names, 0, "stream teardown");

    // 4. Mid-record disconnect: subscribe, swallow a few bytes of the
    //    push stream (a partial envelope), vanish without a word.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_message(&mut raw, &ClientMsg::Replicate { start: 0 }.encode()).unwrap();
    let mut partial = [0u8; 13]; // REPL_OK and then part of a pushed record
    raw.read_exact(&mut partial).unwrap();
    drop(raw);
    await_gauge(names, 0, "mid-record disconnect");
    assert_eq!(gauge(lag_name), 0, "dead stream left lag behind");

    // Throughout: the leader absorbed exactly its report traffic and
    // still serves it.
    assert_eq!(leader.num_reports(), 32, "replication leaked reports");
    let reply = session.range(0, 63).unwrap();
    assert_eq!(reply.num_reports, 32);
    let mut stream = EncodedStream::new();
    for i in 0..8 {
        stream.push(&client.report(i % 64, &mut rng).unwrap());
    }
    assert_eq!(session.send_batch(8, stream.as_bytes()).unwrap(), 8);
    session.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 40);
    drop(leader);
    std::fs::remove_dir_all(&dir).unwrap();
}
