//! Windowed streaming aggregation tests: for every mechanism, a sliding
//! window answered via ring rotation (absorb + subtract) is bit-identical
//! to recomputing the merge of the covered epochs from scratch, and the
//! epoch-extended wire path stays total under hostile input.

use proptest::prelude::*;

use ldp_freq_oracle::{AnyReport, Epsilon, FrequencyOracle};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer, SubtractableServer,
};
use ldp_service::wire::{encode_epoch_frame, MAGIC, VERSION_EPOCH};
use ldp_service::{
    decode_epoch_frame, generate_drifting_epochs, EpochRing, LdpService, ServiceError, WireError,
};
use ldp_workloads::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ORACLES: [FrequencyOracle; 4] = [
    FrequencyOracle::Oue,
    FrequencyOracle::Olh,
    FrequencyOracle::Hrr,
    FrequencyOracle::Sue,
];

/// `merge(a, b).subtract(b) ≡ a` bit-for-bit, on real report streams.
fn check_subtract_roundtrip<S, F, E>(make: F, reports: &[S::Report], split: usize, estimate: E)
where
    S: SubtractableServer,
    F: Fn() -> S,
    E: Fn(&S) -> Vec<f64>,
{
    let split = split.min(reports.len());
    let mut a = make();
    for r in &reports[..split] {
        a.absorb(r).unwrap();
    }
    let mut b = make();
    for r in &reports[split..] {
        b.absorb(r).unwrap();
    }
    let reference = estimate(&a);
    let mut merged = a.clone();
    merged.merge(&b).unwrap();
    merged.subtract(&b).unwrap();
    assert_eq!(a.num_reports(), merged.num_reports());
    for (x, y) in reference.iter().zip(&estimate(&merged)) {
        assert!(
            x.to_bits() == y.to_bits(),
            "merge-then-subtract drifted: {x} vs {y}"
        );
    }
}

/// Feeds `epochs` report batches through an [`EpochRing`] with the given
/// window length (forcing rotation whenever `epochs.len() > window`) and
/// asserts every trailing window answers bit-identically to a fresh
/// server that absorbed only the covered epochs.
fn check_ring_equals_scratch<S, F, E>(
    make: F,
    epochs: &[Vec<S::Report>],
    window: usize,
    estimate: E,
) where
    S: SubtractableServer,
    F: Fn() -> S,
    E: Fn(&S) -> Vec<f64>,
{
    let prototype = make();
    let mut ring = EpochRing::new(&prototype, window).unwrap();
    for batch in epochs {
        for r in batch {
            ring.absorb(r).unwrap();
        }
        ring.seal_epoch().unwrap();
    }
    let retained = window.min(epochs.len());
    assert_eq!(ring.epochs_retained(), retained);
    for k in 1..=retained {
        let ringed = ring.window_server(k).unwrap();
        let mut scratch = make();
        for batch in &epochs[epochs.len() - k..] {
            for r in batch {
                scratch.absorb(r).unwrap();
            }
        }
        assert_eq!(ringed.num_reports(), scratch.num_reports(), "k={k}");
        let a = estimate(&ringed);
        let b = estimate(&scratch);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.to_bits() == y.to_bits(),
                "k={k}: ring-rotated window differs from scratch merge: {x} vs {y}"
            );
        }
    }
}

fn batches<R, F>(epochs: usize, per_epoch: usize, seed: u64, mut report: F) -> Vec<Vec<R>>
where
    F: FnMut(usize, &mut StdRng) -> R,
{
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|e| {
            (0..per_epoch)
                .map(|i| report(e * per_epoch + i, &mut rng))
                .collect()
        })
        .collect()
}

/// The acceptance-criterion test: six epochs through a 4-epoch sliding
/// window — so the ring has rotated (absorb + subtract) twice — compared
/// bit-for-bit against a from-scratch merge, for all six mechanisms, at
/// fixed seeds.
#[test]
fn four_epoch_window_is_bit_identical_to_scratch_for_all_six_mechanisms() {
    const EPOCHS: usize = 6;
    const WINDOW: usize = 4;
    const PER_EPOCH: usize = 150;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_ring_equals_scratch(
        || FlatServer::new(&flat_config).unwrap(),
        &batches(EPOCHS, PER_EPOCH, 1001, |i, rng| {
            flat_client.report(i % 32, rng).unwrap()
        }),
        WINDOW,
        |s: &FlatServer| s.estimate().frequencies().to_vec(),
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_ring_equals_scratch(
        || HhServer::new(hh_config.clone()).unwrap(),
        &batches(EPOCHS, PER_EPOCH, 1002, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
        WINDOW,
        |s: &HhServer| {
            s.estimate_consistent()
                .to_frequency_estimate()
                .frequencies()
                .to_vec()
        },
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_ring_equals_scratch(
        || HhSplitServer::new(split_config.clone()).unwrap(),
        &batches(EPOCHS, PER_EPOCH, 1003, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
        WINDOW,
        |s: &HhSplitServer| {
            s.estimate_consistent()
                .to_frequency_estimate()
                .frequencies()
                .to_vec()
        },
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_ring_equals_scratch(
        || HaarHrrServer::new(haar_config.clone()).unwrap(),
        &batches(EPOCHS, PER_EPOCH, 1004, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
        WINDOW,
        |s: &HaarHrrServer| s.estimate().to_frequency_estimate().frequencies().to_vec(),
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_ring_equals_scratch(
        || HaarOueServer::new(haar_config.clone()).unwrap(),
        &batches(EPOCHS, PER_EPOCH, 1005, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
        WINDOW,
        |s: &HaarOueServer| s.estimate().to_frequency_estimate().frequencies().to_vec(),
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_ring_equals_scratch(
        || Hh2dServer::new(config_2d.clone()).unwrap(),
        &batches(EPOCHS, PER_EPOCH, 1006, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
        WINDOW,
        |s: &Hh2dServer| {
            let est = s.estimate();
            [(0, 15, 0, 15), (0, 7, 8, 15), (3, 12, 2, 9), (5, 5, 5, 5)]
                .iter()
                .map(|&(a, b, c, d)| est.rectangle(a, b, c, d))
                .collect()
        },
    );
}

proptest! {
    /// Subtract inverts merge exactly for the flat mechanism over every
    /// oracle (randomized seed, split point, and oracle kind).
    #[test]
    fn flat_subtract_is_exact_for_every_oracle(
        seed in 0u64..5_000,
        n in 2usize..150,
        split in 1usize..150,
        oracle_idx in 0usize..4,
    ) {
        let config = FlatConfig::with_oracle(32, Epsilon::new(1.1), ORACLES[oracle_idx]).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report(i % 32, &mut rng).unwrap()).collect();
        check_subtract_roundtrip(
            || FlatServer::new(&config).unwrap(),
            &reports,
            split % n,
            |s: &FlatServer| s.estimate().frequencies().to_vec(),
        );
    }

    /// Subtract inverts merge for the hierarchical mechanism over every
    /// oracle.
    #[test]
    fn hh_subtract_is_exact(
        seed in 0u64..5_000,
        n in 2usize..150,
        split in 1usize..150,
        oracle_idx in 0usize..4,
    ) {
        let config = HhConfig::with_oracle(64, 4, Epsilon::new(0.9), ORACLES[oracle_idx]).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 7) % 64, &mut rng).unwrap()).collect();
        check_subtract_roundtrip(
            || HhServer::new(config.clone()).unwrap(),
            &reports,
            split % n,
            |s: &HhServer| {
                s.estimate_consistent().to_frequency_estimate().frequencies().to_vec()
            },
        );
    }

    /// Subtract inverts merge for the budget-split, Haar, and 2-D
    /// mechanisms.
    #[test]
    fn remaining_mechanisms_subtract_is_exact(
        seed in 0u64..5_000,
        n in 2usize..100,
        split in 1usize..100,
    ) {
        let eps = Epsilon::new(1.2);
        let mut rng = StdRng::seed_from_u64(seed);

        let config = HhConfig::new(32, 2, eps).unwrap();
        let client = HhSplitClient::new(config.clone()).unwrap();
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 5) % 32, &mut rng).unwrap()).collect();
        check_subtract_roundtrip(
            || HhSplitServer::new(config.clone()).unwrap(),
            &reports,
            split % n,
            |s: &HhSplitServer| {
                s.estimate_consistent().to_frequency_estimate().frequencies().to_vec()
            },
        );

        let haar = HaarConfig::new(64, eps).unwrap();
        let client = HaarHrrClient::new(haar.clone()).unwrap();
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 11) % 64, &mut rng).unwrap()).collect();
        check_subtract_roundtrip(
            || HaarHrrServer::new(haar.clone()).unwrap(),
            &reports,
            split % n,
            |s: &HaarHrrServer| s.estimate().to_frequency_estimate().frequencies().to_vec(),
        );

        let client = HaarOueClient::new(haar.clone()).unwrap();
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 3) % 64, &mut rng).unwrap()).collect();
        check_subtract_roundtrip(
            || HaarOueServer::new(haar.clone()).unwrap(),
            &reports,
            split % n,
            |s: &HaarOueServer| s.estimate().to_frequency_estimate().frequencies().to_vec(),
        );

        let config = Hh2dConfig::new(16, 2, eps).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let reports: Vec<_> = (0..n)
            .map(|i| client.report(i % 16, (i * 3) % 16, &mut rng).unwrap())
            .collect();
        check_subtract_roundtrip(
            || Hh2dServer::new(config.clone()).unwrap(),
            &reports,
            split % n,
            |s: &Hh2dServer| {
                let est = s.estimate();
                [(0, 15, 0, 15), (3, 12, 2, 9)]
                    .iter()
                    .map(|&(a, b, c, d)| est.rectangle(a, b, c, d))
                    .collect()
            },
        );
    }

    /// Any window over any epoch/window geometry equals the from-scratch
    /// merge (randomized epoch count, window length, and epoch sizes).
    #[test]
    fn window_of_k_epochs_equals_scratch_merge(
        seed in 0u64..5_000,
        epochs in 1usize..7,
        window in 1usize..5,
        per_epoch in 1usize..60,
    ) {
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let epoch_batches: Vec<Vec<_>> = (0..epochs)
            .map(|e| {
                (0..per_epoch)
                    .map(|i| client.report((e * 13 + i) % 64, &mut rng).unwrap())
                    .collect()
            })
            .collect();
        check_ring_equals_scratch(
            || HhServer::new(config.clone()).unwrap(),
            &epoch_batches,
            window,
            |s: &HhServer| {
                s.estimate_consistent().to_frequency_estimate().frequencies().to_vec()
            },
        );
    }
}

/// A windowed service tracks a drifting population: the window estimate
/// follows the drift while the all-time aggregate blurs it.
#[test]
fn windowed_service_tracks_drift() {
    let domain = 64usize;
    let config = HaarConfig::new(domain, Epsilon::from_exp(3.0)).unwrap();
    let client = HaarHrrClient::new(config.clone()).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();

    // Population drifts from the low quarter to the high quarter.
    let mut low = vec![0u64; domain];
    let mut high = vec![0u64; domain];
    for z in 0..domain / 4 {
        low[z] = 1;
        high[domain - 1 - z] = 1;
    }
    let epochs = 6usize;
    let streams = generate_drifting_epochs(
        &Dataset::from_counts(low),
        &Dataset::from_counts(high),
        epochs,
        4_000,
        1100,
        |v, rng| client.report(v, rng).unwrap(),
    );
    assert_eq!(streams.len(), epochs);

    let service = LdpService::windowed(&prototype, 3, 2).unwrap();
    let mut window_medians = Vec::new();
    for (e, stream) in streams.iter().enumerate() {
        assert_eq!(service.current_epoch(), e as u64);
        for i in 0..stream.len() {
            service.submit_epoch_frame(stream.frame(i)).unwrap();
        }
        assert_eq!(service.seal_epoch().unwrap(), e as u64);
        window_medians.push(service.window_snapshot(2).unwrap().quantile(0.5));
    }

    // The 2-epoch window median marches from the low quarter to the high
    // quarter as the population drifts.
    assert!(
        *window_medians.first().unwrap() < domain / 4,
        "first window median {} not in the low quarter",
        window_medians.first().unwrap()
    );
    assert!(
        *window_medians.last().unwrap() >= 3 * domain / 4,
        "last window median {} not in the high quarter",
        window_medians.last().unwrap()
    );

    // Stale frames (sealed epochs) are rejected, not folded in.
    let mut rng = StdRng::seed_from_u64(1101);
    let stale = client.report(1, &mut rng).unwrap();
    let mut frame = Vec::new();
    encode_epoch_frame(&stale, 0, &mut frame);
    assert!(matches!(
        service.submit_epoch_frame(&frame),
        Err(ServiceError::EpochMismatch {
            frame: 0,
            current: 6
        })
    ));

    // The published refresh_snapshot covers the retained window plus the
    // open epoch — after 6 sealed epochs with window 2, that is the last
    // two epochs' reports only.
    let snap = service.refresh_snapshot().unwrap();
    assert_eq!(snap.num_reports(), 8_000);
}

/// Hostile epoch-extended headers at the service boundary: every
/// mutation is an error, never a panic or a silent accept.
#[test]
fn hostile_epoch_frames_at_the_service_boundary() {
    let config = HaarConfig::new(32, Epsilon::new(1.1)).unwrap();
    let client = HaarHrrClient::new(config.clone()).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();
    let service = LdpService::windowed(&prototype, 2, 2).unwrap();

    let mut rng = StdRng::seed_from_u64(1200);
    let report = client.report(3, &mut rng).unwrap();
    let mut frame = Vec::new();
    encode_epoch_frame(&report, 0, &mut frame);

    // Sanity: the clean frame is accepted.
    service.submit_epoch_frame(&frame).unwrap();

    // Truncations, bad magic, unknown version, wrong kind, trailing
    // bytes: all rejected without state change.
    let before = service.num_reports();
    for cut in 0..frame.len() {
        assert!(service.submit_epoch_frame(&frame[..cut]).is_err());
    }
    let mut bad_magic = frame.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        service.submit_epoch_frame(&bad_magic),
        Err(ServiceError::Wire(WireError::BadMagic(_)))
    ));
    let mut v9 = frame.clone();
    v9[2] = 9;
    assert!(matches!(
        service.submit_epoch_frame(&v9),
        Err(ServiceError::Wire(WireError::UnsupportedVersion(9)))
    ));
    let mut wrong_kind = frame.clone();
    wrong_kind[3] = 0;
    assert!(service.submit_epoch_frame(&wrong_kind).is_err());
    let mut trailing = frame.clone();
    trailing.push(0x00);
    assert!(matches!(
        service.submit_epoch_frame(&trailing),
        Err(ServiceError::Wire(WireError::Malformed(_)))
    ));
    // An epoch varint that overflows u64.
    let mut overflow = vec![MAGIC[0], MAGIC[1], VERSION_EPOCH, 3];
    overflow.extend_from_slice(&[0xFF; 10]);
    assert!(matches!(
        service.submit_epoch_frame(&overflow),
        Err(ServiceError::Wire(WireError::BadVarint))
    ));
    // A structurally valid tag for a far-future epoch is a policy error.
    let mut future = Vec::new();
    encode_epoch_frame(&report, u64::MAX, &mut future);
    assert!(matches!(
        service.submit_epoch_frame(&future),
        Err(ServiceError::EpochMismatch { .. })
    ));
    assert_eq!(service.num_reports(), before, "hostile frame leaked state");

    // A v1 (epoch-less) frame is still accepted into the open epoch.
    let (epoch, _, _) = decode_epoch_frame::<ldp_ranges::HaarHrrReport>(&frame).unwrap();
    assert_eq!(epoch, Some(0));
    let v1 = {
        use ldp_service::WireReport;
        report.to_frame()
    };
    service.submit_epoch_frame(&v1).unwrap();
}

/// Untagged (v1) flat frames flow through the windowed service too — the
/// epoch extension is opt-in per frame.
#[test]
fn v1_frames_interoperate_with_windowed_flat_service() {
    let config = FlatConfig::new(16, Epsilon::new(1.3)).unwrap();
    let client = FlatClient::new(&config).unwrap();
    let prototype = FlatServer::new(&config).unwrap();
    let service = LdpService::windowed(&prototype, 2, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(1300);
    for i in 0..200usize {
        let report: AnyReport = client.report(i % 16, &mut rng).unwrap();
        let mut frame = Vec::new();
        if i % 2 == 0 {
            encode_epoch_frame(&report, 0, &mut frame);
        } else {
            use ldp_service::WireReport;
            frame = report.to_frame();
        }
        service.submit_epoch_frame(&frame).unwrap();
    }
    service.seal_epoch().unwrap();
    let snap = service.window_snapshot(1).unwrap();
    assert_eq!(snap.num_reports(), 200);
    assert_eq!(snap.first_epoch(), 0);
    assert_eq!(snap.last_epoch(), 0);
    // The flat estimator is unbiased but not normalized; a loose check
    // suffices for this plumbing test.
    assert!((snap.range(0, 15) - 1.0).abs() < 0.75);
}
