//! The ops plane, end to end over real sockets.
//!
//! The HTTP scrape endpoint serves valid Prometheus text, health JSON
//! whose status code tracks the node verdict, and the time-series ring;
//! hostile HTTP bytes get typed status codes, never a hang or a panic.
//! The session-protocol introspection messages (METRICS, STATUS,
//! METRICS_RANGE, HEALTH) answer before any HELLO — including against a
//! follower actively catching up — and the per-message span ids
//! assigned at reactor decode reappear on the worker's Execute events
//! and the storage tier's WalAppend events, correlating one REPORT's
//! decode → absorb → fsync timeline across tiers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer};
use ldp_service::net::proto::{read_message, write_message, ClientMsg, ServerMsg};
use ldp_service::net::{Hello, NetConfig};
use ldp_service::obs::instruments::names;
use ldp_service::obs::{HealthState, TraceStage};
use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy};
use ldp_service::{
    EncodedStream, FollowerService, HealthThresholds, LdpClient, LdpServer, LdpService,
    MetricsRegistry, TraceRing,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

// --- helpers ------------------------------------------------------------

fn hh_parts() -> (HhClient, HhServer) {
    let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();
    (
        HhClient::new(config.clone()).unwrap(),
        HhServer::new(config).unwrap(),
    )
}

fn stream_of(client: &HhClient, seed: u64, frames: usize) -> EncodedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = EncodedStream::new();
    for i in 0..frames {
        stream.push(&client.report((i * 7) % 64, &mut rng).unwrap());
    }
    stream
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        num_shards: 2,
        fsync: FsyncPolicy::Always,
        checkpoint_every_records: 0,
        ..DurableConfig::default()
    }
}

/// One HTTP request over a fresh connection; the endpoint always closes
/// after the response, so read-to-EOF is the framing.
fn http_request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn assert_valid_prom_name(name: &str) {
    let mut chars = name.chars();
    let first = chars.next().unwrap_or_else(|| panic!("empty metric name"));
    assert!(
        first.is_ascii_alphabetic() || first == '_' || first == ':',
        "bad first char in metric name {name:?}"
    );
    assert!(
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad char in metric name {name:?}"
    );
}

/// A strict parse of the Prometheus text exposition format, the check
/// a scraper's parser would apply: every line is a `# TYPE` comment or
/// a `name[{labels}] value` sample, names are well-formed, values are
/// finite numbers, and every sample belongs to a family a `# TYPE` line
/// declared first.
fn assert_prometheus_text_valid(body: &str) {
    let mut families: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE line names a family");
            let kind = parts.next().expect("TYPE line names a kind");
            assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown family kind in {line:?}"
            );
            assert_valid_prom_name(name);
            families.push(name.to_string());
        } else {
            assert!(!line.starts_with('#'), "unexpected comment {line:?}");
            let (name_part, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("sample line {line:?} has no value"));
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
            assert!(value.is_finite(), "non-finite value in {line:?}");
            let base = name_part.split('{').next().unwrap();
            assert_valid_prom_name(base);
            let known = families.iter().any(|f| {
                base == f
                    || ["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|suffix| base.strip_suffix(suffix) == Some(f))
            });
            assert!(known, "sample {line:?} has no preceding # TYPE family");
            samples += 1;
        }
    }
    assert!(samples > 0, "exposition carried no samples:\n{body}");
}

// --- the HTTP endpoint --------------------------------------------------

/// The three routes answer from live telemetry over a real socket, the
/// Prometheus text parses strictly, and hostile requests get typed
/// status codes.
#[test]
fn http_endpoint_serves_scrapes_and_rejects_hostile_requests() {
    let (client, prototype) = hh_parts();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let config = NetConfig {
        ops_addr: Some("127.0.0.1:0".to_string()),
        sample_interval: Duration::from_millis(10),
        ring_capacity: 8,
        ..NetConfig::default()
    };
    let server = LdpServer::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();
    let ops = server.ops_local_addr().expect("ops endpoint configured");

    // Put some traffic through so the scrape shows non-trivial counters.
    let mut session =
        LdpClient::connect(server.local_addr(), Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let stream = stream_of(&client, 4100, 80);
    assert_eq!(session.send_stream(&stream, 20).unwrap(), 80);

    let (status, body) = http_get(ops, "/metrics");
    assert_eq!(status, 200);
    assert_prometheus_text_valid(&body);
    assert!(
        body.contains("net_frames_absorbed 80"),
        "scrape missed the absorbed frames:\n{body}"
    );

    let (status, body) = http_get(ops, "/health");
    assert_eq!(status, 200, "a healthy node scrapes 200: {body}");
    assert!(body.contains("\"verdict\": \"Healthy\""));
    assert!(body.contains("\"component\": \"net\""));

    // The sampler (10ms interval) fills the ring; wait for two samples
    // so the range carries a delta-able pair.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.timeseries().len() < 2 {
        assert!(Instant::now() < deadline, "sampler produced no samples");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) = http_get(ops, "/metrics/range");
    assert_eq!(status, 200);
    assert!(body.contains("\"interval_ms\": 10"));
    assert!(body.contains("\"samples\""));
    assert!(body.contains("\"seq\": 0"), "oldest sample missing: {body}");

    // Query strings are stripped; unknown routes 404; non-GET 405;
    // garbage 400. All typed, none hang.
    assert_eq!(http_get(ops, "/metrics?ts=123").0, 200);
    assert_eq!(http_get(ops, "/nope").0, 404);
    assert_eq!(http_request(ops, "POST /metrics HTTP/1.1\r\n\r\n").0, 405);
    assert_eq!(http_request(ops, "BLURB\r\n\r\n").0, 400);
    assert_eq!(http_request(ops, "GET /metrics SPDY/3\r\n\r\n").0, 400);

    // The endpoint measures itself: the request/error counters it
    // served with are visible in its own next scrape.
    let (_, body) = http_get(ops, "/metrics");
    assert!(body.contains("ops_http_requests"), "no self-metrics");
    assert!(body.contains("ops_ts_samples"), "no sampler metrics");

    session.bye().unwrap();
    let _ = server.shutdown();

    // Shutdown joined the listener: a fresh scrape must fail to connect.
    assert!(
        TcpStream::connect(ops).is_err(),
        "ops endpoint outlived shutdown"
    );
}

/// Injected replication lag flips the health verdict to Degraded and
/// then Unhealthy — over the session protocol and over HTTP, where
/// Unhealthy (and only Unhealthy) becomes a 503.
#[test]
fn injected_follower_lag_flips_health_over_both_surfaces() {
    let (_, prototype) = hh_parts();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let registry = Arc::new(MetricsRegistry::new());
    let config = NetConfig {
        registry: Some(Arc::clone(&registry)),
        ops_addr: Some("127.0.0.1:0".to_string()),
        health: HealthThresholds {
            follower_lag_degraded: 10,
            follower_lag_unhealthy: 1_000,
            ..HealthThresholds::default()
        },
        ..NetConfig::default()
    };
    let server = LdpServer::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();
    let ops = server.ops_local_addr().unwrap();
    let mut session =
        LdpClient::connect(server.local_addr(), Hello::plain::<ldp_ranges::HhReport>()).unwrap();

    let lag = registry.gauge(names::REPL_FOLLOWER_LAG_RECORDS);

    lag.set(0);
    let report = session.health().unwrap();
    assert_eq!(report.verdict(), HealthState::Healthy);
    assert_eq!(
        report.component("repl").unwrap().state,
        HealthState::Healthy
    );

    lag.set(50);
    let report = session.health().unwrap();
    assert_eq!(report.verdict(), HealthState::Degraded, "{report:?}");
    assert_eq!(
        report.component("repl").unwrap().state,
        HealthState::Degraded
    );
    // Degraded still scrapes 200 — the node is operable.
    let (status, body) = http_get(ops, "/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"verdict\": \"Degraded\""));

    lag.set(5_000);
    let report = session.health().unwrap();
    assert_eq!(report.verdict(), HealthState::Unhealthy);
    let (status, body) = http_get(ops, "/health");
    assert_eq!(status, 503, "Unhealthy must 503: {body}");
    assert!(body.contains("\"verdict\": \"Unhealthy\""));

    // The verbose STATUS embeds the same verdict.
    let status = session.status_full().unwrap();
    assert_eq!(
        status
            .health
            .as_ref()
            .map(ldp_service::HealthReport::verdict),
        Some(HealthState::Unhealthy)
    );
    assert!(status.metrics.is_some(), "verbose STATUS carries metrics");

    session.bye().unwrap();
    let _ = server.shutdown();
}

// --- the session-protocol surfaces --------------------------------------

/// METRICS_RANGE and HEALTH answer before any HELLO — an external
/// prober needs no negotiated report kind — and the ranged reply's
/// samples are seq-ordered at the configured interval.
#[test]
fn metrics_range_and_health_answer_pre_hello() {
    let (_, prototype) = hh_parts();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let config = NetConfig {
        sample_interval: Duration::from_millis(10),
        ring_capacity: 16,
        ..NetConfig::default()
    };
    let server = LdpServer::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.timeseries().len() < 3 {
        assert!(Instant::now() < deadline, "sampler produced no samples");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Raw socket, no HELLO.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_message(&mut stream, &ClientMsg::MetricsRange { max: 2 }.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut stream).unwrap()).unwrap();
    let ServerMsg::MetricsRangeOk(range) = reply else {
        panic!("METRICS_RANGE answered with {reply:?}");
    };
    assert_eq!(range.interval_ms, 10);
    assert_eq!(range.samples.len(), 2, "max clamps the reply");
    assert!(
        range.samples.windows(2).all(|w| w[0].seq < w[1].seq),
        "samples out of order"
    );
    // Adjacent samples of one live registry always subtract exactly.
    assert_eq!(range.deltas().len(), range.samples.len() - 1);

    write_message(&mut stream, &ClientMsg::Health.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut stream).unwrap()).unwrap();
    let ServerMsg::HealthOk(report) = reply else {
        panic!("HEALTH answered with {reply:?}");
    };
    assert!(report.component("net").is_some(), "{report:?}");
    assert_eq!(report.verdict(), HealthState::Healthy);

    // Trailing garbage on either probe is a typed protocol error (the
    // server then closes the session, so each probe gets its own).
    for probe in [&[0x0Au8, 1, 0xFF][..], &[0x0Bu8, 0xFF][..]] {
        let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
        hostile
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_message(&mut hostile, probe).unwrap();
        let reply = ServerMsg::decode(&read_message(&mut hostile).unwrap()).unwrap();
        assert!(
            matches!(reply, ServerMsg::Error(_)),
            "garbage probe answered with {reply:?}"
        );
    }

    drop(stream);
    let _ = server.shutdown();
}

/// Satellite: pre-HELLO STATUS / METRICS / HEALTH probes answer against
/// a follower's replica socket while it is actively catching up, and
/// the follower publishes its own lag gauge, which settles to zero once
/// caught up.
#[test]
fn follower_replica_answers_probes_during_catch_up() {
    let (client, prototype) = hh_parts();
    let leader_dir = scratch_dir("ops-probe-leader").unwrap();
    let follower_dir = scratch_dir("ops-probe-follower").unwrap();
    let (leader, _) = DurableService::open(&leader_dir, &prototype, durable_config()).unwrap();
    let leader = Arc::new(leader);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default()).unwrap();
    let addr = format!("{}", server.local_addr());

    // Ingest a backlog *before* the follower exists, so its catch-up
    // phase is real work (fsync-per-record on the follower side).
    let mut session = LdpClient::connect(&addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let stream = stream_of(&client, 4200, 300);
    for chunk in 0..30 {
        let span = stream.frame_span(chunk * 10, (chunk + 1) * 10);
        assert_eq!(session.send_batch(10, span).unwrap(), 10);
    }

    let (follower, _) =
        FollowerService::open(&follower_dir, &prototype, &addr, durable_config()).unwrap();
    let replica = LdpServer::bind_replica(
        "127.0.0.1:0",
        Arc::clone(follower.service()),
        NetConfig::default(),
    )
    .unwrap();

    // Probe the replica socket immediately — catch-up is (very likely)
    // still in flight; correctness does not depend on winning that
    // race, only that the probes answer either way.
    let mut probe = TcpStream::connect(replica.local_addr()).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_message(&mut probe, &ClientMsg::Status { verbose: false }.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut probe).unwrap()).unwrap();
    assert!(
        matches!(reply, ServerMsg::StatusOk(_)),
        "pre-HELLO STATUS answered with {reply:?}"
    );
    write_message(&mut probe, &ClientMsg::Metrics.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut probe).unwrap()).unwrap();
    assert!(
        matches!(reply, ServerMsg::MetricsOk(_)),
        "pre-HELLO METRICS answered with {reply:?}"
    );
    write_message(&mut probe, &ClientMsg::Health.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut probe).unwrap()).unwrap();
    let ServerMsg::HealthOk(report) = reply else {
        panic!("pre-HELLO HEALTH answered with {reply:?}");
    };
    // The replica shares the follower's registry, so the storage
    // component (and once the pump publishes lag, the repl component)
    // is visible through the replica socket.
    assert!(report.component("storage").is_some(), "{report:?}");

    // Wait for catch-up, then for the published lag gauge to settle at
    // zero (the gauge is stored just after the position, so poll it).
    let deadline = Instant::now() + Duration::from_secs(20);
    while follower.position() < 30 {
        assert!(
            Instant::now() < deadline,
            "follower stuck at {} (err: {:?})",
            follower.position(),
            follower.last_error()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let lag = loop {
        let snapshot = follower.service().registry().snapshot();
        if let Some(0) = snapshot.gauge(names::REPL_FOLLOWER_LAG_RECORDS) {
            break 0;
        }
        assert!(
            Instant::now() < deadline,
            "lag gauge never settled: {:?}",
            snapshot.gauge(names::REPL_FOLLOWER_LAG_RECORDS)
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(lag, 0);

    // Now the health report judges the repl component from the gauge.
    write_message(&mut probe, &ClientMsg::Health.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut probe).unwrap()).unwrap();
    let ServerMsg::HealthOk(report) = reply else {
        panic!("HEALTH answered with {reply:?}");
    };
    assert_eq!(
        report.component("repl").map(|c| c.state),
        Some(HealthState::Healthy),
        "{report:?}"
    );

    drop(probe);
    session.bye().unwrap();
    let _ = replica.shutdown();
    drop(follower);
    let _ = server.shutdown();
}

// --- cross-tier span tracing ---------------------------------------------

/// One REPORT's span id, assigned at reactor decode, reappears on the
/// worker's Execute event and the storage tier's WalAppend event — and
/// the trace ring came from the durable config (adoption), not from
/// `NetConfig::trace`.
#[test]
fn spans_correlate_decode_execute_and_wal_append() {
    let (client, prototype) = hh_parts();
    let dir = scratch_dir("ops-span-leader").unwrap();
    let trace = Arc::new(TraceRing::enabled_with(256));
    let config = DurableConfig {
        trace: Some(Arc::clone(&trace)),
        ..durable_config()
    };
    let (leader, _) = DurableService::open(&dir, &prototype, config).unwrap();
    // NetConfig::trace stays None: the server adopts the storage ring.
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::new(leader), NetConfig::default()).unwrap();

    let mut session =
        LdpClient::connect(server.local_addr(), Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let stream = stream_of(&client, 4300, 40);
    assert_eq!(session.send_stream(&stream, 10).unwrap(), 40);
    let _ = session.status().unwrap();
    session.bye().unwrap();
    let _ = server.shutdown();

    let events: Vec<_> = trace.events().into_iter().map(|(_, e)| e).collect();
    let report_executes: Vec<_> = events
        .iter()
        .filter(|e| e.stage == TraceStage::Execute && e.msg_type == 0x02)
        .collect();
    assert_eq!(report_executes.len(), 4, "four REPORT batches executed");
    for exec in report_executes {
        assert_ne!(exec.span, 0, "real messages get non-sentinel spans");
        assert!(
            events
                .iter()
                .any(|e| e.stage == TraceStage::Decode && e.span == exec.span),
            "span {} has no decode marker",
            exec.span
        );
        assert!(
            events
                .iter()
                .any(|e| e.stage == TraceStage::WalAppend && e.span == exec.span && e.ns > 0),
            "span {} has no WAL append event",
            exec.span
        );
    }
    // A STATUS (no storage work) must NOT leave a WalAppend event; the
    // span pipeline only stamps stages that actually ran.
    let status_span = events
        .iter()
        .find(|e| e.stage == TraceStage::Execute && e.msg_type == 0x06)
        .expect("STATUS executed")
        .span;
    assert!(
        !events
            .iter()
            .any(|e| e.stage == TraceStage::WalAppend && e.span == status_span),
        "STATUS left a WalAppend event"
    );
}

/// A follower's ReplApply events are keyed by the leader-assigned
/// record position — the one id both sides agree on — and the nested
/// WalAppend the re-framed record produces carries the same span.
#[test]
fn follower_repl_apply_spans_are_leader_record_positions() {
    let (client, prototype) = hh_parts();
    let leader_dir = scratch_dir("ops-span-repl-leader").unwrap();
    let follower_dir = scratch_dir("ops-span-repl-follower").unwrap();
    let (leader, _) = DurableService::open(&leader_dir, &prototype, durable_config()).unwrap();
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::new(leader), NetConfig::default()).unwrap();
    let addr = format!("{}", server.local_addr());

    let trace = Arc::new(TraceRing::enabled_with(256));
    let follower_config = DurableConfig {
        trace: Some(Arc::clone(&trace)),
        ..durable_config()
    };
    let (follower, _) =
        FollowerService::open(&follower_dir, &prototype, &addr, follower_config).unwrap();

    let mut session = LdpClient::connect(&addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let stream = stream_of(&client, 4400, 30);
    for chunk in 0..3 {
        let span = stream.frame_span(chunk * 10, (chunk + 1) * 10);
        assert_eq!(session.send_batch(10, span).unwrap(), 10);
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while follower.position() < 3 {
        assert!(
            Instant::now() < deadline,
            "follower stuck at {} (err: {:?})",
            follower.position(),
            follower.last_error()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    session.bye().unwrap();

    let events: Vec<_> = trace.events().into_iter().map(|(_, e)| e).collect();
    let applies: Vec<_> = events
        .iter()
        .filter(|e| e.stage == TraceStage::ReplApply)
        .collect();
    assert_eq!(applies.len(), 3, "one ReplApply per replicated record");
    let mut spans: Vec<u64> = applies.iter().map(|e| e.span).collect();
    spans.sort_unstable();
    assert_eq!(spans, vec![0, 1, 2], "spans are the record positions");
    // Each re-applied record was re-framed into the follower's own log
    // under the same span (the thread-local carries it down).
    for span in spans {
        assert!(
            events
                .iter()
                .any(|e| e.stage == TraceStage::WalAppend && e.span == span),
            "record {span} left no follower WalAppend event"
        );
    }

    drop(follower);
    let _ = server.shutdown();
}
