//! Differential loopback tests: the socket path is a *pure transport*.
//!
//! Fixed-seed report streams replayed through `LdpClient` → `LdpServer`
//! over 127.0.0.1 must leave the backend in a state bit-identical to
//! feeding the same frames through `submit_frame` in-process — for all
//! six mechanisms, windowed and unwindowed — and queries answered over
//! the socket must equal the in-process answers bit-for-bit. The
//! concurrency test additionally pins the drain contract: queries keep
//! answering (with monotone snapshot versions) while clients ingest, and
//! after a graceful shutdown `num_reports` equals the acked frame count
//! exactly.

use std::sync::Arc;

use ldp_freq_oracle::{AnyReport, Epsilon};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer, PersistableServer, SubtractableServer,
};
use ldp_service::net::{Hello, NetConfig, Query, QueryOp};
use ldp_service::{
    EncodedStream, EpochRing, LdpClient, LdpServer, LdpService, SnapshotSource, WireReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Replays `stream` through the in-process path and over a loopback
/// socket, and asserts the two backends end bit-identical.
fn check_unwindowed<S>(prototype: &S, stream: &EncodedStream)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    // In-process reference: one frame at a time through submit_frame.
    let direct = LdpService::new(prototype, 3).unwrap();
    for i in 0..stream.len() {
        direct.submit_frame(stream.frame(i)).unwrap();
    }
    let direct_snap = direct.refresh_snapshot().unwrap();

    // Socket path: same frames, batched over 127.0.0.1.
    let service = Arc::new(LdpService::new(prototype, 3).unwrap());
    let server =
        LdpServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = LdpClient::connect(addr, Hello::plain::<S::Report>()).unwrap();
    assert_eq!(
        client.negotiated().domain,
        direct_snap.domain() as u64,
        "handshake advertises the snapshot domain"
    );
    let acked = client.send_stream(stream, 37).unwrap();
    assert_eq!(acked, stream.len() as u64);

    // Queries over the socket equal in-process answers bit-for-bit.
    let domain = direct_snap.domain() as u64;
    let reply = client.range(0, domain - 1).unwrap();
    assert_eq!(
        reply.fraction().to_bits(),
        direct_snap.range(0, domain as usize - 1).to_bits()
    );
    assert_eq!(reply.num_reports, stream.len() as u64);
    let reply = client
        .query(Query {
            op: QueryOp::Prefix { b: domain / 2 },
            window: None,
        })
        .unwrap();
    assert_eq!(
        reply.fraction().to_bits(),
        direct_snap.prefix(domain as usize / 2).to_bits()
    );
    let reply = client.quantile(0.5).unwrap();
    assert_eq!(reply.index(), direct_snap.quantile(0.5) as u64);

    client.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, stream.len() as u64);
    assert_eq!(stats.frames_rejected, 0);
    assert_eq!(stats.num_reports, direct_snap.num_reports());
    let socket_freqs = stats.final_snapshot.estimate().frequencies();
    let direct_freqs = direct_snap.estimate().frequencies();
    assert_eq!(socket_freqs.len(), direct_freqs.len());
    for (z, (a, b)) in socket_freqs.iter().zip(direct_freqs).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "socket and in-process estimates differ at item {z}: {a} vs {b}"
        );
    }
}

/// Replays epoch-tagged streams through both paths of a windowed service
/// (socket seals via SEAL messages) and asserts bit-identity of every
/// trailing-window answer and of the final drained state.
fn check_windowed<S>(prototype: &S, epochs: &[EncodedStream], window: usize)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let direct = LdpService::<EpochRing<S>>::windowed(prototype, 2, window).unwrap();
    let service = Arc::new(LdpService::<EpochRing<S>>::windowed(prototype, 2, window).unwrap());
    let server =
        LdpServer::bind_windowed("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
            .unwrap();
    let mut client =
        LdpClient::connect(server.local_addr(), Hello::windowed::<S::Report>()).unwrap();

    for (e, stream) in epochs.iter().enumerate() {
        for i in 0..stream.len() {
            direct.submit_epoch_frame(stream.frame(i)).unwrap();
        }
        let acked = client.send_stream(stream, 23).unwrap();
        assert_eq!(acked, stream.len() as u64);
        assert_eq!(direct.seal_epoch().unwrap(), e as u64);
        assert_eq!(client.seal_epoch().unwrap(), e as u64);

        // Every trailing-window answer matches bit-for-bit.
        let k = window.min(e + 1) as u64;
        let direct_window = direct.window_snapshot(k as usize).unwrap();
        let domain = direct_window.snapshot().domain() as u64;
        let reply = client
            .query(Query {
                op: QueryOp::Range {
                    a: 0,
                    b: domain - 1,
                },
                window: Some(k),
            })
            .unwrap();
        assert_eq!(
            reply.fraction().to_bits(),
            direct_window.range(0, domain as usize - 1).to_bits(),
            "epoch {e}: windowed range differs"
        );
        assert_eq!(reply.num_reports, direct_window.num_reports());
        assert_eq!(
            reply.window,
            Some((direct_window.first_epoch(), direct_window.last_epoch()))
        );
        let reply = client
            .query(Query {
                op: QueryOp::Quantile { phi: 0.5 },
                window: Some(k),
            })
            .unwrap();
        assert_eq!(reply.index(), direct_window.quantile(0.5) as u64);
    }

    client.bye().unwrap();
    let stats = server.shutdown();
    // The drain seals the open (empty) epoch; mirror it on the reference.
    assert_eq!(stats.sealed_epoch, Some(epochs.len() as u64));
    direct.seal_epoch().unwrap();
    let direct_snap = direct.refresh_snapshot().unwrap();
    assert_eq!(stats.num_reports, direct_snap.num_reports());
    for (z, (a, b)) in stats
        .final_snapshot
        .estimate()
        .frequencies()
        .iter()
        .zip(direct_snap.estimate().frequencies())
        .enumerate()
    {
        assert!(
            a.to_bits() == b.to_bits(),
            "windowed socket and in-process estimates differ at item {z}: {a} vs {b}"
        );
    }
}

fn plain_stream<T: WireReport>(
    n: usize,
    seed: u64,
    mut encode: impl FnMut(usize, &mut StdRng) -> T,
) -> EncodedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = EncodedStream::new();
    for i in 0..n {
        stream.push(&encode(i, &mut rng));
    }
    stream
}

fn epoch_streams<T: WireReport>(
    epochs: usize,
    per_epoch: usize,
    seed: u64,
    mut encode: impl FnMut(usize, &mut StdRng) -> T,
) -> Vec<EncodedStream> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|e| {
            let mut stream = EncodedStream::new();
            for i in 0..per_epoch {
                stream.push_epoch(&encode(e * per_epoch + i, &mut rng), e as u64);
            }
            stream
        })
        .collect()
}

/// The acceptance-criterion test: socket-path snapshots are bit-identical
/// to in-process submission for all six mechanisms (unwindowed).
#[test]
fn socket_path_is_bit_identical_for_all_six_mechanisms() {
    const N: usize = 400;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_unwindowed(
        &FlatServer::new(&flat_config).unwrap(),
        &plain_stream::<AnyReport>(N, 2001, |i, rng| flat_client.report(i % 32, rng).unwrap()),
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_unwindowed(
        &HhServer::new(hh_config.clone()).unwrap(),
        &plain_stream(N, 2002, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_unwindowed(
        &HhSplitServer::new(split_config.clone()).unwrap(),
        &plain_stream(N, 2003, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_unwindowed(
        &HaarHrrServer::new(haar_config.clone()).unwrap(),
        &plain_stream(N, 2004, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_unwindowed(
        &HaarOueServer::new(haar_config.clone()).unwrap(),
        &plain_stream(N, 2005, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_unwindowed(
        &Hh2dServer::new(config_2d.clone()).unwrap(),
        &plain_stream(N, 2006, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
    );
}

/// The windowed differential: epoch-tagged traffic plus SEAL control over
/// the socket matches the in-process windowed service bit-for-bit, for
/// all six mechanisms.
#[test]
fn windowed_socket_path_is_bit_identical_for_all_six_mechanisms() {
    const EPOCHS: usize = 4;
    const PER_EPOCH: usize = 120;
    const WINDOW: usize = 2;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_windowed(
        &FlatServer::new(&flat_config).unwrap(),
        &epoch_streams::<AnyReport>(EPOCHS, PER_EPOCH, 2101, |i, rng| {
            flat_client.report(i % 32, rng).unwrap()
        }),
        WINDOW,
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_windowed(
        &HhServer::new(hh_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 2102, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
        WINDOW,
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_windowed(
        &HhSplitServer::new(split_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 2103, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
        WINDOW,
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_windowed(
        &HaarHrrServer::new(haar_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 2104, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
        WINDOW,
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_windowed(
        &HaarOueServer::new(haar_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 2105, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
        WINDOW,
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_windowed(
        &Hh2dServer::new(config_2d.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 2106, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
        WINDOW,
    );
}

/// Queries keep answering — with monotonically non-decreasing snapshot
/// versions and report counts — while N client threads ingest, and after
/// a graceful shutdown `num_reports` matches the acked frame count
/// exactly (the drain contract).
#[test]
fn queries_answer_during_ingest_and_shutdown_drains_exactly() {
    let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();
    let service = Arc::new(LdpService::new(&prototype, 4).unwrap());
    let server = LdpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            workers: 6,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const WRITERS: usize = 4;
    const PER_WRITER: usize = 1_500;
    let total_acked: u64 = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let client = &client;
                scope.spawn(move || {
                    let stream = plain_stream(PER_WRITER, 2200 + w as u64, |i, rng| {
                        client.report((w * 17 + i) % 64, rng).unwrap()
                    });
                    let mut session =
                        LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
                    let acked = session.send_stream(&stream, 50).unwrap();
                    session.bye().unwrap();
                    acked
                })
            })
            .collect();

        // A reader querying over its own socket session while the
        // writers run: versions and report counts never go backwards,
        // and every reply is internally consistent.
        let reader = scope.spawn(move || {
            let mut session =
                LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
            let mut last_version = 0;
            let mut last_reports = 0;
            for _ in 0..30 {
                let reply = session.range(0, 63).unwrap();
                assert!(
                    reply.version >= last_version,
                    "snapshot version went backwards: {} after {last_version}",
                    reply.version
                );
                assert!(
                    reply.num_reports >= last_reports,
                    "report count went backwards: {} after {last_reports}",
                    reply.num_reports
                );
                assert!(
                    reply.num_reports == 0 || (reply.fraction() - 1.0).abs() < 1e-9,
                    "total mass {} inconsistent",
                    reply.fraction()
                );
                last_version = reply.version;
                last_reports = reply.num_reports;
                let _ = session.quantile(0.5).unwrap();
            }
            session.bye().unwrap();
        });

        let total = writers.into_iter().map(|w| w.join().unwrap()).sum();
        reader.join().unwrap();
        total
    });

    assert_eq!(total_acked, (WRITERS * PER_WRITER) as u64);
    let stats = server.shutdown();
    assert_eq!(
        stats.num_reports, total_acked,
        "drained num_reports must equal the acked frame count exactly"
    );
    assert_eq!(stats.frames_absorbed, total_acked);
    assert_eq!(service.num_reports(), total_acked);
    assert_eq!(stats.sessions, WRITERS as u64 + 1);
}

/// More sessions than workers: the bounded queue serves them all, and
/// the drain still accounts for every acked frame.
#[test]
fn bounded_queue_serves_more_sessions_than_workers() {
    let config = HaarConfig::new(32, Epsilon::new(1.1)).unwrap();
    let client = HaarHrrClient::new(config.clone()).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let server = LdpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            workers: 2,
            queue_depth: 4,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const SESSIONS: usize = 9;
    const PER_SESSION: usize = 200;
    let total_acked: u64 = std::thread::scope(|scope| {
        (0..SESSIONS)
            .map(|s| {
                let client = &client;
                scope.spawn(move || {
                    let stream = plain_stream(PER_SESSION, 2300 + s as u64, |i, rng| {
                        client.report((s + i) % 32, rng).unwrap()
                    });
                    let mut session =
                        LdpClient::connect(addr, Hello::plain::<ldp_ranges::HaarHrrReport>())
                            .unwrap();
                    let acked = session.send_stream(&stream, 64).unwrap();
                    session.bye().unwrap();
                    acked
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });

    assert_eq!(total_acked, (SESSIONS * PER_SESSION) as u64);
    let stats = server.shutdown();
    assert_eq!(stats.num_reports, total_acked);
    assert_eq!(stats.sessions, SESSIONS as u64);
}
