//! Crash-recovery differential tests: durability is a *pure function* of
//! the logged prefix.
//!
//! For all six mechanisms, windowed and unwindowed: ingest through a
//! [`DurableService`], crash it (drop without shutdown), truncate the WAL
//! at arbitrary byte offsets — mid-header, mid-length-prefix, mid-body,
//! and on record boundaries — and recover. The recovered snapshot must be
//! bit-identical to an in-process service fed exactly the record prefix
//! that survived, and that prefix must itself be a byte prefix of what
//! was acknowledged. Separately: recovery from checkpoint + WAL tail must
//! equal a full-log replay bit for bit, a graceful shutdown must reopen
//! with zero replay, and a corrupt byte mid-log must stop replay cleanly
//! at the damaged record.

use std::path::{Path, PathBuf};

use ldp_freq_oracle::{AnyReport, Epsilon};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer, PersistableServer, SubtractableServer,
};
use ldp_service::net::{WIRE_EPOCH, WIRE_V1};
use ldp_service::storage::wal::{self, WalRecord};
use ldp_service::storage::{
    checkpoint, scratch_dir, DurableConfig, DurableService, FsyncPolicy, TailStatus,
};
use ldp_service::{
    EncodedStream, EpochRing, LdpService, RangeSnapshot, SnapshotSource, WireReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config() -> DurableConfig {
    DurableConfig {
        num_shards: 3,
        // Small segments so every run exercises rotation.
        segment_bytes: 4 << 10,
        fsync: FsyncPolicy::Always,
        checkpoint_every_records: 0,
        retain_history: false,
        ..DurableConfig::default()
    }
}

fn assert_snapshots_identical(a: &RangeSnapshot, b: &RangeSnapshot, what: &str) {
    assert_eq!(a.num_reports(), b.num_reports(), "{what}: num_reports");
    let fa = a.estimate().frequencies();
    let fb = b.estimate().frequencies();
    assert_eq!(fa.len(), fb.len(), "{what}: domain");
    for (z, (x, y)) in fa.iter().zip(fb).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: estimates differ at item {z}: {x} vs {y}"
        );
    }
}

/// Copies a storage directory, keeping only the first `keep` bytes of the
/// WAL (segments concatenated in order): whole earlier segments survive,
/// the segment containing the cut is truncated, later segments vanish.
/// Checkpoint files are copied unchanged.
fn truncated_copy(src: &Path, keep: u64, tag: &str) -> PathBuf {
    let dst = scratch_dir(tag).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        // Copy checkpoints and other metadata, but never a (stale)
        // single-writer LOCK and never the segments (handled below).
        if name.to_str().and_then(wal::parse_segment_name).is_none() && name != "LOCK" {
            std::fs::copy(entry.path(), dst.join(&name)).unwrap();
        }
    }
    let mut remaining = keep;
    for (_, path) in wal::list_segments(src).unwrap() {
        if remaining == 0 {
            break;
        }
        let bytes = std::fs::read(&path).unwrap();
        let take = (bytes.len() as u64).min(remaining) as usize;
        std::fs::write(dst.join(path.file_name().unwrap()), &bytes[..take]).unwrap();
        remaining -= take as u64;
    }
    dst
}

/// Total WAL bytes across all segments.
fn wal_len(dir: &Path) -> u64 {
    wal::list_segments(dir)
        .unwrap()
        .iter()
        .map(|(_, p)| std::fs::metadata(p).unwrap().len())
        .sum()
}

/// Independently parses the valid record prefix of a (possibly
/// truncated) WAL directory: segments in order, stopping at the first
/// bad header, bad record, or sequence gap — the torn-tail rule the
/// recovery layer must implement.
fn parse_prefix(dir: &Path) -> Vec<WalRecord> {
    let mut records = Vec::new();
    let mut expected_seq = None;
    for (seq, path) in wal::list_segments(dir).unwrap() {
        if let Some(expected) = expected_seq {
            if seq != expected {
                break;
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let Ok(header) = wal::check_segment_header(&bytes, seq) else {
            return records;
        };
        let mut pos = header as usize;
        while pos < bytes.len() {
            match wal::decode_framed(&bytes[pos..]) {
                Ok((record, used)) => {
                    records.push(record);
                    pos += used;
                }
                Err(_) => return records,
            }
        }
        expected_seq = Some(seq + 1);
    }
    records
}

/// The byte offsets to cut the log at: a coarse sweep plus the hostile
/// edges (empty log, mid-header, mid-length-prefix, mid-first-body).
fn cut_offsets(total: u64) -> Vec<u64> {
    let mut cuts = vec![
        0,
        1,
        wal::SEGMENT_HEADER_BYTES + 2,
        wal::SEGMENT_HEADER_BYTES + 11,
    ];
    let stride = (total / 19).max(1) | 1;
    let mut at = stride;
    while at < total {
        cuts.push(at);
        at += stride;
    }
    cuts.push(total);
    cuts.retain(|&c| c <= total);
    cuts
}

/// Replays a record prefix into a fresh in-process service — the
/// reference the recovered state must match bit for bit.
fn replay_reference_plain<S>(prototype: &S, records: &[WalRecord]) -> (u64, RangeSnapshot)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let service = LdpService::new(prototype, 1).unwrap();
    let mut frames = 0u64;
    for record in records {
        if let WalRecord::Frames {
            count,
            frames: bytes,
            ..
        } = record
        {
            let mut buf = &bytes[..];
            for _ in 0..*count {
                let (_, used) = ldp_service::decode_frame::<S::Report>(buf).unwrap();
                service.submit_frame(&buf[..used]).unwrap();
                buf = &buf[used..];
                frames += 1;
            }
        }
    }
    (frames, service.refresh_snapshot().unwrap().as_ref().clone())
}

fn replay_reference_windowed<S>(
    prototype: &S,
    window: usize,
    records: &[WalRecord],
) -> (u64, RangeSnapshot)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let service = LdpService::<EpochRing<S>>::windowed(prototype, 1, window).unwrap();
    let mut frames = 0u64;
    for record in records {
        match record {
            WalRecord::Frames {
                count,
                frames: bytes,
                ..
            } => {
                let mut buf = &bytes[..];
                for _ in 0..*count {
                    let (_, _, used) = ldp_service::decode_epoch_frame::<S::Report>(buf).unwrap();
                    service.submit_epoch_frame(&buf[..used]).unwrap();
                    buf = &buf[used..];
                    frames += 1;
                }
            }
            WalRecord::Seal { epoch } => {
                assert_eq!(service.seal_epoch().unwrap(), *epoch);
            }
            WalRecord::Checkpoint { .. } => {}
        }
    }
    (frames, service.refresh_snapshot().unwrap().as_ref().clone())
}

/// The concatenated FRAMES payloads of a record list — used to pin that
/// the surviving log is a byte prefix of what was acknowledged.
fn frames_bytes(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records {
        if let WalRecord::Frames { frames, .. } = record {
            out.extend_from_slice(frames);
        }
    }
    out
}

/// The unwindowed acceptance loop for one mechanism: ingest batches,
/// crash, cut the log at every offset in the sweep, recover, and compare
/// against the in-process reference fed exactly the surviving prefix.
fn check_plain_crash<S>(prototype: &S, batches: &[EncodedStream], tag: &str)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let dir = scratch_dir(&format!("rec-{tag}")).unwrap();
    let (durable, report) = DurableService::open(&dir, prototype, config()).unwrap();
    assert!(report.checkpoint_id.is_none());
    assert_eq!(report.records_replayed, 0);
    let mut acked_bytes = Vec::new();
    for batch in batches {
        let n = durable
            .ingest_batch(WIRE_V1, batch.len() as u64, batch.as_bytes())
            .unwrap();
        assert_eq!(n, batch.len() as u64);
        acked_bytes.extend_from_slice(batch.as_bytes());
    }
    let pre_crash = durable.refresh_snapshot().unwrap();
    drop(durable); // crash: no finalize, no checkpoint

    let total = wal_len(&dir);
    assert!(total > 0);
    for cut in cut_offsets(total) {
        let crashed = truncated_copy(&dir, cut, &format!("rec-{tag}-cut"));
        let records = parse_prefix(&crashed);
        // The surviving frames are a byte prefix of the acked traffic.
        let survived = frames_bytes(&records);
        assert!(
            acked_bytes.starts_with(&survived),
            "{tag} cut {cut}: surviving log is not a prefix of acked bytes"
        );
        let (expect_frames, expected) = replay_reference_plain(prototype, &records);

        let (recovered, report) = DurableService::open(&crashed, prototype, config()).unwrap();
        assert_eq!(
            report.frames_replayed, expect_frames,
            "{tag} cut {cut}: replayed frame count"
        );
        let snap = recovered.refresh_snapshot().unwrap();
        assert_snapshots_identical(&snap, &expected, &format!("{tag} cut {cut}"));
        if cut == total {
            assert_eq!(
                report.tail,
                TailStatus::Clean,
                "{tag}: full log must be clean"
            );
            assert_snapshots_identical(&snap, &pre_crash, &format!("{tag} full log"));
        }
        drop(recovered);
        std::fs::remove_dir_all(&crashed).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The windowed acceptance loop: epoch-tagged batches with interleaved
/// seals (so the log carries SEAL control records and rotation retires
/// epochs by subtraction), then the same cut-and-recover sweep, checking
/// the live estimate *and* the trailing-window estimate.
fn check_windowed_crash<S>(prototype: &S, epochs: &[EncodedStream], window: usize, tag: &str)
where
    S: SnapshotSource + SubtractableServer + PersistableServer + 'static,
    S::Report: WireReport,
{
    let dir = scratch_dir(&format!("recw-{tag}")).unwrap();
    let (durable, _) = DurableService::open_windowed(&dir, prototype, window, config()).unwrap();
    for (e, stream) in epochs.iter().enumerate() {
        // Two batches per epoch so FRAMES records straddle seals.
        let mid = stream.len() / 2;
        durable
            .ingest_batch(WIRE_EPOCH, mid as u64, stream.frame_span(0, mid))
            .unwrap();
        durable
            .ingest_batch(
                WIRE_EPOCH,
                (stream.len() - mid) as u64,
                stream.frame_span(mid, stream.len()),
            )
            .unwrap();
        assert_eq!(durable.seal_epoch().unwrap(), e as u64);
    }
    let pre_crash = durable.refresh_snapshot().unwrap();
    drop(durable); // crash

    let total = wal_len(&dir);
    for cut in cut_offsets(total) {
        let crashed = truncated_copy(&dir, cut, &format!("recw-{tag}-cut"));
        let records = parse_prefix(&crashed);
        let (expect_frames, expected) = replay_reference_windowed(prototype, window, &records);

        let (recovered, report) =
            DurableService::open_windowed(&crashed, prototype, window, config()).unwrap();
        assert_eq!(
            report.frames_replayed, expect_frames,
            "{tag} cut {cut}: replayed frame count"
        );
        let snap = recovered.refresh_snapshot().unwrap();
        assert_snapshots_identical(&snap, &expected, &format!("{tag} cut {cut} (live)"));
        // The trailing-window estimate (sealed epochs only) agrees too.
        let seals = records
            .iter()
            .filter(|r| matches!(r, WalRecord::Seal { .. }))
            .count();
        if seals > 0 {
            let win = recovered.window_snapshot(window).unwrap();
            // Rebuild the reference ring to freeze its window directly.
            let svc = LdpService::<EpochRing<S>>::windowed(prototype, 1, window).unwrap();
            for record in &records {
                match record {
                    WalRecord::Frames {
                        count,
                        frames: bytes,
                        ..
                    } => {
                        let mut buf = &bytes[..];
                        for _ in 0..*count {
                            let (_, _, used) =
                                ldp_service::decode_epoch_frame::<S::Report>(buf).unwrap();
                            svc.submit_epoch_frame(&buf[..used]).unwrap();
                            buf = &buf[used..];
                        }
                    }
                    WalRecord::Seal { .. } => {
                        svc.seal_epoch().unwrap();
                    }
                    WalRecord::Checkpoint { .. } => {}
                }
            }
            let exp_win = svc.window_snapshot(window).unwrap();
            assert_eq!(win.first_epoch(), exp_win.first_epoch(), "{tag} cut {cut}");
            assert_eq!(win.last_epoch(), exp_win.last_epoch(), "{tag} cut {cut}");
            assert_snapshots_identical(
                win.snapshot(),
                exp_win.snapshot(),
                &format!("{tag} cut {cut} (window)"),
            );
        }
        if cut == total {
            assert_snapshots_identical(&snap, &pre_crash, &format!("{tag} full log"));
        }
        drop(recovered);
        std::fs::remove_dir_all(&crashed).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

fn plain_batches<T: WireReport>(
    batches: usize,
    per_batch: usize,
    seed: u64,
    mut encode: impl FnMut(usize, &mut StdRng) -> T,
) -> Vec<EncodedStream> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|b| {
            let mut stream = EncodedStream::new();
            for i in 0..per_batch {
                stream.push(&encode(b * per_batch + i, &mut rng));
            }
            stream
        })
        .collect()
}

fn epoch_streams<T: WireReport>(
    epochs: usize,
    per_epoch: usize,
    seed: u64,
    mut encode: impl FnMut(usize, &mut StdRng) -> T,
) -> Vec<EncodedStream> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|e| {
            let mut stream = EncodedStream::new();
            for i in 0..per_epoch {
                stream.push_epoch(&encode(e * per_epoch + i, &mut rng), e as u64);
            }
            stream
        })
        .collect()
}

/// The acceptance-criterion sweep, unwindowed: all six mechanisms.
#[test]
fn crash_recovery_is_bit_identical_for_all_six_mechanisms() {
    const BATCHES: usize = 6;
    const PER_BATCH: usize = 40;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_plain_crash(
        &FlatServer::new(&flat_config).unwrap(),
        &plain_batches::<AnyReport>(BATCHES, PER_BATCH, 3001, |i, rng| {
            flat_client.report(i % 32, rng).unwrap()
        }),
        "flat",
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_plain_crash(
        &HhServer::new(hh_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 3002, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
        "hh",
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_plain_crash(
        &HhSplitServer::new(split_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 3003, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
        "hhsplit",
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_plain_crash(
        &HaarHrrServer::new(haar_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 3004, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
        "haarhrr",
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_plain_crash(
        &HaarOueServer::new(haar_config.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 3005, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
        "haaroue",
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_plain_crash(
        &Hh2dServer::new(config_2d.clone()).unwrap(),
        &plain_batches(BATCHES, PER_BATCH, 3006, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
        "hh2d",
    );
}

/// The acceptance-criterion sweep, windowed: all six mechanisms with
/// seals and window rotation in the log.
#[test]
fn windowed_crash_recovery_is_bit_identical_for_all_six_mechanisms() {
    const EPOCHS: usize = 4;
    const PER_EPOCH: usize = 40;
    const WINDOW: usize = 2;
    let eps = Epsilon::new(1.1);

    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    check_windowed_crash(
        &FlatServer::new(&flat_config).unwrap(),
        &epoch_streams::<AnyReport>(EPOCHS, PER_EPOCH, 3101, |i, rng| {
            flat_client.report(i % 32, rng).unwrap()
        }),
        WINDOW,
        "flat",
    );

    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    check_windowed_crash(
        &HhServer::new(hh_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 3102, |i, rng| {
            hh_client.report((i * 7) % 64, rng).unwrap()
        }),
        WINDOW,
        "hh",
    );

    let split_config = HhConfig::new(64, 2, eps).unwrap();
    let split_client = HhSplitClient::new(split_config.clone()).unwrap();
    check_windowed_crash(
        &HhSplitServer::new(split_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 3103, |i, rng| {
            split_client.report((i * 5) % 64, rng).unwrap()
        }),
        WINDOW,
        "hhsplit",
    );

    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    check_windowed_crash(
        &HaarHrrServer::new(haar_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 3104, |i, rng| {
            haar_client.report((i * 11) % 64, rng).unwrap()
        }),
        WINDOW,
        "haarhrr",
    );

    let haar_oue_client = HaarOueClient::new(haar_config.clone()).unwrap();
    check_windowed_crash(
        &HaarOueServer::new(haar_config.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 3105, |i, rng| {
            haar_oue_client.report((i * 3) % 64, rng).unwrap()
        }),
        WINDOW,
        "haaroue",
    );

    let config_2d = Hh2dConfig::new(16, 2, eps).unwrap();
    let client_2d = Hh2dClient::new(config_2d.clone()).unwrap();
    check_windowed_crash(
        &Hh2dServer::new(config_2d.clone()).unwrap(),
        &epoch_streams(EPOCHS, PER_EPOCH, 3106, |i, rng| {
            client_2d.report(i % 16, (i * 3) % 16, rng).unwrap()
        }),
        WINDOW,
        "hh2d",
    );
}

/// Checkpoint + tail replay ≡ full-log replay, bit for bit — plain and
/// windowed. With history retained, deleting the checkpoint files from a
/// copy forces a from-scratch replay of the same log; both recoveries
/// must land on identical states.
#[test]
fn checkpoint_plus_tail_equals_full_log_replay() {
    let eps = Epsilon::new(1.1);
    let hh_config = HhConfig::new(64, 4, eps).unwrap();
    let hh_client = HhClient::new(hh_config.clone()).unwrap();
    let prototype = HhServer::new(hh_config).unwrap();
    let batches = plain_batches(8, 50, 3201, |i, rng| {
        hh_client.report((i * 7) % 64, rng).unwrap()
    });

    let retain = DurableConfig {
        retain_history: true,
        ..config()
    };

    // Plain: checkpoint mid-stream, keep ingesting, crash.
    let dir = scratch_dir("ckpt-tail").unwrap();
    let (durable, _) = DurableService::open(&dir, &prototype, retain.clone()).unwrap();
    for (b, batch) in batches.iter().enumerate() {
        durable
            .ingest_batch(WIRE_V1, batch.len() as u64, batch.as_bytes())
            .unwrap();
        if b == 2 || b == 5 {
            durable.checkpoint().unwrap();
        }
    }
    assert_eq!(durable.status().unwrap().last_checkpoint, Some(1));
    drop(durable); // crash

    let (from_ckpt, report) = DurableService::open(&dir, &prototype, retain.clone()).unwrap();
    assert_eq!(report.checkpoint_id, Some(1));
    let tail_frames = report.frames_replayed;
    assert!(tail_frames < 400, "checkpoint did not shorten replay");
    let snap_ckpt = from_ckpt.refresh_snapshot().unwrap();
    drop(from_ckpt);

    let full = truncated_copy(&dir, wal_len(&dir), "ckpt-tail-full");
    for (_, path) in ldp_service::storage::checkpoint::list_checkpoints(&full).unwrap() {
        std::fs::remove_file(path).unwrap();
    }
    let (from_log, report) = DurableService::open(&full, &prototype, retain.clone()).unwrap();
    assert_eq!(report.checkpoint_id, None);
    assert_eq!(report.frames_replayed, 400, "full replay covers everything");
    let snap_full = from_log.refresh_snapshot().unwrap();
    drop(from_log);
    assert_snapshots_identical(&snap_ckpt, &snap_full, "checkpoint+tail vs full log");
    std::fs::remove_dir_all(&full).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    // Windowed: seals on both sides of the checkpoint, so the restored
    // ring mid-stream must keep sealing/rotating identically.
    let epochs = epoch_streams(5, 40, 3202, |i, rng| {
        hh_client.report((i * 7) % 64, rng).unwrap()
    });
    let dir = scratch_dir("ckpt-tail-win").unwrap();
    let (durable, _) = DurableService::open_windowed(&dir, &prototype, 2, retain.clone()).unwrap();
    for (e, stream) in epochs.iter().enumerate() {
        durable
            .ingest_batch(WIRE_EPOCH, stream.len() as u64, stream.as_bytes())
            .unwrap();
        durable.seal_epoch().unwrap();
        if e == 2 {
            durable.checkpoint().unwrap();
        }
    }
    drop(durable); // crash

    let (from_ckpt, report) =
        DurableService::open_windowed(&dir, &prototype, 2, retain.clone()).unwrap();
    assert_eq!(report.checkpoint_id, Some(0));
    let snap_ckpt = from_ckpt.refresh_snapshot().unwrap();
    let win_ckpt = from_ckpt.window_snapshot(2).unwrap();
    drop(from_ckpt);

    let full = truncated_copy(&dir, wal_len(&dir), "ckpt-tail-win-full");
    for (_, path) in ldp_service::storage::checkpoint::list_checkpoints(&full).unwrap() {
        std::fs::remove_file(path).unwrap();
    }
    let (from_log, report) = DurableService::open_windowed(&full, &prototype, 2, retain).unwrap();
    assert_eq!(report.checkpoint_id, None);
    let snap_full = from_log.refresh_snapshot().unwrap();
    let win_full = from_log.window_snapshot(2).unwrap();
    drop(from_log);
    assert_snapshots_identical(&snap_ckpt, &snap_full, "windowed checkpoint+tail (live)");
    assert_eq!(win_ckpt.first_epoch(), win_full.first_epoch());
    assert_eq!(win_ckpt.last_epoch(), win_full.last_epoch());
    assert_snapshots_identical(
        win_ckpt.snapshot(),
        win_full.snapshot(),
        "windowed checkpoint+tail (window)",
    );
    std::fs::remove_dir_all(&full).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Graceful shutdown checkpoints: reopening replays nothing, restores
/// the exact state, and superseded segments were truncated away.
#[test]
fn graceful_shutdown_reopens_without_replay() {
    let eps = Epsilon::new(1.1);
    let haar_config = HaarConfig::new(64, eps).unwrap();
    let haar_client = HaarHrrClient::new(haar_config.clone()).unwrap();
    let prototype = HaarHrrServer::new(haar_config).unwrap();
    let batches = plain_batches(5, 60, 3301, |i, rng| {
        haar_client.report((i * 11) % 64, rng).unwrap()
    });

    let dir = scratch_dir("graceful").unwrap();
    let (durable, _) = DurableService::open(&dir, &prototype, config()).unwrap();
    for batch in &batches {
        durable
            .ingest_batch(WIRE_V1, batch.len() as u64, batch.as_bytes())
            .unwrap();
    }
    let pre = durable.refresh_snapshot().unwrap();
    let ckpt = durable.finalize().unwrap();
    drop(durable);

    // The checkpoint superseded every earlier segment: only the empty
    // post-rotation segment remains.
    let segments = wal::list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1, "old segments not truncated");
    assert_eq!(
        std::fs::metadata(&segments[0].1).unwrap().len(),
        wal::SEGMENT_HEADER_BYTES
    );

    let (reopened, report) = DurableService::open(&dir, &prototype, config()).unwrap();
    assert_eq!(report.checkpoint_id, Some(ckpt));
    assert_eq!(
        report.records_replayed, 0,
        "graceful reopen must not replay"
    );
    assert_eq!(report.frames_replayed, 0);
    assert_eq!(report.tail, TailStatus::Clean);
    let snap = reopened.refresh_snapshot().unwrap();
    assert_snapshots_identical(&snap, &pre, "graceful reopen");

    // And the reopened service keeps ingesting durably.
    let more = plain_batches(1, 30, 3302, |i, rng| {
        haar_client.report(i % 64, rng).unwrap()
    });
    reopened
        .ingest_batch(WIRE_V1, more[0].len() as u64, more[0].as_bytes())
        .unwrap();
    assert_eq!(reopened.num_reports(), pre.num_reports() + 30);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupt byte in the *final* segment (a genuine tail shape) recovers
/// cleanly to the record prefix before it; the same corruption *mid-log*
/// — with valid acknowledged segments after it — must refuse to open for
/// writing rather than truncate acked records away. A mismatched
/// prototype (CRC-valid records the state machine rejects) is refused
/// the same way, with the directory left untouched.
#[test]
fn corruption_in_the_tail_recovers_but_mid_log_damage_refuses_destruction() {
    let eps = Epsilon::new(1.1);
    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    let prototype = FlatServer::new(&flat_config).unwrap();
    let batches = plain_batches::<AnyReport>(8, 60, 3401, |i, rng| {
        flat_client.report(i % 32, rng).unwrap()
    });

    let dir = scratch_dir("corrupt").unwrap();
    let (durable, _) = DurableService::open(&dir, &prototype, config()).unwrap();
    for batch in &batches {
        durable
            .ingest_batch(WIRE_V1, batch.len() as u64, batch.as_bytes())
            .unwrap();
    }
    drop(durable);
    let segments = wal::list_segments(&dir).unwrap();
    assert!(segments.len() >= 2, "need a multi-segment log");

    // Corruption in the LAST segment: a crash-artifact shape — recovery
    // keeps everything before the damaged record and truncates the rest.
    let tail_damaged = truncated_copy(&dir, wal_len(&dir), "corrupt-tail");
    let (last_seq, _) = *wal::list_segments(&tail_damaged).unwrap().last().unwrap();
    let last_path = wal::segment_path(&tail_damaged, last_seq);
    let mut bytes = std::fs::read(&last_path).unwrap();
    let flip_at = wal::SEGMENT_HEADER_BYTES as usize + 10;
    bytes[flip_at] ^= 0x20;
    std::fs::write(&last_path, &bytes).unwrap();
    let records = parse_prefix(&tail_damaged);
    let (expect_frames, expected) = replay_reference_plain(&prototype, &records);
    let (recovered, report) = DurableService::open(&tail_damaged, &prototype, config()).unwrap();
    assert!(
        matches!(report.tail, TailStatus::Torn { .. }),
        "corruption must surface as a torn tail"
    );
    assert_eq!(report.frames_replayed, expect_frames);
    assert!(report.frames_replayed < 480, "corruption lost nothing?");
    let snap = recovered.refresh_snapshot().unwrap();
    assert_snapshots_identical(&snap, &expected, "tail corruption");
    drop(recovered);
    std::fs::remove_dir_all(&tail_damaged).unwrap();

    // Corruption in the FIRST segment with valid segments after it:
    // truncating there would destroy acknowledged records, so the open
    // fails and the directory is left byte-identical.
    let (seq0, path0) = wal::list_segments(&dir).unwrap().remove(0);
    assert_eq!(seq0, 0);
    let mut bytes = std::fs::read(&path0).unwrap();
    let flip_at = bytes.len() / 2;
    bytes[flip_at] ^= 0x20;
    std::fs::write(&path0, &bytes).unwrap();
    let before: Vec<_> = wal::list_segments(&dir)
        .unwrap()
        .iter()
        .map(|(_, p)| std::fs::read(p).unwrap())
        .collect();
    assert!(
        DurableService::open(&dir, &prototype, config()).is_err(),
        "mid-log corruption must refuse destructive recovery"
    );
    let after: Vec<_> = wal::list_segments(&dir)
        .unwrap()
        .iter()
        .map(|(_, p)| std::fs::read(p).unwrap())
        .collect();
    assert_eq!(before, after, "refused open must not modify the log");

    // A mismatched prototype (windowed log opened as plain, here: plain
    // log whose first record the wrong mechanism rejects) is refused the
    // same way. Use an undamaged copy so the rejection is purely
    // semantic.
    std::fs::write(&path0, {
        let mut b = std::fs::read(&path0).unwrap();
        b[flip_at] ^= 0x20; // undo the flip
        b
    })
    .unwrap();
    let wrong_config = ldp_ranges::HhConfig::new(64, 4, eps).unwrap();
    let wrong_prototype = ldp_ranges::HhServer::new(wrong_config).unwrap();
    assert!(
        DurableService::open(&dir, &wrong_prototype, config()).is_err(),
        "a mismatched prototype must refuse recovery, not truncate"
    );
    // The right prototype still recovers everything afterwards.
    let (recovered, report) = DurableService::open(&dir, &prototype, config()).unwrap();
    assert_eq!(report.tail, TailStatus::Clean);
    assert_eq!(report.frames_replayed, 480);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupt *sole* checkpoint, whose covered segments pruning already
/// deleted, must refuse the open: replaying the surviving WAL tail onto
/// an empty state would silently drop every checkpointed record. With
/// history retained (the WAL still starts at segment 0) the same
/// corruption instead falls back to an exact full-log replay.
#[test]
fn corrupt_sole_checkpoint_refuses_open_unless_full_log_survives() {
    let eps = Epsilon::new(1.1);
    let flat_config = FlatConfig::new(32, eps).unwrap();
    let flat_client = FlatClient::new(&flat_config).unwrap();
    let prototype = FlatServer::new(&flat_config).unwrap();
    let batches = plain_batches::<AnyReport>(6, 40, 3501, |i, rng| {
        flat_client.report(i % 32, rng).unwrap()
    });
    let ingest = |dir: &Path, cfg: DurableConfig| {
        let (durable, _) = DurableService::open(dir, &prototype, cfg).unwrap();
        for (b, batch) in batches.iter().enumerate() {
            durable
                .ingest_batch(WIRE_V1, batch.len() as u64, batch.as_bytes())
                .unwrap();
            if b == 2 {
                durable.checkpoint().unwrap();
            }
        }
        drop(durable);
    };
    let corrupt_all_checkpoints = |dir: &Path| {
        for (_, path) in checkpoint::list_checkpoints(dir).unwrap() {
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
    };

    // Pruning on: the checkpoint superseded (deleted) the segments it
    // covers, so the corrupt file is the only copy of those records.
    let dir = scratch_dir("ckpt-corrupt-pruned").unwrap();
    ingest(&dir, config());
    assert_eq!(checkpoint::list_checkpoints(&dir).unwrap().len(), 1);
    assert!(
        wal::list_segments(&dir).unwrap()[0].0 > 0,
        "pruning should have deleted pre-checkpoint segments"
    );
    corrupt_all_checkpoints(&dir);
    assert!(
        DurableService::open(&dir, &prototype, config()).is_err(),
        "a corrupt sole checkpoint must refuse, not recover an empty state"
    );
    // Deleting the corrupt files must not sneak past the guard: the WAL
    // still starts past segment 0, so the pruned records remain lost.
    for (_, path) in checkpoint::list_checkpoints(&dir).unwrap() {
        std::fs::remove_file(path).unwrap();
    }
    assert!(
        DurableService::open(&dir, &prototype, config()).is_err(),
        "a deleted sole checkpoint must refuse just like a corrupt one"
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // History retained: the full log survives from segment 0, so the
    // same corruption degrades to a full replay that reproduces the
    // exact pre-crash state.
    let retain = DurableConfig {
        retain_history: true,
        ..config()
    };
    let dir = scratch_dir("ckpt-corrupt-retained").unwrap();
    ingest(&dir, retain.clone());
    assert_eq!(wal::list_segments(&dir).unwrap()[0].0, 0);
    let (expect_frames, expected) = replay_reference_plain(&prototype, &parse_prefix(&dir));
    corrupt_all_checkpoints(&dir);
    let (recovered, report) = DurableService::open(&dir, &prototype, retain).unwrap();
    assert_eq!(report.checkpoint_id, None, "corrupt checkpoint restored?");
    assert_eq!(report.frames_replayed, expect_frames);
    assert_eq!(report.tail, TailStatus::Clean);
    let snap = recovered.refresh_snapshot().unwrap();
    assert_snapshots_identical(&snap, &expected, "full replay past corrupt checkpoint");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
