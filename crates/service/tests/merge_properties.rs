//! Property tests for the merge semantics underpinning the sharded
//! service: for every mechanism, shard-merge is associative, commutative,
//! and bit-identical to single-threaded absorption.

use proptest::prelude::*;

use ldp_freq_oracle::{Epsilon, FrequencyOracle};
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HaarOueClient,
    HaarOueServer, Hh2dClient, Hh2dConfig, Hh2dServer, HhClient, HhConfig, HhServer, HhSplitClient,
    HhSplitServer, MergeableServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ORACLES: [FrequencyOracle; 4] = [
    FrequencyOracle::Oue,
    FrequencyOracle::Olh,
    FrequencyOracle::Hrr,
    FrequencyOracle::Sue,
];

/// Absorbs `reports` into `shards` fresh servers round-robin, merges
/// right-to-left and left-to-right (associativity + commutativity probe),
/// absorbs sequentially into one server, and asserts all three states
/// estimate identically.
fn check_merge_invariants<S, F, E>(make: F, reports: &[S::Report], shards: usize, estimate: E)
where
    S: MergeableServer,
    F: Fn() -> S,
    E: Fn(&S) -> Vec<f64>,
{
    let mut sequential = make();
    for r in reports {
        sequential.absorb(r).unwrap();
    }

    let mut pool: Vec<S> = (0..shards).map(|_| make()).collect();
    for (i, r) in reports.iter().enumerate() {
        pool[i % shards].absorb(r).unwrap();
    }

    // Left fold: ((s0 ⊕ s1) ⊕ s2) ⊕ …
    let mut left = pool[0].clone();
    for s in &pool[1..] {
        left.merge(s).unwrap();
    }
    // Reversed fold: ((s_k ⊕ s_{k-1}) ⊕ …) ⊕ s0 — different order and
    // grouping; equality with the left fold witnesses associativity +
    // commutativity on this input.
    let mut right = pool[shards - 1].clone();
    for s in pool[..shards - 1].iter().rev() {
        right.merge(s).unwrap();
    }

    let seq_e = estimate(&sequential);
    let left_e = estimate(&left);
    let right_e = estimate(&right);
    assert_eq!(sequential.num_reports(), left.num_reports());
    assert_eq!(sequential.num_reports(), right.num_reports());
    for ((a, b), c) in seq_e.iter().zip(&left_e).zip(&right_e) {
        assert!(a.to_bits() == b.to_bits(), "left fold differs: {a} vs {b}");
        assert!(a.to_bits() == c.to_bits(), "right fold differs: {a} vs {c}");
    }
}

proptest! {
    #[test]
    fn flat_merge_is_exact_for_every_oracle(
        seed in 0u64..5_000,
        n in 1usize..300,
        shards in 1usize..7,
        oracle_idx in 0usize..4,
    ) {
        let eps = Epsilon::new(1.1);
        let config = FlatConfig::with_oracle(32, eps, ORACLES[oracle_idx]).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report(i % 32, &mut rng).unwrap()).collect();
        check_merge_invariants(
            || FlatServer::new(&config).unwrap(),
            &reports,
            shards,
            |s: &FlatServer| s.estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn hh_merge_is_exact(
        seed in 0u64..5_000,
        n in 1usize..300,
        shards in 1usize..7,
        oracle_idx in 0usize..4,
    ) {
        let eps = Epsilon::new(0.9);
        let config = HhConfig::with_oracle(64, 4, eps, ORACLES[oracle_idx]).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 7) % 64, &mut rng).unwrap()).collect();
        check_merge_invariants(
            || HhServer::new(config.clone()).unwrap(),
            &reports,
            shards,
            |s: &HhServer| s.estimate_consistent().to_frequency_estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn hh_split_merge_is_exact(
        seed in 0u64..5_000,
        n in 1usize..150,
        shards in 1usize..6,
    ) {
        let eps = Epsilon::new(1.4);
        let config = HhConfig::new(64, 2, eps).unwrap();
        let client = HhSplitClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 5) % 64, &mut rng).unwrap()).collect();
        check_merge_invariants(
            || HhSplitServer::new(config.clone()).unwrap(),
            &reports,
            shards,
            |s: &HhSplitServer| {
                s.estimate_consistent().to_frequency_estimate().frequencies().to_vec()
            },
        );
    }

    #[test]
    fn haar_hrr_merge_is_exact(
        seed in 0u64..5_000,
        n in 1usize..300,
        shards in 1usize..7,
    ) {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(128, eps).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 11) % 128, &mut rng).unwrap()).collect();
        check_merge_invariants(
            || HaarHrrServer::new(config.clone()).unwrap(),
            &reports,
            shards,
            |s: &HaarHrrServer| s.estimate().to_frequency_estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn haar_oue_merge_is_exact(
        seed in 0u64..5_000,
        n in 1usize..200,
        shards in 1usize..6,
    ) {
        let eps = Epsilon::new(0.8);
        let config = HaarConfig::new(64, eps).unwrap();
        let client = HaarOueClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> =
            (0..n).map(|i| client.report((i * 3) % 64, &mut rng).unwrap()).collect();
        check_merge_invariants(
            || HaarOueServer::new(config.clone()).unwrap(),
            &reports,
            shards,
            |s: &HaarOueServer| s.estimate().to_frequency_estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn hh2d_merge_is_exact(
        seed in 0u64..5_000,
        n in 1usize..150,
        shards in 1usize..6,
    ) {
        let eps = Epsilon::new(1.1);
        let config = Hh2dConfig::new(16, 2, eps).unwrap();
        let client = Hh2dClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = (0..n)
            .map(|i| client.report(i % 16, (i * 3) % 16, &mut rng).unwrap())
            .collect();
        check_merge_invariants(
            || Hh2dServer::new(config.clone()).unwrap(),
            &reports,
            shards,
            |s: &Hh2dServer| {
                // Probe the 2-D estimate over a panel of rectangles.
                let est = s.estimate();
                [(0, 15, 0, 15), (0, 7, 8, 15), (3, 12, 2, 9), (5, 5, 5, 5)]
                    .iter()
                    .map(|&(a, b, c, d)| est.rectangle(a, b, c, d))
                    .collect()
            },
        );
    }

    #[test]
    fn merge_rejects_mismatched_shapes(seed in 0u64..1_000) {
        let _ = seed;
        let eps = Epsilon::new(1.0);
        let mut a = HhServer::new(HhConfig::new(64, 2, eps).unwrap()).unwrap();
        let b = HhServer::new(HhConfig::new(64, 4, eps).unwrap()).unwrap();
        prop_assert!(a.merge(&b).is_err());
        let mut x = HaarOueServer::new(HaarConfig::new(64, eps).unwrap()).unwrap();
        let y = HaarOueServer::new(HaarConfig::new(32, eps).unwrap()).unwrap();
        prop_assert!(x.merge(&y).is_err());
        let mut p = Hh2dServer::new(Hh2dConfig::new(16, 2, eps).unwrap()).unwrap();
        let q = Hh2dServer::new(Hh2dConfig::new(8, 2, eps).unwrap()).unwrap();
        prop_assert!(p.merge(&q).is_err());
        let mut s = HhSplitServer::new(HhConfig::new(16, 2, eps).unwrap()).unwrap();
        let t = HhSplitServer::new(HhConfig::new(16, 4, eps).unwrap()).unwrap();
        prop_assert!(s.merge(&t).is_err());
    }
}
