//! End-to-end service pipeline tests: encode → shard-ingest → merge →
//! snapshot → query, checked against the single-threaded reference path.

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{
    FlatClient, FlatConfig, FlatServer, HaarConfig, HaarHrrClient, HaarHrrServer, HhClient,
    HhConfig, HhServer, MergeableServer, RangeEstimate,
};
use ldp_service::{decode_all, generate_stream, LdpService, RangeSnapshot, ShardedAggregator};
use ldp_workloads::{CauchyParams, DistributionKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cauchy_dataset(domain: usize, users: u64, seed: u64) -> ldp_workloads::Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    ldp_workloads::Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        users,
        &mut rng,
    )
}

/// The acceptance-criterion test: with a fixed seed, a 4-shard merged
/// estimate answers range queries *identically* (bit-for-bit) to the
/// single-threaded path over the same encoded stream.
#[test]
fn four_shard_merge_equals_single_thread_exactly() {
    let domain = 256;
    let dataset = cauchy_dataset(domain, 30_000, 901);
    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();

    let stream = generate_stream(&dataset, 30_000, 902, |v, rng| {
        client.report(v, rng).unwrap()
    });

    // Reference: decode the same stream and absorb sequentially.
    let mut reference = prototype.clone();
    for report in decode_all::<ldp_ranges::HhReport>(stream.as_bytes()).unwrap() {
        MergeableServer::absorb(&mut reference, &report).unwrap();
    }

    // Service path: 4 shards decoding + absorbing in parallel.
    let mut pool = ShardedAggregator::new(&prototype, 4).unwrap();
    pool.ingest_encoded(&stream).unwrap();
    let merged = pool.merged().unwrap();

    assert_eq!(reference.num_reports(), 30_000);
    assert_eq!(merged.num_reports(), 30_000);

    let ref_est = reference.estimate_consistent().to_frequency_estimate();
    let merged_est = merged.estimate_consistent().to_frequency_estimate();
    let queries = [
        (0usize, 255usize),
        (10, 99),
        (0, 0),
        (128, 191),
        (200, 201),
        (5, 250),
        (64, 64),
    ];
    for (a, b) in queries {
        assert_eq!(
            ref_est.range(a, b).to_bits(),
            merged_est.range(a, b).to_bits(),
            "range [{a},{b}] differs between sequential and 4-shard paths"
        );
    }
    for z in 0..domain {
        assert_eq!(
            ref_est.point(z).to_bits(),
            merged_est.point(z).to_bits(),
            "leaf {z}"
        );
    }
}

/// The full pipeline stays accurate: replayed per-user traffic through the
/// sharded service approximates ground truth within mechanism tolerances.
#[test]
fn sharded_pipeline_is_accurate_against_ground_truth() {
    let domain = 128;
    let users = 60_000u64;
    let dataset = cauchy_dataset(domain, users, 903);
    let config = HaarConfig::new(domain, Epsilon::from_exp(3.0)).unwrap();
    let client = HaarHrrClient::new(config.clone()).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();

    let stream = generate_stream(&dataset, users, 904, |v, rng| {
        client.report(v, rng).unwrap()
    });
    let mut pool = ShardedAggregator::new(&prototype, 4).unwrap();
    pool.ingest_encoded(&stream).unwrap();
    let snap = RangeSnapshot::freeze(&pool.merged().unwrap(), 1);

    assert_eq!(snap.num_reports(), users);
    for (a, b) in [(0, domain - 1), (32, 95), (0, 63), (100, 120)] {
        let got = snap.range(a, b);
        let truth = dataset.true_range(a, b);
        assert!(
            (got - truth).abs() < 0.06,
            "range [{a},{b}]: {got} vs truth {truth}"
        );
    }
    // Quantiles land near the true quantiles.
    for phi in [0.25, 0.5, 0.75] {
        let est_q = snap.quantile(phi) as f64;
        let true_q = dataset.true_quantile(phi) as f64;
        assert!(
            (est_q - true_q).abs() <= domain as f64 * 0.06,
            "phi {phi}: {est_q} vs {true_q}"
        );
    }
}

/// The flat mechanism rides the same service generically.
#[test]
fn flat_mechanism_through_the_service_front() {
    let domain = 64;
    let dataset = cauchy_dataset(domain, 20_000, 905);
    let config = FlatConfig::new(domain, Epsilon::from_exp(3.0)).unwrap();
    let client = FlatClient::new(&config).unwrap();
    let prototype = FlatServer::new(&config).unwrap();

    let service = LdpService::new(&prototype, 3).unwrap();
    let stream = generate_stream(&dataset, 20_000, 906, |v, rng| {
        client.report(v, rng).unwrap()
    });
    for i in 0..stream.len() {
        service.submit_frame(stream.frame(i)).unwrap();
    }
    let snap = service.refresh_snapshot().unwrap();
    assert_eq!(snap.num_reports(), 20_000);
    assert_eq!(snap.version(), 1);
    let truth = dataset.true_range(10, 40);
    assert!((snap.range(10, 40) - truth).abs() < 0.08);
}
