//! Reactor-engine behaviors the blocking engine could not provide:
//! slow or stalled clients must not impede other sessions (one worker
//! serves many sockets because readiness, not a thread, owns each
//! connection), pipelined requests are answered in order without a
//! round trip per message, idle sessions are evicted with a typed
//! error, the portable fallback poller serves the identical protocol,
//! and shutdown stays bounded even with a peer frozen mid-frame.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhReport, HhServer};
use ldp_service::net::proto::{encode_report_body, read_message, write_message, ServerMsg};
use ldp_service::net::{ErrorCode, Hello, NetConfig};
use ldp_service::{EncodedStream, LdpClient, LdpServer, LdpService};
use rand::rngs::StdRng;
use rand::SeedableRng;

type HhService = Arc<LdpService<HhServer>>;

fn hh_fixture(config: NetConfig) -> (HhClient, HhService, LdpServer<HhServer>) {
    let hh = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
    let client = HhClient::new(hh.clone()).unwrap();
    let prototype = HhServer::new(hh).unwrap();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let server = LdpServer::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();
    (client, service, server)
}

fn frames(client: &HhClient, n: usize, seed: u64) -> EncodedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = EncodedStream::new();
    for i in 0..n {
        stream.push(&client.report(i % 64, &mut rng).unwrap());
    }
    stream
}

/// A slow-loris peer dribbling one byte every 10 ms must not delay a
/// well-behaved session — even with a single worker, because sessions
/// occupy a worker only while a *complete* message executes. (The
/// blocking engine parked its one worker on the loris forever.)
#[test]
fn slow_loris_does_not_stall_other_sessions() {
    let (client, _service, server) = hh_fixture(NetConfig {
        workers: 1,
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // The loris: a valid HELLO envelope, one byte per 10 ms, from a
    // thread. ~50 bytes means it is still mid-envelope while the
    // well-behaved session below does all of its work.
    let hello_env = {
        let body = ldp_service::net::proto::ClientMsg::Hello(Hello::plain::<HhReport>()).encode();
        let mut env = (u32::try_from(body.len()).unwrap()).to_le_bytes().to_vec();
        env.extend_from_slice(&body);
        env
    };
    let loris = std::thread::spawn(move || {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        for b in hello_env {
            if raw.write_all(&[b]).is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Keep the socket open (mid-session, quiescent) until the server
        // shuts down underneath it.
        std::thread::sleep(Duration::from_secs(5));
    });

    // Cross-session progress, measured while the loris is dribbling.
    let started = Instant::now();
    let mut session = LdpClient::connect(addr, Hello::plain::<HhReport>()).unwrap();
    let acked = session.send_stream(&frames(&client, 100, 7), 10).unwrap();
    assert_eq!(acked, 100);
    let reply = session.range(0, 63).unwrap();
    assert_eq!(reply.num_reports, 100);
    session.bye().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "well-behaved session starved behind a slow-loris peer"
    );

    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 100);
    assert_eq!(stats.num_reports, 100);
    // Both sessions are accounted for: the clean BYE and the abandoned
    // loris.
    assert_eq!(stats.sessions, 2);
    loris.join().unwrap();
}

/// A peer frozen mid-frame cannot hold shutdown hostage: the drain
/// abandons it after `drain_patience` ticks without progress, and the
/// frames acked to well-behaved sessions are still accounted exactly.
#[test]
fn mid_frame_stall_keeps_shutdown_bounded() {
    let (client, _service, server) = hh_fixture(NetConfig {
        idle_poll: Duration::from_millis(10),
        drain_patience: 20,
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // A clean session absorbs 20 frames.
    let mut session = LdpClient::connect(addr, Hello::plain::<HhReport>()).unwrap();
    assert_eq!(
        session.send_stream(&frames(&client, 20, 11), 5).unwrap(),
        20
    );
    session.bye().unwrap();

    // The staller: negotiated, then a REPORT envelope that declares 100
    // bytes and delivers 10, then silence — but the socket stays open,
    // so there is no EOF to save the server.
    let staller = LdpClient::connect(addr, Hello::plain::<HhReport>()).unwrap();
    let mut stalled = staller.into_stream();
    stalled.write_all(&100u32.to_le_bytes()).unwrap();
    stalled.write_all(&[0xAB; 10]).unwrap();

    let started = Instant::now();
    let stats = server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "drain took {elapsed:?} with a mid-frame staller (patience is ~200ms)"
    );
    assert_eq!(stats.frames_absorbed, 20);
    assert_eq!(stats.num_reports, 20, "acked frames ≡ num_reports");
    assert_eq!(stats.sessions, 2);
    drop(stalled);
}

/// With an idle timeout configured, a dead-quiet session is evicted
/// with a typed `IdleTimeout` error — and the server keeps serving
/// everyone else.
#[test]
fn idle_sessions_are_evicted_with_a_typed_error() {
    let (client, _service, server) = hh_fixture(NetConfig {
        idle_poll: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_millis(150)),
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // Negotiate, then go quiet. The eviction must arrive as a typed
    // error, not a silent close.
    let idler =
        LdpClient::connect_with(addr, Hello::plain::<HhReport>(), Duration::from_secs(10)).unwrap();
    let mut idle_stream = idler.into_stream();
    let body = read_message(&mut idle_stream).expect("eviction sends a reply before closing");
    let ServerMsg::Error(e) = ServerMsg::decode(&body).unwrap() else {
        panic!("expected a typed eviction error");
    };
    assert_eq!(e.code, ErrorCode::IdleTimeout);
    // The server closed the connection after the error.
    let mut rest = Vec::new();
    assert_eq!(idle_stream.read_to_end(&mut rest).unwrap_or(0), 0);

    // The server is still live for an active session — one that keeps
    // making requests is never idle, so it is never evicted.
    let mut session = LdpClient::connect(addr, Hello::plain::<HhReport>()).unwrap();
    for chunk in 0..4 {
        assert_eq!(
            session
                .send_stream(&frames(&client, 10, 100 + chunk), 10)
                .unwrap(),
            10
        );
        std::thread::sleep(Duration::from_millis(60));
    }
    session.bye().unwrap();

    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 40);
    assert_eq!(stats.sessions, 2);
}

/// Regression: a session whose replies are still being flushed is not
/// "idle". The client pipelines megabytes of METRICS requests and then
/// goes quiet for twice the idle timeout *without reading* — the
/// server's outbound buffer (and the kernel's) are full of its replies
/// the whole time, so evicting it would drop acked work. Every reply
/// must still arrive, and because flushing them is write progress (which
/// stamps the eviction clock), the session must answer a STATUS sent
/// right after the drain.
#[test]
fn pending_replies_shield_a_session_from_idle_eviction() {
    let (_client, _service, server) = hh_fixture(NetConfig {
        idle_poll: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_millis(300)),
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // Size one METRICS reply (allowed before HELLO), then pipeline
    // enough of them that their replies cannot fit in kernel socket
    // buffers even with autotuning — the server must hold the overflow
    // across the quiet period.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let request = ldp_service::net::proto::ClientMsg::Metrics.encode();
    write_message(&mut stream, &request).unwrap();
    let reply_len = read_message(&mut stream).unwrap().len() + 4;
    let n = (16 << 20) / reply_len + 1;
    let mut burst = Vec::new();
    for _ in 0..n {
        burst.extend_from_slice(&(u32::try_from(request.len()).unwrap()).to_le_bytes());
        burst.extend_from_slice(&request);
    }
    stream.write_all(&burst).unwrap();

    // Dead quiet for 2× the idle timeout, replies pending throughout.
    std::thread::sleep(Duration::from_millis(600));

    for k in 0..n {
        let body = read_message(&mut stream)
            .unwrap_or_else(|e| panic!("reply {k} of {n} lost after the idle sleep: {e}"));
        match ServerMsg::decode(&body).unwrap() {
            ServerMsg::MetricsOk(_) => {}
            other => panic!("reply {k} of {n}: expected METRICS_OK, got {other:?}"),
        }
    }

    // The drain itself refreshed the eviction clock: the session still
    // answers, then closes cleanly.
    write_message(
        &mut stream,
        &ldp_service::net::proto::ClientMsg::Status { verbose: false }.encode(),
    )
    .unwrap();
    let body = read_message(&mut stream).unwrap();
    assert!(matches!(
        ServerMsg::decode(&body).unwrap(),
        ServerMsg::StatusOk(_)
    ));
    write_message(
        &mut stream,
        &ldp_service::net::proto::ClientMsg::Bye.encode(),
    )
    .unwrap();
    let body = read_message(&mut stream).unwrap();
    assert!(matches!(
        ServerMsg::decode(&body).unwrap(),
        ServerMsg::ByeOk
    ));

    let stats = server.shutdown();
    assert_eq!(stats.sessions, 1);
}

/// The portable fallback poller (the non-Linux code path, forced here)
/// serves the identical protocol: same acks, same estimates as the
/// in-process snapshot of the very service behind the server.
#[test]
fn portable_poller_serves_identical_sessions() {
    let (client, service, server) = hh_fixture(NetConfig {
        portable_poller: true,
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    let mut session = LdpClient::connect(addr, Hello::plain::<HhReport>()).unwrap();
    assert_eq!(
        session.send_stream(&frames(&client, 120, 3), 25).unwrap(),
        120
    );
    let reply = session.range(4, 40).unwrap();
    let snap = service.refresh_snapshot().unwrap();
    assert_eq!(reply.num_reports, snap.num_reports());
    let ldp_service::net::QueryResult::Fraction(over_socket) = reply.result else {
        panic!("range query answered with a non-fraction result");
    };
    assert!((over_socket - snap.range(4, 40)).abs() < 1e-12);
    session.bye().unwrap();

    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 120);
    assert_eq!(stats.num_reports, 120);
    assert_eq!(stats.sessions, 1);
}

/// Pipelining: a client that fires HELLO-less batches back-to-back
/// without reading gets every reply, in order — the reactor executes a
/// session's queued messages as one job and flushes replies in arrival
/// order.
#[test]
fn pipelined_reports_are_acked_in_order() {
    let (client, _service, server) = hh_fixture(NetConfig::default());
    let addr = server.local_addr();

    let session = LdpClient::connect(addr, Hello::plain::<HhReport>()).unwrap();
    let mut stream = session.into_stream();

    // Ten REPORT batches of 5 frames each, written as one burst with no
    // interleaved reads, then a BYE.
    let all = frames(&client, 50, 23);
    let mut burst = Vec::new();
    for k in 0..10 {
        let body = encode_report_body(5, all.frame_span(k * 5, k * 5 + 5));
        burst.extend_from_slice(&(u32::try_from(body.len()).unwrap()).to_le_bytes());
        burst.extend_from_slice(&body);
    }
    let bye = ldp_service::net::proto::ClientMsg::Bye.encode();
    burst.extend_from_slice(&(u32::try_from(bye.len()).unwrap()).to_le_bytes());
    burst.extend_from_slice(&bye);
    stream.write_all(&burst).unwrap();

    for _ in 0..10 {
        let body = read_message(&mut stream).unwrap();
        match ServerMsg::decode(&body).unwrap() {
            ServerMsg::ReportOk { accepted } => assert_eq!(accepted, 5),
            other => panic!("pipelined REPORT answered out of order: {other:?}"),
        }
    }
    let body = read_message(&mut stream).unwrap();
    assert!(matches!(
        ServerMsg::decode(&body).unwrap(),
        ServerMsg::ByeOk
    ));

    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 50);
    assert_eq!(stats.num_reports, 50);
    assert_eq!(stats.sessions, 1);
}

/// `write_message` framing helper sanity for this file's raw bursts: the
/// helper and the hand-rolled envelope agree byte for byte.
#[test]
fn raw_envelope_matches_write_message() {
    let body = ldp_service::net::proto::ClientMsg::Bye.encode();
    let mut by_hand = (u32::try_from(body.len()).unwrap()).to_le_bytes().to_vec();
    by_hand.extend_from_slice(&body);
    let mut by_helper = Vec::new();
    write_message(&mut by_helper, &body).unwrap();
    assert_eq!(by_hand, by_helper);
}
