//! Durable mode over the socket: REPORT batches acked by a durable
//! server survive a restart bit-identically, graceful shutdown
//! checkpoints, and STATUS exposes durability progress to operators —
//! with or without a handshake.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HaarConfig, HaarHrrClient, HaarHrrServer, HhClient, HhConfig, HhServer};
use ldp_service::net::proto::{read_message, write_message, ClientMsg, ServerMsg};
use ldp_service::net::{Hello, NetConfig, Query, QueryOp};
use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy};
use ldp_service::{EncodedStream, LdpClient, LdpServer, LdpService, RangeSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_snapshots_identical(a: &RangeSnapshot, b: &RangeSnapshot, what: &str) {
    assert_eq!(a.num_reports(), b.num_reports(), "{what}: num_reports");
    for (z, (x, y)) in a
        .estimate()
        .frequencies()
        .iter()
        .zip(b.estimate().frequencies())
        .enumerate()
    {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: estimates differ at item {z}: {x} vs {y}"
        );
    }
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        num_shards: 2,
        segment_bytes: 16 << 10,
        fsync: FsyncPolicy::Always,
        checkpoint_every_records: 0,
        retain_history: false,
        ..DurableConfig::default()
    }
}

/// Socket-ingested traffic into a durable server: acked batches are on
/// disk, shutdown checkpoints, and a restarted service recovers the
/// drained state bit-identically — and bit-identically to a plain
/// in-process service fed the same frames (transport *and* storage are
/// pure functions).
#[test]
fn durable_server_survives_restart_bit_identically() {
    let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();
    let client = HhClient::new(config.clone()).unwrap();
    let prototype = HhServer::new(config).unwrap();

    let mut rng = StdRng::seed_from_u64(4001);
    let mut stream = EncodedStream::new();
    for i in 0..600 {
        stream.push(&client.report((i * 7) % 64, &mut rng).unwrap());
    }

    // In-process reference.
    let direct = LdpService::new(&prototype, 1).unwrap();
    for i in 0..stream.len() {
        direct.submit_frame(stream.frame(i)).unwrap();
    }
    let direct_snap = direct.refresh_snapshot().unwrap();

    // Durable socket path.
    let dir = scratch_dir("durable-net").unwrap();
    let (durable, _) = DurableService::open(&dir, &prototype, durable_config()).unwrap();
    let durable = Arc::new(durable);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&durable), NetConfig::default()).unwrap();
    let mut session =
        LdpClient::connect(server.local_addr(), Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let acked = session.send_stream(&stream, 64).unwrap();
    assert_eq!(acked, 600);

    // STATUS mid-session: WAL progress visible, no checkpoint yet.
    let status = session.status().unwrap();
    assert_eq!(status.frames_absorbed, 600);
    assert_eq!(status.frames_rejected, 0);
    assert_eq!(status.num_reports, 600);
    assert_eq!(status.current_epoch, None);
    let progress = status.durable.expect("durable server reports progress");
    assert_eq!(progress.last_checkpoint, None);
    assert_eq!(progress.wal_frames, 600);
    assert!(progress.wal_records >= 600 / 64);

    // Queries answer from the durable backend.
    let reply = session
        .query(Query {
            op: QueryOp::Range { a: 0, b: 63 },
            window: None,
        })
        .unwrap();
    assert_eq!(
        reply.fraction().to_bits(),
        direct_snap.range(0, 63).to_bits()
    );

    session.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 600);
    let final_ckpt = stats
        .final_checkpoint
        .expect("durable shutdown checkpoints");
    assert_snapshots_identical(&stats.final_snapshot, &direct_snap, "socket vs in-process");
    drop(durable);

    // Restart: the drained state comes back from the checkpoint alone.
    let (reopened, report) = DurableService::open(&dir, &prototype, durable_config()).unwrap();
    assert_eq!(report.checkpoint_id, Some(final_ckpt));
    assert_eq!(
        report.records_replayed, 0,
        "shutdown checkpoint covers everything"
    );
    let snap = reopened.refresh_snapshot().unwrap();
    assert_snapshots_identical(&snap, &direct_snap, "recovered vs in-process");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Windowed durable mode over the socket: SEALs are logged, shutdown
/// seals + checkpoints, and the restarted window (including rotation
/// state) matches the drained one.
#[test]
fn durable_windowed_server_recovers_window_state() {
    let config = HaarConfig::new(64, Epsilon::new(1.1)).unwrap();
    let client = HaarHrrClient::new(config.clone()).unwrap();
    let prototype = HaarHrrServer::new(config).unwrap();
    const WINDOW: usize = 2;

    let dir = scratch_dir("durable-net-win").unwrap();
    let (durable, _) =
        DurableService::open_windowed(&dir, &prototype, WINDOW, durable_config()).unwrap();
    let durable = Arc::new(durable);
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&durable), NetConfig::default()).unwrap();
    let mut session = LdpClient::connect(
        server.local_addr(),
        Hello::windowed::<ldp_ranges::HaarHrrReport>(),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4002);
    for e in 0..4u64 {
        let mut stream = EncodedStream::new();
        for i in 0..150usize {
            stream.push_epoch(&client.report((i * 11) % 64, &mut rng).unwrap(), e);
        }
        assert_eq!(session.send_stream(&stream, 50).unwrap(), 150);
        assert_eq!(session.seal_epoch().unwrap(), e);
    }
    let status = session.status().unwrap();
    assert_eq!(status.current_epoch, Some(4));
    assert!(status.durable.is_some());

    session.bye().unwrap();
    let stats = server.shutdown();
    // The drain seals the open (empty) epoch and checkpoints.
    assert_eq!(stats.sealed_epoch, Some(4));
    assert!(stats.final_checkpoint.is_some());
    let drained = stats.final_snapshot;
    let drained_window = durable.window_snapshot(WINDOW).unwrap();
    drop(durable);

    let (reopened, report) =
        DurableService::open_windowed(&dir, &prototype, WINDOW, durable_config()).unwrap();
    assert_eq!(report.records_replayed, 0);
    let snap = reopened.refresh_snapshot().unwrap();
    assert_snapshots_identical(&snap, &drained, "recovered windowed live state");
    let window = reopened.window_snapshot(WINDOW).unwrap();
    assert_eq!(window.first_epoch(), drained_window.first_epoch());
    assert_eq!(window.last_epoch(), drained_window.last_epoch());
    assert_snapshots_identical(
        window.snapshot(),
        drained_window.snapshot(),
        "recovered trailing window",
    );

    // The reopened ring keeps sealing where it left off.
    assert_eq!(reopened.seal_epoch().unwrap(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// STATUS needs no handshake and works against non-durable servers too
/// (reporting no durability section) — the blind operator probe.
#[test]
fn status_probe_works_before_hello_and_without_durability() {
    let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
    let prototype = HhServer::new(config).unwrap();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let server =
        LdpServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();

    // Raw socket, STATUS as the very first message — no HELLO.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_message(&mut stream, &ClientMsg::Status { verbose: false }.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut stream).unwrap()).unwrap();
    let ServerMsg::StatusOk(status) = reply else {
        panic!("STATUS answered with {reply:?}");
    };
    assert_eq!(status.frames_absorbed, 0);
    assert_eq!(status.num_reports, 0);
    assert_eq!(status.snapshot_version, 0);
    assert_eq!(status.current_epoch, None);
    assert_eq!(
        status.durable, None,
        "plain server has no durability section"
    );
    write_message(&mut stream, &ClientMsg::Bye.encode()).unwrap();
    let _ = read_message(&mut stream);
    drop(stream);
    let _ = server.shutdown();
}
