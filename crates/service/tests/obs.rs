//! The telemetry layer's contracts, end to end.
//!
//! The registry's frozen views obey the same exact integer algebra as
//! the mechanism servers: per-shard histograms merge bit-identically to
//! a single writer, merge − subtract round-trips exactly, the wire
//! exposition decodes its own encoding byte-for-byte and rejects
//! arbitrary byte soup with typed errors, and over a real socket the
//! drain totals, the STATUS counters, and the METRICS snapshot are one
//! accounting path that can never disagree.

use std::sync::Arc;

use proptest::prelude::*;

use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer};
use ldp_service::net::proto::{read_message, write_message, ClientMsg, ServerMsg};
use ldp_service::net::{Hello, NetConfig};
use ldp_service::obs::instruments::names;
use ldp_service::obs::{Histo, TraceOutcome, TraceStage};
use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy};
use ldp_service::{
    EncodedStream, LdpClient, LdpServer, LdpService, MetricsRegistry, RegistrySnapshot, TraceRing,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

// --- exact histogram algebra -------------------------------------------

/// Sharded recording merges bit-identically to a single writer: the
/// telemetry analogue of `MergeableServer`'s exactness argument, proven
/// the same way (differentially).
#[test]
fn sharded_histograms_merge_bit_identical_to_single_writer() {
    let values: Vec<u64> = (0..4000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect();

    let single = Histo::new();
    for &v in &values {
        single.record(v);
    }

    let shards: Vec<Histo> = (0..4).map(|_| Histo::new()).collect();
    for (i, &v) in values.iter().enumerate() {
        shards[i % 4].record(v);
    }
    let mut merged = shards[0].snapshot();
    for shard in &shards[1..] {
        merged.merge(&shard.snapshot()).unwrap();
    }

    let reference = single.snapshot();
    assert_eq!(merged.count(), reference.count());
    assert_eq!(merged.sum(), reference.sum());
    assert_eq!(merged.buckets(), reference.buckets(), "buckets diverged");
}

/// Four writers hammering *one* histogram lose nothing: the final
/// snapshot equals a single-threaded recording of the same multiset.
#[test]
fn concurrent_recording_is_exact() {
    let histo = Arc::new(Histo::new());
    let per_thread = 5000u64;
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let histo = Arc::clone(&histo);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    histo.record(t * per_thread + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let reference = Histo::new();
    for v in 0..4 * per_thread {
        reference.record(v);
    }
    let got = histo.snapshot();
    let want = reference.snapshot();
    assert_eq!(got.count(), want.count());
    assert_eq!(got.sum(), want.sum());
    assert_eq!(got.buckets(), want.buckets());
}

fn snapshot_of(values: &[u64]) -> ldp_service::HistoSnapshot {
    let h = Histo::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every value lands in the bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in 0u64..u64::MAX) {
        let i = Histo::bucket_index(v);
        let (lo, hi) = Histo::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// merge then subtract round-trips bit-identically (histograms).
    #[test]
    fn histo_merge_subtract_roundtrip(
        a in proptest::collection::vec(0u64..u64::MAX, 0..64),
        b in proptest::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let sa = snapshot_of(&a);
        let sb = snapshot_of(&b);
        let mut merged = sa.clone();
        merged.merge(&sb).unwrap();
        merged.subtract(&sb).unwrap();
        prop_assert_eq!(merged, sa);
    }

    /// Subtracting more than a histogram holds is rejected — and the
    /// rejection is all-or-nothing: the failed operand is unchanged.
    #[test]
    fn histo_underflow_rejected_state_unchanged(
        a in proptest::collection::vec(0u64..1024, 1..32),
    ) {
        let sa = snapshot_of(&a);
        let mut bigger = sa.clone();
        bigger.merge(&sa).unwrap();
        let mut victim = sa.clone();
        prop_assert!(victim.subtract(&bigger).is_err());
        prop_assert_eq!(victim, sa, "failed subtract mutated its operand");
    }

    /// A registry's delta between two moments is exact: snapshot twice,
    /// subtract, merge the delta back — bit-identical to the second
    /// snapshot. This is the drain-accounting property the server's
    /// stats rely on.
    #[test]
    fn registry_delta_roundtrip(
        phase1 in proptest::collection::vec(0u64..u64::MAX, 0..32),
        phase2 in proptest::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("t.counter");
        let gauge = registry.gauge("t.gauge");
        let histo = registry.histo("t.histo");
        for &v in &phase1 {
            counter.add(v % 1024);
            gauge.record_max(v);
            histo.record(v);
        }
        let s1 = registry.snapshot();
        for &v in &phase2 {
            counter.add(v % 1024);
            gauge.record_max(v);
            histo.record(v);
        }
        let s2 = registry.snapshot();

        let mut delta = s2.clone();
        delta.subtract(&s1).unwrap();
        let mut rebuilt = s1.clone();
        rebuilt.merge(&delta).unwrap();
        prop_assert_eq!(rebuilt, s2);
    }

    /// The exposition codec decodes its own encoding to an equal
    /// snapshot and re-encodes to identical bytes.
    #[test]
    fn exposition_roundtrips_canonically(
        counts in proptest::collection::vec(0u64..u64::MAX, 0..8),
        values in proptest::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let registry = MetricsRegistry::new();
        for (i, &c) in counts.iter().enumerate() {
            registry.counter(&format!("c.{i}")).add(c);
            registry.gauge(&format!("g.{i}")).set(c);
        }
        let histo = registry.histo("h.latency");
        for &v in &values {
            histo.record(v);
        }
        let snapshot = registry.snapshot();
        let bytes = snapshot.encode();
        let decoded = RegistrySnapshot::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(decoded.encode(), bytes, "re-encode differs");
    }

    /// Arbitrary byte soup never panics the snapshot decoder — every
    /// outcome is `Ok` or a typed `WireError`.
    #[test]
    fn arbitrary_bytes_never_panic_decoder(
        bytes in proptest::collection::vec(0u64..256, 0..256),
    ) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = RegistrySnapshot::decode(&bytes);
        // The enclosing protocol messages are total too.
        let _ = ServerMsg::decode(&bytes);
        let _ = ClientMsg::decode(&bytes);
        let mut framed = vec![0x87];
        framed.extend_from_slice(&bytes);
        let _ = ServerMsg::decode(&framed);
        // The ops-plane replies (METRICS_RANGE_OK, HEALTH_OK) are total
        // against byte soup too, with and without a valid version byte.
        for type_byte in [0x8Au8, 0x8B] {
            let mut framed = vec![type_byte];
            framed.extend_from_slice(&bytes);
            let _ = ServerMsg::decode(&framed);
            let mut versioned = vec![type_byte, 1];
            versioned.extend_from_slice(&bytes);
            let _ = ServerMsg::decode(&versioned);
        }
    }
}

// --- the socket surfaces -----------------------------------------------

fn hh_parts() -> (HhClient, HhServer) {
    let config = HhConfig::new(64, 4, Epsilon::from_exp(3.0)).unwrap();
    (
        HhClient::new(config.clone()).unwrap(),
        HhServer::new(config).unwrap(),
    )
}

fn stream_of(client: &HhClient, seed: u64, frames: usize) -> EncodedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = EncodedStream::new();
    for i in 0..frames {
        stream.push(&client.report((i * 7) % 64, &mut rng).unwrap());
    }
    stream
}

/// Four concurrent socket writers: the drained stats, the registry's
/// net/shard counters, and the backend's report count all agree exactly
/// on the acked total — one accounting path, no lost updates.
#[test]
fn four_writer_socket_ingest_totals_are_exact() {
    let (client, prototype) = hh_parts();
    let service = Arc::new(LdpService::new(&prototype, 4).unwrap());
    let registry = Arc::new(MetricsRegistry::new());
    let config = NetConfig {
        registry: Some(Arc::clone(&registry)),
        ..NetConfig::default()
    };
    let server = LdpServer::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();
    let addr = server.local_addr();

    const WRITERS: u64 = 4;
    const FRAMES_EACH: usize = 250;
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let stream = stream_of(&client, 9100 + w, FRAMES_EACH);
            std::thread::spawn(move || {
                let mut session =
                    LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).unwrap();
                let acked = session.send_stream(&stream, 50).unwrap();
                session.bye().unwrap();
                acked
            })
        })
        .collect();
    let acked: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let total = WRITERS * FRAMES_EACH as u64;
    assert_eq!(acked, total);

    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, total);
    assert_eq!(stats.frames_rejected, 0);
    assert_eq!(stats.sessions, WRITERS);
    assert_eq!(stats.num_reports, total);

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter(names::NET_FRAMES_ABSORBED), Some(total));
    assert_eq!(snapshot.counter(names::SHARD_FRAMES_ACCEPTED), Some(total));
    assert_eq!(snapshot.counter(names::NET_SESSIONS_OPENED), Some(WRITERS));
    assert_eq!(snapshot.counter(names::NET_SESSIONS_CLOSED), Some(WRITERS));
    let report_ns = snapshot.histo(names::NET_REPORT_NS).unwrap();
    assert_eq!(
        report_ns.count(),
        WRITERS * (FRAMES_EACH as u64).div_ceil(50),
        "one latency sample per REPORT message"
    );
    assert!(snapshot.counter(names::NET_BYTES_IN).unwrap() > 0);
    assert!(snapshot.counter(names::NET_BYTES_OUT).unwrap() > 0);
}

/// The acceptance gate: a durable *windowed* server exercised over the
/// socket shows live instruments from every tier — shard, service,
/// window, net, and storage — in one METRICS snapshot, and the verbose
/// STATUS carries the same section while the plain probe stays legacy.
#[test]
fn metrics_probe_sees_every_tier_live() {
    let (client, prototype) = hh_parts();
    let registry = Arc::new(MetricsRegistry::new());
    let dir = scratch_dir("obs-every-tier").unwrap();
    let (durable, _) = DurableService::open_windowed(
        &dir,
        &prototype,
        2,
        DurableConfig {
            num_shards: 2,
            fsync: FsyncPolicy::Always,
            registry: Some(Arc::clone(&registry)),
            ..DurableConfig::default()
        },
    )
    .unwrap();
    let durable = Arc::new(durable);
    // NetConfig.registry is None: bind_durable must share the storage
    // tier's registry on its own.
    let server =
        LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&durable), NetConfig::default()).unwrap();
    assert!(Arc::ptr_eq(server.registry(), &registry));

    let mut session = LdpClient::connect(
        server.local_addr(),
        Hello::windowed::<ldp_ranges::HhReport>(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9200);
    for epoch in 0..2u64 {
        let mut stream = EncodedStream::new();
        for i in 0..120usize {
            stream.push_epoch(&client.report((i * 11) % 64, &mut rng).unwrap(), epoch);
        }
        assert_eq!(session.send_stream(&stream, 40).unwrap(), 120);
        assert_eq!(session.seal_epoch().unwrap(), epoch);
    }
    let _ = session.quantile(0.5).unwrap();

    // The plain probe stays legacy: no metrics section.
    let status = session.status().unwrap();
    assert_eq!(status.metrics, None);
    // The verbose probe and the dedicated METRICS message agree.
    let verbose = session.status_full().unwrap();
    let via_status = verbose.metrics.expect("verbose STATUS carries metrics");
    let live = session.metrics().unwrap();

    for snapshot in [&via_status, &live] {
        // Shard tier.
        assert_eq!(snapshot.counter(names::SHARD_FRAMES_ACCEPTED), Some(240));
        assert!(snapshot.histo(names::SHARD_ABSORB_NS).unwrap().count() > 0);
        // Service tier (the query refreshed a snapshot).
        assert!(snapshot.counter(names::SERVICE_REFRESHES).unwrap() >= 1);
        assert!(snapshot.histo(names::SERVICE_REFRESH_NS).unwrap().count() >= 1);
        // Window tier.
        assert_eq!(snapshot.counter(names::WINDOW_EPOCHS_SEALED), Some(2));
        assert_eq!(snapshot.histo(names::WINDOW_SEAL_NS).unwrap().count(), 2);
        // Net tier.
        assert_eq!(snapshot.counter(names::NET_FRAMES_ABSORBED), Some(240));
        assert!(snapshot.histo(names::NET_REPORT_NS).unwrap().count() >= 6);
        // Storage tier: one WAL record per batch + one per seal.
        assert_eq!(snapshot.counter(names::WAL_FRAMES), Some(240));
        assert_eq!(snapshot.counter(names::WAL_RECORDS), Some(8));
        assert!(snapshot.histo(names::WAL_APPEND_NS).unwrap().count() >= 8);
        assert_eq!(snapshot.gauge(names::STORAGE_WEDGED), Some(0));
    }
    // The live snapshot was taken after the verbose STATUS, so it can
    // only have moved forward: subtracting the earlier one must succeed
    // (counters and histograms are monotone).
    let mut delta = live.clone();
    delta
        .subtract(&via_status)
        .expect("later snapshot subtracts the earlier one exactly");

    session.bye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, 240);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// METRICS needs no handshake, and hostile METRICS payloads get a typed
/// error reply — the session survives none the worse after HELLO, and
/// pre-HELLO garbage closes cleanly without a panic.
#[test]
fn metrics_probe_works_before_hello_and_rejects_garbage() {
    use std::net::TcpStream;
    use std::time::Duration;

    let (_, prototype) = hh_parts();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let server =
        LdpServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();

    // METRICS as the very first message — no HELLO.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_message(&mut stream, &ClientMsg::Metrics.encode()).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut stream).unwrap()).unwrap();
    let ServerMsg::MetricsOk(snapshot) = reply else {
        panic!("METRICS answered with {reply:?}");
    };
    assert_eq!(snapshot.counter(names::NET_FRAMES_ABSORBED), Some(0));

    // A METRICS request with trailing garbage is a protocol error.
    write_message(&mut stream, &[0x07, 0xFF]).unwrap();
    let reply = ServerMsg::decode(&read_message(&mut stream).unwrap()).unwrap();
    assert!(
        matches!(reply, ServerMsg::Error(_)),
        "garbage METRICS answered with {reply:?}"
    );
    drop(stream);
    let _ = server.shutdown();
}

/// With a trace ring configured and enabled, sessions leave structured
/// events behind: typed, ordered, and never torn.
#[test]
fn trace_ring_records_session_events() {
    let (client, prototype) = hh_parts();
    let service = Arc::new(LdpService::new(&prototype, 2).unwrap());
    let trace = Arc::new(TraceRing::enabled_with(64));
    let config = NetConfig {
        trace: Some(Arc::clone(&trace)),
        ..NetConfig::default()
    };
    let server = LdpServer::bind("127.0.0.1:0", Arc::clone(&service), config).unwrap();

    let mut session =
        LdpClient::connect(server.local_addr(), Hello::plain::<ldp_ranges::HhReport>()).unwrap();
    let stream = stream_of(&client, 9300, 100);
    assert_eq!(session.send_stream(&stream, 25).unwrap(), 100);
    let _ = session.range(0, 63).unwrap();
    let _ = session.status().unwrap();
    session.bye().unwrap();
    let _ = server.shutdown();

    let events = trace.events();
    assert!(!events.is_empty(), "enabled ring recorded nothing");
    // Each message now leaves a Decode-stage arrival marker *and* an
    // Execute-stage completion; count only the executions here.
    // 4 REPORT batches + 1 QUERY + 1 STATUS, all on one session, all Ok.
    let executed = |t: u8| {
        events
            .iter()
            .filter(|(_, e)| e.stage == TraceStage::Execute && e.msg_type == t)
            .count()
    };
    let reports = events
        .iter()
        .filter(|(_, e)| {
            e.stage == TraceStage::Execute && e.msg_type == 0x02 && e.outcome == TraceOutcome::Ok
        })
        .count();
    assert_eq!(reports, 4);
    assert_eq!(executed(0x03), 1, "one QUERY event");
    assert_eq!(executed(0x06), 1, "one STATUS event");
    // Every Execute event's span was announced by a Decode event with
    // the same span id — the cross-tier correlation the span exists for.
    for (_, e) in events
        .iter()
        .filter(|(_, e)| e.stage == TraceStage::Execute && e.msg_type != 0)
    {
        assert!(
            events
                .iter()
                .any(|(_, d)| d.stage == TraceStage::Decode && d.span == e.span),
            "execute span {} has no decode marker",
            e.span
        );
    }
    // Tickets are strictly increasing (the ring orders its history).
    assert!(events.windows(2).all(|w| w[0].0 < w[1].0));
}
