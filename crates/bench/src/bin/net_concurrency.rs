//! Session-concurrency benchmark for the reactor network front end.
//!
//! The throughput benchmarks measure a handful of busy sessions; this one
//! measures the opposite regime — the one the reactor redesign exists
//! for: many thousands of *open* sessions, almost all idle, with a small
//! Zipf-weighted active subset doing REPORT/QUERY rounds. A
//! thread-per-session engine cannot enter this regime at all (10,000
//! sessions would be 10,000 OS threads); under the reactor an idle
//! session costs one file descriptor and ~one slab slot.
//!
//! Emits two gated metrics:
//!
//! * `net_concurrent_sessions` — sessions held open simultaneously,
//!   every one verified live via the server's `net.sessions_open` gauge
//!   and a clean BYE. Higher is better.
//! * `net_concurrent_p99_reply_us` — p99 reply latency (µs) for the
//!   active subset's REPORT and QUERY roundtrips *while* the thousands
//!   of idle sessions are open — the "idle sessions must cost nothing on
//!   the hot path" claim, as a number. Lower is better.
//!
//! ```text
//! cargo run -p ldp-bench --release --bin net_concurrency
//! LDP_NET_CONC_SESSIONS=2000 \
//!     cargo run -p ldp-bench --release --bin net_concurrency
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ldp_bench::metrics::BenchMetrics;
use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhReport, HhServer};
use ldp_service::net::{raise_nofile_limit, Hello, NetConfig};
use ldp_service::obs::instruments::names;
use ldp_service::{LdpClient, LdpServer, LdpService, MetricsRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // Each session is two descriptors (client + server end) in this one
    // process; raise the fd ceiling before opening anything.
    let fd_limit = raise_nofile_limit();
    let mut sessions = env_or("LDP_NET_CONC_SESSIONS", 10_000).max(1) as usize;
    let openers = env_or("LDP_NET_CONC_OPENERS", 8).max(1) as usize;
    let rounds = env_or("LDP_NET_CONC_ROUNDS", 400).max(1) as usize;
    let domain = 1_024usize;

    // A container or sandbox can pin RLIMIT_NOFILE below the default
    // target. Degrade gracefully: clamp the session count to what the
    // descriptor budget holds (two fds per session in this one process,
    // plus headroom for the active subset, listener, wake channel, and
    // stdio) and log the cap — a smaller measured regime beats a refusal
    // to measure.
    if let Some(limit) = fd_limit {
        let allowed = (limit.saturating_sub(256) / 2) as usize;
        if allowed == 0 {
            eprintln!("net_concurrency: fd limit {limit} leaves no session budget; aborting");
            std::process::exit(1);
        }
        if sessions > allowed {
            eprintln!(
                "net_concurrency: fd limit {limit} cannot hold {sessions} sessions; \
                 capping to {allowed}"
            );
            sessions = allowed;
        }
    }
    let active = (env_or("LDP_NET_CONC_ACTIVE", 64).max(1) as usize).min(sessions);

    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = Arc::new(HhClient::new(config.clone()).expect("client"));
    let prototype = HhServer::new(config).expect("server");
    let registry = Arc::new(MetricsRegistry::new());
    let service = Arc::new(LdpService::new(&prototype, 4).expect("shards"));
    let server = LdpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            workers: 4,
            registry: Some(Arc::clone(&registry)),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    println!(
        "# net_concurrency: {sessions} concurrent sessions ({openers} opener threads), \
         {active} Zipf-active, {rounds} request rounds, fd limit {fd_limit:?}"
    );

    // Open every session and keep it open. The handles live in one Vec
    // so nothing closes until the benchmark says so.
    let started = Instant::now();
    let held: Vec<LdpClient> = {
        let pool: Mutex<Vec<LdpClient>> = Mutex::new(Vec::with_capacity(sessions));
        std::thread::scope(|scope| {
            for t in 0..openers {
                let quota = sessions / openers + usize::from(t < sessions % openers);
                let pool = &pool;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(quota);
                    for _ in 0..quota {
                        local.push(
                            LdpClient::connect(addr, Hello::plain::<HhReport>())
                                .expect("session connect"),
                        );
                    }
                    pool.lock().unwrap().append(&mut local);
                });
            }
        });
        pool.into_inner().unwrap()
    };
    let open_elapsed = started.elapsed();
    assert_eq!(held.len(), sessions);
    // The server's own gauge must agree that every session is open —
    // this is the concurrency claim, read from the server side.
    let open_gauge = registry.snapshot().gauge(names::NET_SESSIONS_OPEN);
    assert_eq!(
        open_gauge,
        Some(sessions as u64),
        "server does not hold all sessions open"
    );
    println!(
        "# opened {sessions} sessions in {open_elapsed:.2?} \
         ({:.0} connects/sec); server gauge agrees",
        sessions as f64 / open_elapsed.as_secs_f64()
    );

    // The active subset: `rounds` request rounds distributed over
    // `active` fresh sessions with Zipf(1) weights — session k gets a
    // share ∝ 1/(k+1), the usual skew of real fleets (a few chatty
    // clients, a long quiet tail). Every round is a REPORT batch plus a
    // range QUERY, each reply latency recorded, all while the thousands
    // of idle sessions stay open.
    let harmonic: f64 = (1..=active).map(|k| 1.0 / k as f64).sum();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(2 * rounds);
    let mut rng = StdRng::seed_from_u64(17);
    let mut actives: Vec<LdpClient> = (0..active)
        .map(|_| LdpClient::connect(addr, Hello::plain::<HhReport>()).expect("active connect"))
        .collect();
    let mut frames_sent = 0u64;
    let busy_started = Instant::now();
    for (k, session) in actives.iter_mut().enumerate() {
        let share = ((rounds as f64) * (1.0 / (k + 1) as f64) / harmonic).round() as usize;
        for _ in 0..share.max(1) {
            let mut stream = ldp_service::EncodedStream::new();
            for i in 0..16usize {
                stream.push(
                    &client
                        .report((i * (k + 1)) % domain, &mut rng)
                        .expect("report"),
                );
            }
            let sent = Instant::now();
            let acked = session
                .send_batch(16, stream.frame_span(0, 16))
                .expect("ack");
            latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
            assert_eq!(acked, 16);
            frames_sent += acked;
            let sent = Instant::now();
            let reply = session.range(0, domain as u64 - 1).expect("query");
            latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
            assert!(reply.num_reports <= frames_sent);
        }
    }
    let busy_elapsed = busy_started.elapsed();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_us = latencies_us[((latencies_us.len() - 1) as f64 * 0.99) as usize];
    let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    println!(
        "# active subset: {} replies in {busy_elapsed:.2?} with {sessions} idle sessions open \
         → mean {mean_us:.0} µs, p99 {p99_us:.0} µs",
        latencies_us.len()
    );

    // Every held session must still be live after the busy phase: the
    // gauge still counts them, and each one closes with a clean BYE ack.
    let open_gauge = registry.snapshot().gauge(names::NET_SESSIONS_OPEN);
    assert_eq!(
        open_gauge,
        Some((sessions + active) as u64),
        "idle sessions were dropped during the busy phase"
    );
    for session in actives {
        session.bye().expect("active close");
    }
    let closing = Instant::now();
    let chunk_len = sessions.div_ceil(openers);
    std::thread::scope(|scope| {
        let mut held = held;
        while !held.is_empty() {
            let take = chunk_len.min(held.len());
            let chunk: Vec<LdpClient> = held.drain(..take).collect();
            scope.spawn(move || {
                for session in chunk {
                    session.bye().expect("held session still live");
                }
            });
        }
    });
    println!(
        "# all {sessions} held sessions answered BYE in {:.2?}",
        closing.elapsed()
    );

    let stats = server.shutdown();
    assert_eq!(stats.sessions, (sessions + active) as u64);
    assert_eq!(stats.frames_absorbed, frames_sent);

    let mut metrics = BenchMetrics::new();
    metrics.record("net_concurrent_sessions", sessions as f64);
    metrics.record("net_concurrent_p99_reply_us", p99_us);
    match metrics.write_to_env_path() {
        Ok(Some(path)) => println!("# metrics written to {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("net_concurrency: {e}");
            std::process::exit(1);
        }
    }
}
