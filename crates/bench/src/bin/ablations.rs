//! Runs the design-choice ablations (sampling vs splitting, level weights,
//! fanout, oracle choice). See `ldp_eval::experiments::ablations`.

fn main() {
    ldp_bench::run_and_print("ablations", ldp_eval::experiments::ablations::run);
}
