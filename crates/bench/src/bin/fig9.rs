//! Regenerates the paper's fig9 artifact. See `ldp_bench::run_and_print`.

fn main() {
    ldp_bench::run_and_print("fig9", ldp_eval::experiments::fig9::run);
}
