//! Durable-storage throughput benchmark for `ldp-service`.
//!
//! Replays a Cauchy population (HH₄ mechanism, like `service_throughput`)
//! through a `DurableService` in group-commit batches, timing the durable
//! ingest path end to end: batch decode, staged all-or-nothing absorb,
//! CRC-framed WAL append, and the fsync policy. Then it simulates a crash
//! (drop without checkpoint), times recovery — full WAL replay back into
//! a fresh service — and asserts the recovered snapshot is *bit-identical*
//! to an in-process service fed the same frames before reporting any
//! number. Both rates feed the CI regression gate.
//!
//! ```text
//! cargo run -p ldp-bench --release --bin wal_throughput
//! LDP_WAL_USERS=400000 LDP_WAL_BATCH=512 \
//!     cargo run -p ldp-bench --release --bin wal_throughput
//! ```

use std::time::Instant;

use ldp_bench::metrics::BenchMetrics;
use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer};
use ldp_service::net::WIRE_V1;
use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy, TailStatus};
use ldp_service::{generate_stream, LdpService};
use ldp_workloads::{CauchyParams, Dataset, DistributionKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let users = env_or("LDP_WAL_USERS", 100_000).max(1);
    let batch = env_or("LDP_WAL_BATCH", 256).max(1) as usize;
    let shards = env_or("LDP_WAL_SHARDS", 4).max(1) as usize;
    let domain = env_or("LDP_SERVICE_DOMAIN", 1_024) as usize;

    let mut rng = StdRng::seed_from_u64(6);
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        users,
        &mut rng,
    );
    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    println!(
        "# wal_throughput: {users} users, domain {domain}, HH_4/OUE, \
         batch {batch} frames, {shards} shards, group-commit fsync every 1 MiB"
    );
    let gen_started = Instant::now();
    let stream = generate_stream(&dataset, users, 60, |value, rng| {
        client.report(value, rng).expect("in-domain value")
    });
    println!(
        "# stream: {} frames, {:.1} MiB, generated in {:.2?}\n",
        stream.len(),
        stream.total_bytes() as f64 / (1024.0 * 1024.0),
        gen_started.elapsed(),
    );

    let durable_config = DurableConfig {
        num_shards: shards,
        segment_bytes: 32 << 20,
        // Group durability: the throughput configuration a deployment
        // that can tolerate a bounded loss window runs with.
        fsync: FsyncPolicy::EveryBytes(1 << 20),
        checkpoint_every_records: 0,
        retain_history: false,
        ..DurableConfig::default()
    };
    let dir = scratch_dir("wal-bench").expect("scratch dir");
    let (durable, _) =
        DurableService::open(&dir, &prototype, durable_config.clone()).expect("open");

    // --- durable ingest ------------------------------------------------
    let started = Instant::now();
    let mut lo = 0;
    while lo < stream.len() {
        let hi = (lo + batch).min(stream.len());
        durable
            .ingest_batch(WIRE_V1, (hi - lo) as u64, stream.frame_span(lo, hi))
            .expect("durable ingest");
        lo = hi;
    }
    durable.sync().expect("final sync");
    let ingest = started.elapsed();
    let append_rate = stream.len() as f64 / ingest.as_secs_f64();
    println!("durable ingest: {ingest:.2?}  ({append_rate:.0} reports/sec)");

    // Crash: drop without checkpoint, so recovery replays the whole log.
    drop(durable);

    // --- recovery replay -----------------------------------------------
    let started = Instant::now();
    let (recovered, report) =
        DurableService::open(&dir, &prototype, durable_config).expect("recover");
    let recovery = started.elapsed();
    assert!(
        matches!(report.tail, TailStatus::Clean),
        "synced log recovered torn: {:?}",
        report.tail
    );
    assert_eq!(report.frames_replayed, stream.len() as u64);
    let replay_rate = report.frames_replayed as f64 / recovery.as_secs_f64();
    println!(
        "recovery: {recovery:.2?}  ({replay_rate:.0} reports/sec over {} records in {} segments)",
        report.records_replayed, report.segments_scanned
    );

    // Identity check before any number is trusted: recovered state must
    // be bit-identical to in-process submission of the same frames.
    let direct = LdpService::new(&prototype, 1).expect("service");
    for i in 0..stream.len() {
        direct.submit_frame(stream.frame(i)).expect("absorb");
    }
    let direct_snap = direct.refresh_snapshot().expect("refresh");
    let recovered_snap = recovered.refresh_snapshot().expect("refresh");
    assert_eq!(recovered_snap.num_reports(), direct_snap.num_reports());
    for (z, (a, b)) in recovered_snap
        .estimate()
        .frequencies()
        .iter()
        .zip(direct_snap.estimate().frequencies())
        .enumerate()
    {
        assert!(
            a.to_bits() == b.to_bits(),
            "recovered and in-process estimates differ at item {z}: {a} vs {b}"
        );
    }
    println!("identity check: recovered snapshot ≡ in-process (bit-for-bit)");
    drop(recovered);
    std::fs::remove_dir_all(&dir).expect("cleanup");

    let mut metrics = BenchMetrics::new();
    metrics.record("wal_users", users as f64);
    metrics.record("wal_batch_frames", batch as f64);
    metrics.record("wal_append_reports_per_sec", append_rate);
    metrics.record("recovery_replay_reports_per_sec", replay_rate);
    match metrics.write_to_env_path() {
        Ok(Some(path)) => println!("\n# metrics appended to {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write metrics: {e}");
            std::process::exit(1);
        }
    }
}
