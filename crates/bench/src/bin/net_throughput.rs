//! Socket-path throughput benchmark for the `ldp-service` network front
//! end.
//!
//! Replays a Cauchy population (HH₄ mechanism, like `service_throughput`)
//! through N concurrent `LdpClient` sessions over 127.0.0.1 into an
//! `LdpServer`, timing end-to-end socket ingest: session framing, batched
//! REPORT messages, wire decode, and staged batch absorption. After the
//! drain it asserts the transport was a *pure function* — the server's
//! final snapshot must be bit-identical to feeding the same frames
//! through `submit_frame` in-process — then times queries over a live
//! session.
//!
//! ```text
//! cargo run -p ldp-bench --release --bin net_throughput
//! LDP_NET_USERS=400000 LDP_NET_CLIENTS=8 \
//!     cargo run -p ldp-bench --release --bin net_throughput
//! ```

use std::sync::Arc;
use std::time::Instant;

use ldp_bench::metrics::BenchMetrics;
use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer};
use ldp_service::net::{Hello, NetConfig};
use ldp_service::obs::instruments::names;
use ldp_service::{generate_stream, LdpClient, LdpServer, LdpService, MetricsRegistry};
use ldp_workloads::{CauchyParams, Dataset, DistributionKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let users = env_or("LDP_NET_USERS", 100_000).max(1);
    let clients = env_or("LDP_NET_CLIENTS", 4).max(1) as usize;
    let batch = env_or("LDP_NET_BATCH", 256).max(1) as usize;
    let workers = env_or("LDP_NET_WORKERS", 4).max(1) as usize;
    let domain = env_or("LDP_SERVICE_DOMAIN", 1_024) as usize;
    let per_client = users.div_ceil(clients as u64);

    let mut rng = StdRng::seed_from_u64(4);
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        users,
        &mut rng,
    );
    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    println!(
        "# net_throughput: {clients} clients × {per_client} users over loopback TCP, \
         domain {domain}, HH_4/OUE, batch {batch} frames, {workers} session workers"
    );
    let gen_started = Instant::now();
    let streams: Vec<_> = (0..clients)
        .map(|c| {
            generate_stream(&dataset, per_client, 40 + c as u64, |value, rng| {
                client.report(value, rng).expect("in-domain value")
            })
        })
        .collect();
    let total_frames: usize = streams.iter().map(ldp_service::EncodedStream::len).sum();
    let total_bytes: usize = streams.iter().map(|s| s.total_bytes()).sum();
    println!(
        "# streams: {total_frames} frames, {:.1} MiB, generated in {:.2?}\n",
        total_bytes as f64 / (1024.0 * 1024.0),
        gen_started.elapsed(),
    );

    // The timed path runs fully instrumented: per-message latency
    // histograms and byte counters are live during ingest, so their cost
    // is inside the rate the CI regression gate compares to the seed.
    let registry = Arc::new(MetricsRegistry::new());
    let service = Arc::new(LdpService::new(&prototype, workers).expect("shards"));
    let server = LdpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            workers,
            registry: Some(Arc::clone(&registry)),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let started = Instant::now();
    let acked: u64 = std::thread::scope(|scope| {
        streams
            .iter()
            .map(|stream| {
                scope.spawn(move || {
                    let mut session =
                        LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>())
                            .expect("connect");
                    let acked = session.send_stream(stream, batch).expect("clean stream");
                    session.bye().expect("clean close");
                    acked
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let ingest = started.elapsed();
    let ingest_rate = acked as f64 / ingest.as_secs_f64();
    assert_eq!(acked, total_frames as u64, "frames lost over the socket");
    println!(
        "# socket ingest: {acked} frames in {ingest:.2?} → {ingest_rate:.0} reports/sec across \
         {clients} sessions"
    );

    // Query serving over a live session (each query refreshes and
    // freezes a snapshot server-side).
    let mut session =
        LdpClient::connect(addr, Hello::plain::<ldp_ranges::HhReport>()).expect("connect");
    let queries = 10u32;
    let started = Instant::now();
    for q in 0..queries {
        let reply = session
            .range(0, domain as u64 - 1)
            .expect("in-bounds query");
        assert_eq!(reply.num_reports, acked);
        assert!((reply.fraction() - 1.0).abs() < 1e-6 || q > 0);
    }
    let query_mean_us = started.elapsed().as_micros() as f64 / f64::from(queries);
    session.bye().expect("clean close");
    println!("# query round-trip (refresh + freeze + answer): mean {query_mean_us:.0} µs");

    let stats = server.shutdown();
    assert_eq!(stats.frames_absorbed, acked);
    assert_eq!(stats.num_reports, acked, "drain lost reports");

    // The telemetry registry is the same accounting path the drain stats
    // read from — its counters must agree exactly with the acked total.
    let telemetry = registry.snapshot();
    assert_eq!(
        telemetry.counter(names::NET_FRAMES_ABSORBED),
        Some(acked),
        "registry lost frames"
    );
    assert_eq!(
        telemetry.counter(names::SHARD_FRAMES_ACCEPTED),
        Some(acked),
        "shard tier disagrees with net tier"
    );
    let report_ns = telemetry
        .histo(names::NET_REPORT_NS)
        .expect("report latency histogram registered");
    println!(
        "# REPORT handling: {} messages, mean {:.0} ns, p99 ≤ {} ns; \
         {} B in, {} B out",
        report_ns.count(),
        report_ns.mean(),
        report_ns.quantile_bound(0.99),
        telemetry.counter(names::NET_BYTES_IN).unwrap_or(0),
        telemetry.counter(names::NET_BYTES_OUT).unwrap_or(0),
    );

    // The transport must be a pure function: in-process submission of the
    // same frames yields a bit-identical snapshot.
    let reference = LdpService::new(&prototype, workers).expect("shards");
    for stream in &streams {
        for i in 0..stream.len() {
            reference.submit_frame(stream.frame(i)).expect("absorb");
        }
    }
    let direct = reference.refresh_snapshot().expect("refresh");
    assert_eq!(direct.num_reports(), stats.final_snapshot.num_reports());
    for (z, (a, b)) in stats
        .final_snapshot
        .estimate()
        .frequencies()
        .iter()
        .zip(direct.estimate().frequencies())
        .enumerate()
    {
        assert!(
            a.to_bits() == b.to_bits(),
            "socket and in-process estimates differ at leaf {z}"
        );
    }
    println!("# identity check passed: socket snapshot ≡ in-process snapshot (bit-for-bit)");

    let mut metrics = BenchMetrics::new();
    metrics.record("net_users", acked as f64);
    metrics.record("net_clients", clients as f64);
    metrics.record("net_batch_frames", batch as f64);
    metrics.record("net_workers", workers as f64);
    metrics.record("net_ingest_reports_per_sec", ingest_rate);
    metrics.record("net_query_mean_us", query_mean_us);
    match metrics.write_to_env_path() {
        Ok(Some(path)) => println!("# metrics written to {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("net_throughput: {e}");
            std::process::exit(1);
        }
    }
}
