//! The benchmark regression gate: compares a fresh `BENCH_results.json`
//! against a committed baseline and exits non-zero on any gated metric
//! regressing beyond tolerance (or disappearing).
//!
//! ```text
//! cargo run -p ldp-bench --release --bin bench_gate -- BENCH_seed.json BENCH_results.json
//! LDP_BENCH_TOLERANCE=0.5 cargo run -p ldp-bench --release --bin bench_gate
//! ```
//!
//! Direction comes from metric names (`*_per_sec` higher-better, `*_ns`
//! lower-better; see `ldp_bench::metrics`), so committing a metric to the
//! baseline is what opts it into gating.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ldp_bench::metrics::{gate, parse_flat_json, tolerance_from_env, Verdict};

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_seed.json".into());
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_results.json".into());
    let tolerance = tolerance_from_env();

    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "# bench_gate: {fresh_path} vs baseline {baseline_path}, tolerance {:.0}%",
        tolerance * 100.0
    );
    println!(
        "{:<44}  {:>14}  {:>14}  verdict",
        "metric", "baseline", "fresh"
    );
    let mut failures = 0u32;
    for row in gate(&baseline, &fresh, tolerance) {
        let fresh_text = row
            .fresh
            .map_or_else(|| "missing".to_string(), |v| format!("{v:.1}"));
        let verdict = match &row.verdict {
            Verdict::Ok => "ok",
            Verdict::Ungated => "context",
            Verdict::Missing => {
                failures += 1;
                "MISSING"
            }
            Verdict::Regressed(msg) => {
                failures += 1;
                eprintln!("bench_gate: REGRESSION: {msg}");
                "REGRESSED"
            }
        };
        println!(
            "{:<44}  {:>14.1}  {:>14}  {verdict}",
            row.name, row.baseline, fresh_text
        );
    }

    if failures > 0 {
        eprintln!("bench_gate: {failures} gated metric(s) regressed");
        ExitCode::FAILURE
    } else {
        println!("# all gated metrics within tolerance");
        ExitCode::SUCCESS
    }
}
