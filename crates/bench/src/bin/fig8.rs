//! Regenerates the paper's fig8 artifact. See `ldp_bench::run_and_print`.

fn main() {
    ldp_bench::run_and_print("fig8", ldp_eval::experiments::fig8::run);
}
