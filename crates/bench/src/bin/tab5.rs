//! Regenerates the paper's tab5 artifact. See `ldp_bench::run_and_print`.

fn main() {
    ldp_bench::run_and_print("tab5", ldp_eval::experiments::tab5::run);
}
