//! Replication catch-up benchmark for `ldp-service`.
//!
//! A durable leader is pre-loaded with a Cauchy population (HH₄
//! mechanism, like `wal_throughput`) so its log holds a known number of
//! FRAMES records, then served over loopback TCP. A cold follower
//! subscribes from position 0 and the benchmark times how fast the
//! replication stream drains the backlog: leader-side WAL reads, the
//! bounded push stream, follower-side decode + all-or-nothing absorb,
//! and the follower's own WAL appends — the full standby-provisioning
//! path. Before any number is reported, the caught-up follower is
//! promoted and its snapshot asserted *bit-identical* to the leader's.
//!
//! Emits one gated metric:
//!
//! * `repl_catchup_records_per_sec` — WAL records applied per second by
//!   a cold follower catching up over loopback. Higher is better.
//!
//! ```text
//! cargo run -p ldp-bench --release --bin repl_catchup
//! LDP_REPL_USERS=400000 LDP_REPL_BATCH=64 \
//!     cargo run -p ldp-bench --release --bin repl_catchup
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ldp_bench::metrics::BenchMetrics;
use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer};
use ldp_service::net::{NetConfig, WIRE_V1};
use ldp_service::storage::{scratch_dir, DurableConfig, DurableService, FsyncPolicy};
use ldp_service::{generate_stream, FollowerService, LdpServer};
use ldp_workloads::{CauchyParams, Dataset, DistributionKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let users = env_or("LDP_REPL_USERS", 100_000).max(1);
    let batch = env_or("LDP_REPL_BATCH", 64).max(1) as usize;
    let domain = env_or("LDP_SERVICE_DOMAIN", 1_024) as usize;

    let mut rng = StdRng::seed_from_u64(6);
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        users,
        &mut rng,
    );
    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    println!(
        "# repl_catchup: {users} users, domain {domain}, HH_4/OUE, \
         batch {batch} frames, cold follower over loopback"
    );
    let stream = generate_stream(&dataset, users, 60, |value, rng| {
        client.report(value, rng).expect("in-domain value")
    });

    let durable_config = DurableConfig {
        num_shards: 4,
        segment_bytes: 8 << 20,
        fsync: FsyncPolicy::EveryBytes(1 << 20),
        checkpoint_every_records: 0,
        retain_history: false,
        ..DurableConfig::default()
    };

    // Pre-load the leader's log: the backlog the follower must drain.
    let leader_dir = scratch_dir("repl-bench-leader").expect("scratch dir");
    let (leader, _) =
        DurableService::open(&leader_dir, &prototype, durable_config.clone()).expect("open leader");
    let leader = Arc::new(leader);
    let mut records = 0u64;
    let mut lo = 0;
    while lo < stream.len() {
        let hi = (lo + batch).min(stream.len());
        leader
            .ingest_batch(WIRE_V1, (hi - lo) as u64, stream.frame_span(lo, hi))
            .expect("leader ingest");
        records += 1;
        lo = hi;
    }
    leader.sync().expect("leader sync");
    let server = LdpServer::bind_durable("127.0.0.1:0", Arc::clone(&leader), NetConfig::default())
        .expect("bind leader");
    let addr = format!("{}", server.local_addr());
    println!(
        "# leader backlog: {records} WAL records ({} frames), serving on {addr}\n",
        stream.len()
    );

    // --- cold catch-up --------------------------------------------------
    let follower_dir = scratch_dir("repl-bench-follower").expect("scratch dir");
    let started = Instant::now();
    let (follower, _) =
        FollowerService::open(&follower_dir, &prototype, &addr, durable_config).expect("follower");
    let deadline = Instant::now() + Duration::from_secs(600);
    while follower.position() < records {
        assert!(
            Instant::now() < deadline,
            "follower stalled at {} of {records}: {:?}",
            follower.position(),
            follower.last_error()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let catchup = started.elapsed();
    let record_rate = records as f64 / catchup.as_secs_f64();
    let report_rate = stream.len() as f64 / catchup.as_secs_f64();
    println!(
        "catch-up: {catchup:.2?}  ({record_rate:.0} records/sec, {report_rate:.0} reports/sec)"
    );

    // Identity check before any number is trusted: the caught-up replica
    // must be bit-identical to the leader.
    let leader_snap = leader.refresh_snapshot().expect("leader refresh");
    let promoted = follower.promote().expect("promote");
    let replica_snap = promoted.refresh_snapshot().expect("replica refresh");
    assert_eq!(replica_snap.num_reports(), leader_snap.num_reports());
    for (z, (a, b)) in replica_snap
        .estimate()
        .frequencies()
        .iter()
        .zip(leader_snap.estimate().frequencies())
        .enumerate()
    {
        assert!(
            a.to_bits() == b.to_bits(),
            "replica and leader estimates differ at item {z}: {a} vs {b}"
        );
    }
    println!("identity check: caught-up replica ≡ leader (bit-for-bit)");

    let _ = server.shutdown();
    drop(leader);
    drop(promoted);
    std::fs::remove_dir_all(&leader_dir).expect("cleanup leader");
    std::fs::remove_dir_all(&follower_dir).expect("cleanup follower");

    let mut metrics = BenchMetrics::new();
    metrics.record("repl_users", users as f64);
    metrics.record("repl_batch_frames", batch as f64);
    metrics.record("repl_catchup_records_per_sec", record_rate);
    match metrics.write_to_env_path() {
        Ok(Some(path)) => println!("\n# metrics appended to {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write metrics: {e}");
            std::process::exit(1);
        }
    }
}
