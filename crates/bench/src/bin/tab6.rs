//! Regenerates the paper's tab6 artifact. See `ldp_bench::run_and_print`.

fn main() {
    ldp_bench::run_and_print("tab6", ldp_eval::experiments::tab6::run);
}
