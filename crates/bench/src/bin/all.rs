//! Regenerates every table and figure of the paper's evaluation in one go.

fn main() {
    ldp_bench::run_and_print("fig4", ldp_eval::experiments::fig4::run);
    ldp_bench::run_and_print("tab5 (Figure 5)", ldp_eval::experiments::tab5::run);
    ldp_bench::run_and_print("tab6 (Figure 6)", ldp_eval::experiments::tab6::run);
    ldp_bench::run_and_print("tab7 (Figure 7)", ldp_eval::experiments::tab7::run);
    ldp_bench::run_and_print("fig8", ldp_eval::experiments::fig8::run);
    ldp_bench::run_and_print("fig9", ldp_eval::experiments::fig9::run);
}
