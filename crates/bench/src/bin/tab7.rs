//! Regenerates the paper's tab7 artifact. See `ldp_bench::run_and_print`.

fn main() {
    ldp_bench::run_and_print("tab7", ldp_eval::experiments::tab7::run);
}
