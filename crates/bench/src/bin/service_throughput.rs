//! Sharded-ingestion throughput benchmark for `ldp-service`.
//!
//! Generates one deterministic encoded report stream (a Cauchy population
//! replayed through the `HH₄` mechanism client) and ingests it repeatedly
//! at increasing shard counts, timing wire-decode + absorb end to end.
//! On a multi-core machine the workers run on separate cores and
//! throughput scales with the shard count (the acceptance target is ≥2×
//! at 4 shards); on a single hardware thread the sharded runs degenerate
//! to sequential execution plus scheduling overhead, which the output
//! makes visible rather than hiding.
//!
//! ```text
//! cargo run -p ldp-bench --release --bin service_throughput
//! LDP_SERVICE_USERS=1000000 LDP_SERVICE_SHARDS=1,2,4,8,16 \
//!     cargo run -p ldp-bench --release --bin service_throughput
//! ```

use std::time::Instant;

use ldp_bench::metrics::BenchMetrics;
use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer, RangeEstimate};
use ldp_service::obs::instruments::names;
use ldp_service::{LdpService, MetricsRegistry, RangeSnapshot, ShardedAggregator};
use ldp_workloads::{CauchyParams, Dataset, DistributionKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn shard_counts() -> Vec<usize> {
    std::env::var("LDP_SERVICE_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n: &usize| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let users = env_or("LDP_SERVICE_USERS", 100_000).max(1);
    let domain = env_or("LDP_SERVICE_DOMAIN", 1_024) as usize;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let mut rng = StdRng::seed_from_u64(1);
    let dataset = Dataset::sample(
        DistributionKind::Cauchy(CauchyParams::paper_default()),
        domain,
        users,
        &mut rng,
    );
    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    println!(
        "# service_throughput: {users} users, domain {domain}, HH_4/OUE, {cores} hardware threads"
    );
    let gen_started = Instant::now();
    let stream = ldp_service::generate_stream(&dataset, users, 2, |value, rng| {
        client.report(value, rng).expect("in-domain value")
    });
    println!(
        "# stream: {} frames, {:.1} MiB, {:.1} B/report, generated in {:.2?}\n",
        stream.len(),
        stream.total_bytes() as f64 / (1024.0 * 1024.0),
        stream.mean_frame_bytes(),
        gen_started.elapsed(),
    );

    let mut metrics = BenchMetrics::new();
    metrics.record("service_users", users as f64);
    metrics.record("service_domain", domain as f64);
    metrics.record("service_mean_frame_bytes", stream.mean_frame_bytes());

    println!(
        "{:>7}  {:>12}  {:>14}  {:>9}",
        "shards", "ingest", "reports/sec", "speedup"
    );
    let mut base_rate = None;
    let mut reference: Option<HhServer> = None;
    let mut last_absorb = None;
    for shards in shard_counts() {
        // The timed path runs fully instrumented — the registry's cost is
        // inside the rate the CI regression gate compares to the seed.
        let registry = MetricsRegistry::new();
        let mut pool = ShardedAggregator::new(&prototype, shards).expect("non-zero shard count");
        pool.attach_metrics(&registry);
        let started = Instant::now();
        pool.ingest_encoded(&stream).expect("well-formed stream");
        let elapsed = started.elapsed();
        let rate = stream.len() as f64 / elapsed.as_secs_f64();
        let speedup = rate / *base_rate.get_or_insert(rate);
        println!("{shards:>7}  {elapsed:>12.2?}  {rate:>14.0}  {speedup:>8.2}x");
        metrics.record(&format!("service_shards{shards}_reports_per_sec"), rate);

        assert_eq!(
            pool.num_reports(),
            users,
            "reports lost during sharded ingest"
        );
        // The telemetry must agree exactly with the pool's own accounting.
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter(names::SHARD_FRAMES_ACCEPTED),
            Some(stream.len() as u64),
            "registry lost frames"
        );
        assert_eq!(snapshot.counter(names::SHARD_FRAMES_REJECTED), Some(0));
        last_absorb = snapshot.histo(names::SHARD_ABSORB_NS).cloned();
        let merged = pool.merged().expect("merge");
        // Every shard count must produce the *identical* merged state.
        let est = merged.estimate_consistent().to_frequency_estimate();
        match &reference {
            None => reference = Some(merged),
            Some(r) => {
                let ref_est = r.estimate_consistent().to_frequency_estimate();
                for z in 0..domain {
                    assert!(
                        est.point(z).to_bits() == ref_est.point(z).to_bits(),
                        "shard count {shards} changed the merged estimate at leaf {z}"
                    );
                }
            }
        }
    }

    // What the telemetry saw on the last run: per-batch absorb latency
    // from the shard tier's own histogram.
    if let Some(absorb) = last_absorb {
        println!(
            "\n# shard absorb (last run): {} batches, mean {:.0} ns, p99 ≤ {} ns",
            absorb.count(),
            absorb.mean(),
            absorb.quantile_bound(0.99),
        );
    }

    // Refresh phase: time repeated snapshot refreshes while the stream
    // keeps arriving. `LDP_DELTA_REFRESH=off` turns this into a negative
    // control — every refresh must rebuild from scratch and the delta
    // counter must stay zero — while the default run must take the delta
    // path after its first refresh. Both paths must agree bit for bit
    // with an independent clone-and-merge.
    {
        let registry = MetricsRegistry::new();
        let service = LdpService::new(&prototype, 4).expect("non-zero shard count");
        service.attach_metrics(&registry);
        let refreshes = env_or("LDP_SERVICE_REFRESHES", 16).max(2) as usize;
        let chunk = stream.len().div_ceil(refreshes).max(1);
        let mut did = 0u64;
        let mut refresh_ns = 0u128;
        let mut lo = 0;
        while lo < stream.len() {
            let hi = (lo + chunk).min(stream.len());
            service
                .submit_wire_batch(2, (hi - lo) as u64, stream.frame_span(lo, hi))
                .expect("well-formed stream");
            let started = Instant::now();
            let snap = service.refresh_snapshot().expect("refresh");
            refresh_ns += started.elapsed().as_nanos();
            let oracle = RangeSnapshot::freeze(&service.merged_state().expect("merge"), 0);
            assert_eq!(snap.num_reports(), oracle.num_reports());
            for z in 0..domain {
                assert!(
                    snap.point(z).to_bits() == oracle.point(z).to_bits(),
                    "refresh {did} diverged from clone-and-merge at leaf {z}"
                );
            }
            lo = hi;
            did += 1;
        }
        let snapshot = registry.snapshot();
        let full = snapshot.counter(names::SERVICE_REFRESHES_FULL).unwrap_or(0);
        let delta = snapshot
            .counter(names::SERVICE_REFRESHES_DELTA)
            .unwrap_or(0);
        if service.delta_refresh_enabled() {
            assert_eq!(
                (full, delta),
                (1, did - 1),
                "delta refresh enabled but refreshes did not take the delta path"
            );
        } else {
            assert_eq!(
                (full, delta),
                (did, 0),
                "LDP_DELTA_REFRESH=off but a refresh still took the delta path"
            );
        }
        let mean_ns = refresh_ns as f64 / did as f64;
        println!(
            "\n# refresh phase: {did} refreshes, mean {:.0} ns (delta {}), full={full} delta={delta}, all bit-identical to clone-and-merge",
            mean_ns,
            if service.delta_refresh_enabled() { "on" } else { "off" },
        );
        metrics.record("service_refresh_mean_ns", mean_ns);
    }

    // Close the loop: the merged state answers queries correctly.
    let snap = RangeSnapshot::freeze(&reference.expect("at least one run"), 1);
    let (a, b) = (domain / 4, 3 * domain / 4);
    let truth = dataset.true_range(a, b);
    println!(
        "\n# snapshot check: range [{a},{b}] = {:.4} (truth {truth:.4}), median = {}",
        snap.range(a, b),
        snap.quantile(0.5),
    );

    match metrics.write_to_env_path() {
        Ok(Some(path)) => println!("# metrics written to {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("service_throughput: {e}");
            std::process::exit(1);
        }
    }
}
