//! Regenerates the paper's fig4 artifact. See `ldp_bench::run_and_print`.

fn main() {
    ldp_bench::run_and_print("fig4", ldp_eval::experiments::fig4::run);
}
