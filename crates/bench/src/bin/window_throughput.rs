//! Windowed-streaming throughput benchmark for `ldp-service`.
//!
//! Replays a *drifting* population (low quarter → high quarter of the
//! domain) through a windowed `LdpService`: every frame is epoch-tagged
//! (wire v2), epochs seal in lockstep across shards, and the ring retires
//! the oldest epoch by exact subtraction. Measures end-to-end ingest
//! throughput and the per-seal rotation cost — the number the epoch ring
//! exists to keep `O(state)` instead of `O(window · state)` — then
//! cross-checks that the final window is bit-identical to a from-scratch
//! merge of the covered epochs and that the window median tracked the
//! drift.
//!
//! ```text
//! cargo run -p ldp-bench --release --bin window_throughput
//! LDP_WINDOW_USERS=100000 LDP_WINDOW_EPOCHS=12 \
//!     cargo run -p ldp-bench --release --bin window_throughput
//! ```

use std::time::Instant;

use ldp_bench::metrics::BenchMetrics;
use ldp_freq_oracle::Epsilon;
use ldp_ranges::{HhClient, HhConfig, HhServer, MergeableServer, RangeEstimate};
use ldp_service::{decode_epoch_frame, generate_drifting_epochs, LdpService};
use ldp_workloads::Dataset;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let users_per_epoch = env_or("LDP_WINDOW_USERS", 20_000).max(1);
    let epochs = env_or("LDP_WINDOW_EPOCHS", 8).max(2) as usize;
    let window = env_or("LDP_WINDOW_LEN", 3).max(1) as usize;
    let shards = env_or("LDP_WINDOW_SHARDS", 4).max(1) as usize;
    let domain = env_or("LDP_SERVICE_DOMAIN", 1_024) as usize;

    let config = HhConfig::new(domain, 4, Epsilon::from_exp(3.0)).expect("valid config");
    let client = HhClient::new(config.clone()).expect("client");
    let prototype = HhServer::new(config).expect("server");

    // Drifting endpoints: uniform over the low quarter → the high quarter.
    let mut low = vec![0u64; domain];
    let mut high = vec![0u64; domain];
    for z in 0..domain / 4 {
        low[z] = 1;
        high[domain - 1 - z] = 1;
    }
    println!(
        "# window_throughput: {epochs} epochs × {users_per_epoch} users, domain {domain}, \
         window {window}, {shards} shards, HH_4/OUE, drifting population"
    );
    let gen_started = Instant::now();
    let streams = generate_drifting_epochs(
        &Dataset::from_counts(low),
        &Dataset::from_counts(high),
        epochs,
        users_per_epoch,
        3,
        |value, rng| client.report(value, rng).expect("in-domain value"),
    );
    let total_bytes: usize = streams.iter().map(|s| s.total_bytes()).sum();
    println!(
        "# streams: {} epoch-tagged frames, {:.1} MiB, generated in {:.2?}\n",
        streams
            .iter()
            .map(ldp_service::EncodedStream::len)
            .sum::<usize>(),
        total_bytes as f64 / (1024.0 * 1024.0),
        gen_started.elapsed(),
    );

    let service = LdpService::windowed(&prototype, shards, window).expect("valid window");
    println!(
        "{:>6}  {:>12}  {:>14}  {:>12}  {:>14}",
        "epoch", "ingest", "reports/sec", "seal", "window median"
    );
    let mut ingest_total = 0.0f64;
    let mut seal_total_ns = 0.0f64;
    let mut medians = Vec::new();
    for (e, stream) in streams.iter().enumerate() {
        let started = Instant::now();
        for i in 0..stream.len() {
            service
                .submit_epoch_frame(stream.frame(i))
                .expect("well-formed current-epoch frame");
        }
        let ingest = started.elapsed();
        ingest_total += ingest.as_secs_f64();

        let started = Instant::now();
        service.seal_epoch().expect("seal");
        let seal = started.elapsed();
        seal_total_ns += seal.as_nanos() as f64;

        let median = service
            .window_snapshot(window)
            .expect("sealed epochs exist")
            .quantile(0.5);
        medians.push(median);
        let rate = stream.len() as f64 / ingest.as_secs_f64();
        println!("{e:>6}  {ingest:>12.2?}  {rate:>14.0}  {seal:>12.2?}  {median:>14}");
    }

    let total_reports = epochs as f64 * users_per_epoch as f64;
    let ingest_rate = total_reports / ingest_total;
    let seal_mean_ns = seal_total_ns / epochs as f64;

    // Identity check: the final window must equal a fresh server that
    // absorbed only the covered epochs, bit-for-bit.
    let snap = service.window_snapshot(window).expect("sealed epochs");
    let mut scratch = prototype.clone();
    for stream in &streams[epochs - window.min(epochs)..] {
        for i in 0..stream.len() {
            let (_, report, _) = decode_epoch_frame::<ldp_ranges::HhReport>(stream.frame(i))
                .expect("well-formed frame");
            MergeableServer::absorb(&mut scratch, &report).expect("absorb");
        }
    }
    assert_eq!(
        snap.num_reports(),
        scratch.num_reports(),
        "window lost reports"
    );
    let direct = scratch.estimate_consistent().to_frequency_estimate();
    for z in 0..domain {
        assert!(
            snap.point(z).to_bits() == direct.point(z).to_bits(),
            "ring-rotated window differs from scratch merge at leaf {z}"
        );
    }

    // Drift check: the window median must march from the low quarter to
    // the high quarter. Only statistically meaningful with a real
    // population per epoch, so tiny (smoke/degenerate) runs skip it.
    let (first, last) = (*medians.first().unwrap(), *medians.last().unwrap());
    if users_per_epoch >= 2_000 {
        assert!(
            first < domain / 2 && last >= domain / 2 && first < last,
            "window did not track the drift: medians {first} → {last}"
        );
    }
    println!(
        "\n# identity check passed; window median moved {first} → {last}; \
         ingest {ingest_rate:.0} reports/sec, mean seal {:.0} ns",
        seal_mean_ns
    );

    let mut metrics = BenchMetrics::new();
    metrics.record("window_users_per_epoch", users_per_epoch as f64);
    metrics.record("window_epochs", epochs as f64);
    metrics.record("window_len", window as f64);
    metrics.record("window_shards", shards as f64);
    metrics.record("window_ingest_reports_per_sec", ingest_rate);
    metrics.record("window_seal_mean_ns", seal_mean_ns);
    match metrics.write_to_env_path() {
        Ok(Some(path)) => println!("# metrics written to {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("window_throughput: {e}");
            std::process::exit(1);
        }
    }
}
