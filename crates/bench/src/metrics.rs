//! Machine-readable benchmark metrics and the CI regression gate.
//!
//! The benchmark binaries historically printed human tables only, so the
//! repo recorded no performance trajectory at all — speedups and
//! regressions alike were invisible to CI. This module gives them a
//! second output: a flat JSON object mapping metric names to numbers,
//! written to the path in `LDP_BENCH_JSON` (merging with whatever an
//! earlier binary already wrote there, so `service_throughput` and
//! `window_throughput` share one `BENCH_results.json`).
//!
//! The gate ([`gate`], driven by the `bench_gate` binary) compares a
//! fresh results file against a committed baseline. Metric direction is
//! encoded in the name, so the baseline file alone decides what is
//! gated:
//!
//! * `*_per_sec` — throughput, higher is better: fail when
//!   `fresh < baseline · (1 − tolerance)`.
//! * `*_sessions` — capacity (concurrent sessions held), higher is
//!   better, same rule as throughput.
//! * `*_ns` / `*_us` — cost (latency in nanoseconds or microseconds),
//!   lower is better: fail when `fresh > baseline · (1 + tolerance)`.
//! * anything else — context (shard counts, epoch counts): never gated.
//!
//! The default tolerance is deliberately loose (30%) because CI runners
//! are noisy; the gate exists to catch *step* regressions (an accidental
//! `O(K)` rotation, a lost parallel path), not single-digit drift.
//!
//! The environment bakes in no JSON dependency, so the format is kept to
//! exactly what a ten-line parser handles: one flat object, string keys,
//! finite numeric values.

use std::collections::BTreeMap;

/// Environment variable naming the JSON file benchmarks write to.
pub const BENCH_JSON_ENV: &str = "LDP_BENCH_JSON";
/// Environment variable overriding the gate's relative tolerance.
pub const TOLERANCE_ENV: &str = "LDP_BENCH_TOLERANCE";
/// Default relative tolerance: a metric may regress by up to 30% before
/// the gate fails (noisy-runner headroom).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// An ordered collection of named benchmark measurements.
#[derive(Debug, Default, Clone)]
pub struct BenchMetrics {
    values: BTreeMap<String, f64>,
}

impl BenchMetrics {
    /// An empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement (overwriting a previous value of the same
    /// name). Non-finite values are recorded as `0` — JSON has no `NaN`,
    /// and the gate treats a zero throughput *or* a zero cost as a broken
    /// measurement, failing loudly instead of silently.
    pub fn record(&mut self, name: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.values.insert(name.to_string(), v);
    }

    /// The recorded values, ordered by name.
    #[must_use]
    pub fn values(&self) -> &BTreeMap<String, f64> {
        &self.values
    }

    /// Serializes as a flat, sorted, pretty-printed JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.values.iter().enumerate() {
            let sep = if i + 1 == self.values.len() { "" } else { "," };
            // `{v:?}` prints f64 with enough digits to round-trip.
            out.push_str(&format!("  \"{k}\": {v:?}{sep}\n"));
        }
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes (merging) to the file named by [`BENCH_JSON_ENV`], if set.
    /// Existing entries under other names survive, so several benchmark
    /// binaries can contribute to one results file.
    ///
    /// # Errors
    ///
    /// Propagates file-system and parse failures.
    pub fn write_to_env_path(&self) -> Result<Option<String>, String> {
        let Ok(path) = std::env::var(BENCH_JSON_ENV) else {
            return Ok(None);
        };
        let mut merged = match std::fs::read_to_string(&path) {
            Ok(existing) => parse_flat_json(&existing)
                .map_err(|e| format!("existing {path} is not a metrics file: {e}"))?,
            Err(_) => BTreeMap::new(),
        };
        merged.extend(self.values.clone());
        let all = Self { values: merged };
        std::fs::write(&path, all.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        Ok(Some(path))
    }
}

/// Parses the flat `{"name": number, ...}` object [`BenchMetrics`]
/// writes. Tolerates arbitrary whitespace; rejects anything nested,
/// non-numeric, or trailing.
///
/// # Errors
///
/// Returns a human-readable description of the first structural problem.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut values = BTreeMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected one {...} object")?
        .trim();
    if body.is_empty() {
        return Ok(values);
    }
    for (i, entry) in body.split(',').enumerate() {
        let entry = entry.trim();
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("entry {i}: expected \"name\": value, got {entry:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("entry {i}: key is not a quoted string"))?;
        if key.is_empty() || key.contains(['"', '\\']) {
            return Err(format!("entry {i}: unsupported key {key:?}"));
        }
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("entry {i} ({key}): value is not a plain number"))?;
        if !value.is_finite() {
            return Err(format!("entry {i} ({key}): value is not finite"));
        }
        if values.insert(key.to_string(), value).is_some() {
            return Err(format!("entry {i}: duplicate key {key:?}"));
        }
    }
    Ok(values)
}

/// How the gate judged one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (or improved).
    Ok,
    /// Regressed beyond tolerance; carries the violation message.
    Regressed(String),
    /// Present in the baseline, absent from the fresh results — a
    /// benchmark stopped reporting, which the gate must not ignore.
    Missing,
    /// Not a gated metric (no direction suffix); context only.
    Ungated,
}

/// One gate comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value, if reported.
    pub fresh: Option<f64>,
    /// Judgement.
    pub verdict: Verdict,
}

/// Compares fresh results against a baseline at the given relative
/// tolerance, returning one row per baseline metric. The run regresses
/// iff any row's verdict is [`Verdict::Regressed`] or
/// [`Verdict::Missing`].
#[must_use]
pub fn gate(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|(name, &base)| {
            let higher_is_better = name.ends_with("_per_sec") || name.ends_with("_sessions");
            let lower_is_better = name.ends_with("_ns") || name.ends_with("_us");
            let current = fresh.get(name).copied();
            let verdict = match current {
                _ if !higher_is_better && !lower_is_better => Verdict::Ungated,
                None => Verdict::Missing,
                // A cost metric at (or below) zero is a broken
                // measurement, not an infinitely fast one — without this
                // a NaN timing recorded as 0 would sail through the
                // lower-is-better check.
                Some(now) if lower_is_better && now <= 0.0 => Verdict::Regressed(format!(
                    "{name}: cost reported as {now:.1} — measurement is broken, not free"
                )),
                Some(now) => {
                    let failed = if higher_is_better {
                        now < base * (1.0 - tolerance)
                    } else {
                        now > base * (1.0 + tolerance)
                    };
                    if failed {
                        let direction = if higher_is_better { "below" } else { "above" };
                        Verdict::Regressed(format!(
                            "{name}: {now:.1} is {direction} the {:.0}%-tolerance band around \
                             baseline {base:.1}",
                            tolerance * 100.0
                        ))
                    } else {
                        Verdict::Ok
                    }
                }
            };
            Comparison {
                name: name.clone(),
                baseline: base,
                fresh: current,
                verdict,
            }
        })
        .collect()
}

/// The gate tolerance: [`TOLERANCE_ENV`] or [`DEFAULT_TOLERANCE`].
#[must_use]
pub fn tolerance_from_env() -> f64 {
    std::env::var(TOLERANCE_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| (0.0..1.0).contains(t))
        .unwrap_or(DEFAULT_TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn json_roundtrips() {
        let mut m = BenchMetrics::new();
        m.record("window_ingest_reports_per_sec", 123_456.75);
        m.record("window_seal_mean_ns", 8_900.0);
        m.record("window_shards", 4.0);
        m.record("nan_guard", f64::NAN);
        let text = m.to_json();
        let parsed = parse_flat_json(&text).unwrap();
        assert_eq!(parsed, {
            let mut want = metrics(&[
                ("window_ingest_reports_per_sec", 123_456.75),
                ("window_seal_mean_ns", 8_900.0),
                ("window_shards", 4.0),
            ]);
            want.insert("nan_guard".into(), 0.0);
            want
        });
        // Empty object parses too.
        assert!(parse_flat_json("{}").unwrap().is_empty());
        assert!(parse_flat_json("{ }\n").unwrap().is_empty());
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "[1, 2]",
            "{\"a\": }",
            "{\"a\": \"str\"}",
            "{\"a\": {\"nested\": 1}}",
            "{a: 1}",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": inf}",
        ] {
            assert!(parse_flat_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn gate_passes_identical_and_improved_runs() {
        let base = metrics(&[
            ("t_reports_per_sec", 100_000.0),
            ("seal_mean_ns", 5_000.0),
            ("shards", 4.0),
        ]);
        let mut fresh = base.clone();
        let rows = gate(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(rows
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Ok | Verdict::Ungated)));

        // Faster throughput and cheaper rotation both pass.
        fresh.insert("t_reports_per_sec".into(), 250_000.0);
        fresh.insert("seal_mean_ns".into(), 1_000.0);
        let rows = gate(&base, &fresh, DEFAULT_TOLERANCE);
        assert!(rows
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Ok | Verdict::Ungated)));
    }

    #[test]
    fn gate_fails_doctored_baseline() {
        // The acceptance check: feed the gate a baseline doctored to
        // twice the measured throughput — it must fail.
        let fresh = metrics(&[("service_1shard_reports_per_sec", 100_000.0)]);
        let doctored = metrics(&[("service_1shard_reports_per_sec", 200_000.0)]);
        let rows = gate(&doctored, &fresh, DEFAULT_TOLERANCE);
        assert!(
            rows.iter()
                .any(|r| matches!(r.verdict, Verdict::Regressed(_))),
            "doctored baseline passed the gate"
        );

        // A cost metric doctored to half the measured rotation time
        // fails symmetrically.
        let fresh = metrics(&[("rotation_ns", 10_000.0)]);
        let doctored = metrics(&[("rotation_ns", 5_000.0)]);
        let rows = gate(&doctored, &fresh, DEFAULT_TOLERANCE);
        assert!(rows
            .iter()
            .any(|r| matches!(r.verdict, Verdict::Regressed(_))));
    }

    #[test]
    fn gate_rejects_zero_cost_as_broken_measurement() {
        // A NaN timing is recorded as 0; for a lower-is-better metric
        // that must fail, not read as infinitely fast.
        let base = metrics(&[("seal_mean_ns", 5_000.0)]);
        let rows = gate(&base, &metrics(&[("seal_mean_ns", 0.0)]), 0.30);
        assert!(matches!(rows[0].verdict, Verdict::Regressed(_)));
    }

    #[test]
    fn gate_directions_cover_all_four_suffixes() {
        let base = metrics(&[
            ("net_concurrent_sessions", 10_000.0),
            ("net_concurrent_p99_reply_us", 2_000.0),
        ]);
        // Holding fewer sessions or replying slower both fail.
        let rows = gate(
            &base,
            &metrics(&[
                ("net_concurrent_sessions", 5_000.0),
                ("net_concurrent_p99_reply_us", 9_000.0),
            ]),
            DEFAULT_TOLERANCE,
        );
        assert!(rows
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Regressed(_))));
        // More sessions and faster replies both pass.
        let rows = gate(
            &base,
            &metrics(&[
                ("net_concurrent_sessions", 20_000.0),
                ("net_concurrent_p99_reply_us", 500.0),
            ]),
            DEFAULT_TOLERANCE,
        );
        assert!(rows.iter().all(|r| matches!(r.verdict, Verdict::Ok)));
        // A zero p99 is a broken measurement, same as a zero `_ns` cost.
        let rows = gate(
            &base,
            &metrics(&[
                ("net_concurrent_sessions", 10_000.0),
                ("net_concurrent_p99_reply_us", 0.0),
            ]),
            DEFAULT_TOLERANCE,
        );
        assert!(rows
            .iter()
            .any(|r| matches!(r.verdict, Verdict::Regressed(_))));
    }

    #[test]
    fn gate_respects_tolerance_band() {
        let base = metrics(&[("x_per_sec", 100.0)]);
        // 25% down: inside the 30% band.
        let rows = gate(&base, &metrics(&[("x_per_sec", 75.0)]), 0.30);
        assert!(matches!(rows[0].verdict, Verdict::Ok));
        // 35% down: outside.
        let rows = gate(&base, &metrics(&[("x_per_sec", 65.0)]), 0.30);
        assert!(matches!(rows[0].verdict, Verdict::Regressed(_)));
    }

    #[test]
    fn gate_flags_missing_metrics_and_skips_context() {
        let base = metrics(&[("gone_per_sec", 10.0), ("shards", 4.0)]);
        let rows = gate(&base, &BTreeMap::new(), DEFAULT_TOLERANCE);
        let by_name: BTreeMap<_, _> = rows.iter().map(|r| (r.name.as_str(), &r.verdict)).collect();
        assert!(matches!(by_name["gone_per_sec"], Verdict::Missing));
        assert!(matches!(by_name["shards"], Verdict::Ungated));
    }
}
