//! Shared plumbing for the benchmark binaries and criterion benches.
//!
//! The figure/table binaries (`fig4`, `tab5`, `tab6`, `tab7`, `fig8`,
//! `fig9`, `all`) regenerate the paper's evaluation artifacts:
//!
//! ```text
//! cargo run -p ldp-bench --release --bin fig4      # laptop scale
//! LDP_FULL_SCALE=1 cargo run -p ldp-bench --release --bin fig4   # paper scale
//! ```

pub mod metrics;

use ldp_eval::{EvalContext, Table};

/// Runs one experiment entry point and prints its table with a scale
/// banner.
pub fn run_and_print(name: &str, run: fn(&EvalContext) -> Table) {
    let ctx = EvalContext::from_env();
    let scale = if ctx.full_scale {
        "paper scale (LDP_FULL_SCALE=1)"
    } else {
        "laptop scale"
    };
    println!(
        "# {name}: N = 2^{}, repetitions = {}, domains = {:?} [{scale}]\n",
        ctx.population.trailing_zeros(),
        ctx.repetitions,
        ctx.domains,
    );
    let started = std::time::Instant::now();
    let table = run(&ctx);
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());
}

/// A micro-scale context for criterion accuracy benches: small enough that
/// each figure's pipeline runs in milliseconds while still exercising
/// every code path.
#[must_use]
pub fn micro_context() -> EvalContext {
    EvalContext {
        population: 1 << 13,
        repetitions: 1,
        seed: 99,
        domains: vec![64],
        full_scale: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_context_is_tiny() {
        let c = micro_context();
        assert!(c.population <= 1 << 14);
        assert_eq!(c.repetitions, 1);
    }
}
