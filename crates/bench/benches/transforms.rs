//! Benchmarks for the transform substrate: FWHT, Haar, and B-adic
//! decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldp_transforms::{decompose_range, fwht, haar_forward, CompleteTree, HaarPyramid};

fn bench_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht");
    for log in [10u32, 14, 18] {
        let n = 1usize << log;
        let data: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut x = data.clone();
                fwht(&mut x);
                black_box(x)
            })
        });
    }
    group.finish();
}

fn bench_haar(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_forward");
    for log in [10u32, 14, 18] {
        let n = 1usize << log;
        let data: Vec<f64> = (0..n).map(|i| (i % 89) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(haar_forward(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_haar_range_sum(c: &mut Criterion) {
    // O(log D) range evaluation on the pyramid.
    let n = 1usize << 20;
    let data: Vec<f64> = (0..n).map(|i| (i % 83) as f64).collect();
    let pyramid = HaarPyramid::from_leaves(&data);
    c.bench_function("haar_pyramid_range_sum_d2e20", |b| {
        b.iter(|| black_box(pyramid.range_sum(black_box(12_345), black_box(987_654))))
    });
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("badic_decompose_d2e20");
    for fanout in [2usize, 4, 16] {
        let shape = CompleteTree::new(fanout, 1 << 20);
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, _| {
            b.iter(|| {
                black_box(decompose_range(
                    &shape,
                    black_box(12_345),
                    black_box(987_654),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fwht,
    bench_haar,
    bench_haar_range_sum,
    bench_decompose
);
criterion_main!(benches);
