//! One micro-scale accuracy run per table/figure of the paper, wired into
//! `cargo bench` so the whole evaluation surface is exercised and timed.
//! These measure the *pipeline cost* of each experiment at miniature
//! parameters; the real regeneration binaries are `cargo run -p ldp-bench
//! --release --bin fig4|tab5|tab6|tab7|fig8|fig9`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ldp_bench::micro_context;
use ldp_eval::experiments;

fn bench_figures(c: &mut Criterion) {
    let ctx = micro_context();
    let mut group = c.benchmark_group("figure_pipelines_micro");
    group.sample_size(10);
    group.bench_function("fig4", |b| {
        b.iter(|| black_box(experiments::fig4::run(&ctx)))
    });
    group.bench_function("tab5", |b| {
        b.iter(|| black_box(experiments::tab5::run(&ctx)))
    });
    group.bench_function("tab6", |b| {
        b.iter(|| black_box(experiments::tab6::run(&ctx)))
    });
    group.bench_function("tab7", |b| {
        b.iter(|| black_box(experiments::tab7::run(&ctx)))
    });
    group.bench_function("fig8", |b| {
        b.iter(|| black_box(experiments::fig8::run(&ctx)))
    });
    group.bench_function("fig9", |b| {
        b.iter(|| black_box(experiments::fig9::run(&ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
