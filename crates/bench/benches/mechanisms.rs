//! End-to-end mechanism benchmarks: per-user reporting cost, population
//! simulation throughput, constrained inference, and query evaluation —
//! the "related costs … are very low for these methods" claim (§1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ldp_freq_oracle::FrequencyOracle;
use ldp_ranges::{
    quantile, Epsilon, HaarConfig, HaarHrrClient, HaarHrrServer, HhClient, HhConfig, HhServer,
    RangeEstimate,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps() -> Epsilon {
    Epsilon::from_exp(3.0)
}

fn bench_client_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_report_d65536");
    let domain = 1 << 16;
    let mut rng = StdRng::seed_from_u64(11);
    {
        let config = HhConfig::with_oracle(domain, 4, eps(), FrequencyOracle::Hrr).unwrap();
        let client = HhClient::new(config).unwrap();
        group.bench_function("TreeHRR_B4", |b| {
            b.iter(|| black_box(client.report(black_box(12_345), &mut rng).unwrap()))
        });
    }
    {
        let config = HaarConfig::new(domain, eps()).unwrap();
        let client = HaarHrrClient::new(config).unwrap();
        group.bench_function("HaarHRR", |b| {
            b.iter(|| black_box(client.report(black_box(12_345), &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_population_absorb(c: &mut Criterion) {
    let mut group = c.benchmark_group("absorb_population_2e20_users");
    group.sample_size(10);
    let domain = 1 << 14;
    let counts = vec![64u64; domain];
    group.bench_function("TreeOUE_B4", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| {
            let config = HhConfig::new(domain, 4, eps()).unwrap();
            let mut server = HhServer::new(config).unwrap();
            server
                .absorb_population(black_box(&counts), &mut rng)
                .unwrap();
            black_box(server.num_reports())
        })
    });
    group.bench_function("HaarHRR", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| {
            let config = HaarConfig::new(domain, eps()).unwrap();
            let mut server = HaarHrrServer::new(config).unwrap();
            server
                .absorb_population(black_box(&counts), &mut rng)
                .unwrap();
            black_box(server.num_reports())
        })
    });
    group.finish();
}

fn bench_constrained_inference(c: &mut Criterion) {
    // The linear-time two-stage CI pass (§4.5).
    let domain = 1 << 16;
    let counts = vec![16u64; domain];
    let mut rng = StdRng::seed_from_u64(14);
    let config = HhConfig::new(domain, 4, eps()).unwrap();
    let mut server = HhServer::new(config).unwrap();
    server.absorb_population(&counts, &mut rng).unwrap();
    c.bench_function("constrained_inference_d65536_b4", |b| {
        b.iter(|| black_box(server.estimate_consistent()))
    });
}

fn bench_range_query_evaluation(c: &mut Criterion) {
    let domain = 1 << 16;
    let counts = vec![16u64; domain];
    let mut rng = StdRng::seed_from_u64(15);
    let config = HhConfig::new(domain, 4, eps()).unwrap();
    let mut server = HhServer::new(config).unwrap();
    server.absorb_population(&counts, &mut rng).unwrap();
    let raw = server.estimate();
    let collapsed = server.estimate_consistent().to_frequency_estimate();
    let mut group = c.benchmark_group("range_query_d65536");
    group.bench_function("tree_decomposition", |b| {
        b.iter(|| black_box(raw.range(black_box(1_234), black_box(45_678))))
    });
    group.bench_function("prefix_sums_after_ci", |b| {
        b.iter(|| black_box(collapsed.range(black_box(1_234), black_box(45_678))))
    });
    group.finish();
}

fn bench_quantile_search(c: &mut Criterion) {
    let domain = 1 << 16;
    let counts = vec![16u64; domain];
    let mut rng = StdRng::seed_from_u64(16);
    let config = HaarConfig::new(domain, eps()).unwrap();
    let mut server = HaarHrrServer::new(config).unwrap();
    server.absorb_population(&counts, &mut rng).unwrap();
    let est = server.estimate();
    c.bench_function("quantile_search_haar_d65536", |b| {
        b.iter(|| black_box(quantile(&est, black_box(0.5))))
    });
}

criterion_group!(
    benches,
    bench_client_report,
    bench_population_absorb,
    bench_constrained_inference,
    bench_range_query_evaluation,
    bench_quantile_search
);
criterion_main!(benches);
