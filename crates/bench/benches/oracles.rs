//! Cost benchmarks for the frequency oracles — the paper's resource claims
//! (§3.2): client-side encoding is cheap for all mechanisms; aggregation is
//! `O(N + D log D)` for HRR versus `O(N·D)` for OLH; OUE pays `O(D)`
//! communication/computation per user.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ldp_freq_oracle::{Epsilon, Hrr, Olh, Oue, PointOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encode(c: &mut Criterion) {
    let eps = Epsilon::from_exp(3.0);
    let mut group = c.benchmark_group("oracle_encode");
    for domain in [256usize, 4096] {
        let oue = Oue::new(domain, eps).unwrap();
        let olh = Olh::new(domain, eps).unwrap();
        let hrr = Hrr::new(domain, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("OUE", domain), &domain, |b, _| {
            b.iter(|| black_box(oue.encode(black_box(5), &mut rng).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("OLH", domain), &domain, |b, _| {
            b.iter(|| black_box(olh.encode(black_box(5), &mut rng).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("HRR", domain), &domain, |b, _| {
            b.iter(|| black_box(hrr.encode(black_box(5), &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_absorb(c: &mut Criterion) {
    let eps = Epsilon::from_exp(3.0);
    let domain = 1024usize;
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("oracle_absorb_one_report");
    {
        let oracle = Oue::new(domain, eps).unwrap();
        let report = oracle.encode(7, &mut rng).unwrap();
        let mut server = oracle.clone();
        group.bench_function("OUE", |b| {
            b.iter(|| server.absorb(black_box(&report)).unwrap())
        });
    }
    {
        let oracle = Olh::new(domain, eps).unwrap();
        let report = oracle.encode(7, &mut rng).unwrap();
        let mut server = oracle.clone();
        // The O(D) support scan per report — OLH's decode bottleneck.
        group.bench_function("OLH", |b| {
            b.iter(|| server.absorb(black_box(&report)).unwrap())
        });
    }
    {
        let oracle = Hrr::new(domain, eps).unwrap();
        let report = oracle.encode(7, &mut rng).unwrap();
        let mut server = oracle.clone();
        group.bench_function("HRR", |b| {
            b.iter(|| server.absorb(black_box(&report)).unwrap())
        });
    }
    group.finish();
}

fn bench_population_simulation(c: &mut Criterion) {
    // The statistically-equivalent aggregate path: absorbing 2^20 users at
    // once (OUE and HRR; OLH has no aggregate shortcut).
    let eps = Epsilon::from_exp(3.0);
    let mut group = c.benchmark_group("oracle_absorb_population_2e20");
    group.sample_size(10);
    for domain in [1024usize, 65_536] {
        let counts = vec![(1u64 << 20) / domain as u64; domain];
        group.bench_with_input(BenchmarkId::new("OUE", domain), &domain, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut oracle = Oue::new(domain, eps).unwrap();
                oracle
                    .absorb_population(black_box(&counts), &mut rng)
                    .unwrap();
                black_box(oracle.num_reports())
            })
        });
        group.bench_with_input(BenchmarkId::new("HRR", domain), &domain, |b, _| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                let mut oracle = Hrr::new(domain, eps).unwrap();
                oracle
                    .absorb_population(black_box(&counts), &mut rng)
                    .unwrap();
                black_box(oracle.num_reports())
            })
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    // Aggregator decode: HRR's O(D log D) inverse transform vs OUE's O(D)
    // correction (OLH's cost is in absorb, measured above).
    let eps = Epsilon::from_exp(3.0);
    let domain = 1 << 14;
    let counts = vec![64u64; domain];
    let mut rng = StdRng::seed_from_u64(5);
    let mut oue = Oue::new(domain, eps).unwrap();
    oue.absorb_population(&counts, &mut rng).unwrap();
    let mut hrr = Hrr::new(domain, eps).unwrap();
    hrr.absorb_population(&counts, &mut rng).unwrap();
    let mut group = c.benchmark_group("oracle_estimate_d16384");
    group.bench_function("OUE", |b| b.iter(|| black_box(oue.estimate())));
    group.bench_function("HRR", |b| b.iter(|| black_box(hrr.estimate())));
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_absorb,
    bench_population_simulation,
    bench_estimate
);
criterion_main!(benches);
