//! Mechanism configurations.

use ldp_freq_oracle::{Epsilon, FrequencyOracle};
use ldp_transforms::{exact_log, CompleteTree};

use crate::error::RangeError;

/// Configuration of the flat (baseline) mechanism: one frequency oracle
/// over the whole domain (paper §4.2).
#[derive(Debug, Clone)]
pub struct FlatConfig {
    /// Domain size `D`.
    pub domain: usize,
    /// Privacy budget per user.
    pub epsilon: Epsilon,
    /// Which frequency oracle to use (the paper's flat baseline is OUE).
    pub oracle: FrequencyOracle,
}

impl FlatConfig {
    /// Builds a flat-mechanism configuration with the paper's default
    /// oracle choice (OUE: "it can be simulated efficiently and reliably
    /// provides the lowest error in practice", §5).
    ///
    /// # Errors
    ///
    /// Rejects domains below 2, and non-power-of-two domains when the
    /// oracle is HRR.
    pub fn new(domain: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        Self::with_oracle(domain, epsilon, FrequencyOracle::Oue)
    }

    /// Builds a flat-mechanism configuration with an explicit oracle.
    ///
    /// # Errors
    ///
    /// See [`FlatConfig::new`].
    pub fn with_oracle(
        domain: usize,
        epsilon: Epsilon,
        oracle: FrequencyOracle,
    ) -> Result<Self, RangeError> {
        if domain < 2 {
            return Err(RangeError::DomainTooSmall(domain));
        }
        if oracle.requires_power_of_two() && !domain.is_power_of_two() {
            return Err(RangeError::DomainNotPowerOfTwo(domain));
        }
        Ok(Self {
            domain,
            epsilon,
            oracle,
        })
    }
}

/// Configuration of the hierarchical-histogram mechanism `HH_B`
/// (paper §4.4).
#[derive(Debug, Clone)]
pub struct HhConfig {
    /// Domain size `D = B^h`.
    pub domain: usize,
    /// Branching factor `B`.
    pub fanout: usize,
    /// Tree height `h = log_B D`.
    pub height: u32,
    /// Privacy budget per user.
    pub epsilon: Epsilon,
    /// Frequency oracle used to release each sampled level.
    pub oracle: FrequencyOracle,
}

impl HhConfig {
    /// Builds an `HH_B` configuration with the paper's preferred level
    /// primitive for accuracy experiments, OUE (`TreeOUE`).
    ///
    /// # Errors
    ///
    /// Rejects fanouts below 2, domains that are not an exact power of the
    /// fanout, and domains below `fanout` (the tree needs height ≥ 1).
    pub fn new(domain: usize, fanout: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        Self::with_oracle(domain, fanout, epsilon, FrequencyOracle::Oue)
    }

    /// Builds an `HH_B` configuration with an explicit level oracle
    /// (`TreeOUE`, `TreeOLH`, `TreeHRR` in the paper's naming).
    ///
    /// # Errors
    ///
    /// See [`HhConfig::new`]; additionally rejects HRR when any level
    /// domain `B^l` would not be a power of two.
    pub fn with_oracle(
        domain: usize,
        fanout: usize,
        epsilon: Epsilon,
        oracle: FrequencyOracle,
    ) -> Result<Self, RangeError> {
        if fanout < 2 {
            return Err(RangeError::FanoutTooSmall(fanout));
        }
        let height = exact_log(domain, fanout)
            .ok_or(RangeError::DomainNotPowerOfFanout { domain, fanout })?;
        if height == 0 {
            return Err(RangeError::DomainTooSmall(domain));
        }
        if oracle.requires_power_of_two() && !fanout.is_power_of_two() {
            // Level domains are B^l; they are powers of two iff B is.
            return Err(RangeError::DomainNotPowerOfTwo(fanout));
        }
        Ok(Self {
            domain,
            fanout,
            height,
            epsilon,
            oracle,
        })
    }

    /// The tree shape implied by this configuration.
    #[must_use]
    pub fn shape(&self) -> CompleteTree {
        CompleteTree::with_height(self.fanout, self.height)
    }

    /// Probability with which a user samples any given level — uniform
    /// `1/h`, the optimum established by Lemma 4.4.
    #[must_use]
    pub fn level_probability(&self) -> f64 {
        1.0 / f64::from(self.height)
    }
}

/// Configuration of the Haar-wavelet mechanism `HaarHRR` (paper §4.6).
#[derive(Debug, Clone)]
pub struct HaarConfig {
    /// Domain size `D = 2^h`.
    pub domain: usize,
    /// Tree height `h = log2 D`; also the number of detail levels a user
    /// may sample.
    pub height: u32,
    /// Privacy budget per user.
    pub epsilon: Epsilon,
}

impl HaarConfig {
    /// Builds a `HaarHRR` configuration.
    ///
    /// # Errors
    ///
    /// Rejects domains that are not powers of two or are below 2.
    pub fn new(domain: usize, epsilon: Epsilon) -> Result<Self, RangeError> {
        if domain < 2 {
            return Err(RangeError::DomainTooSmall(domain));
        }
        if !domain.is_power_of_two() {
            return Err(RangeError::DomainNotPowerOfTwo(domain));
        }
        Ok(Self {
            domain,
            height: domain.trailing_zeros(),
            epsilon,
        })
    }

    /// Uniform level-sampling probability `1/h` (optimal, §4.6).
    #[must_use]
    pub fn level_probability(&self) -> f64 {
        1.0 / f64::from(self.height)
    }
}

/// Which range mechanism to run — the top-level knob of the evaluation
/// harness, mirroring the paper's method names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeMechanism {
    /// Flat baseline over the whole domain (paper: `OUE`/flat).
    Flat(FrequencyOracle),
    /// Hierarchical histogram with the given fanout; `consistent` selects
    /// the constrained-inference post-processing (paper: `TreeF` /
    /// `TreeFCI`, a.k.a. `HH_B` / `HHc_B`).
    Hierarchical {
        /// Branching factor `B`.
        fanout: usize,
        /// Level frequency oracle.
        oracle: FrequencyOracle,
        /// Apply constrained inference (§4.5).
        consistent: bool,
    },
    /// Haar wavelet mechanism (paper: `HaarHRR`).
    HaarHrr,
}

impl RangeMechanism {
    /// Display name matching the paper's plots and tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::Flat(o) => format!("Flat{o}"),
            Self::Hierarchical {
                fanout,
                oracle,
                consistent,
            } => {
                let ci = if *consistent { "CI" } else { "" };
                format!("Tree{oracle}{ci}(B={fanout})")
            }
            Self::HaarHrr => "HaarHRR".to_string(),
        }
    }
}

impl std::fmt::Display for RangeMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_config_validation() {
        let eps = Epsilon::new(1.1);
        assert!(FlatConfig::new(256, eps).is_ok());
        assert!(matches!(
            FlatConfig::new(1, eps),
            Err(RangeError::DomainTooSmall(1))
        ));
        assert!(FlatConfig::with_oracle(100, eps, FrequencyOracle::Hrr).is_err());
        assert!(FlatConfig::with_oracle(128, eps, FrequencyOracle::Hrr).is_ok());
    }

    #[test]
    fn hh_config_validation() {
        let eps = Epsilon::new(1.1);
        let c = HhConfig::new(256, 4, eps).unwrap();
        assert_eq!(c.height, 4);
        assert!((c.level_probability() - 0.25).abs() < 1e-12);
        assert!(matches!(
            HhConfig::new(100, 4, eps),
            Err(RangeError::DomainNotPowerOfFanout { .. })
        ));
        assert!(matches!(
            HhConfig::new(256, 1, eps),
            Err(RangeError::FanoutTooSmall(1))
        ));
        assert!(matches!(
            HhConfig::new(1, 2, eps),
            Err(RangeError::DomainTooSmall(1))
        ));
        // HRR levels need power-of-two fanout.
        assert!(HhConfig::with_oracle(81, 3, eps, FrequencyOracle::Hrr).is_err());
        assert!(HhConfig::with_oracle(81, 3, eps, FrequencyOracle::Oue).is_ok());
        assert!(HhConfig::with_oracle(256, 4, eps, FrequencyOracle::Hrr).is_ok());
    }

    #[test]
    fn haar_config_validation() {
        let eps = Epsilon::new(1.1);
        let c = HaarConfig::new(1024, eps).unwrap();
        assert_eq!(c.height, 10);
        assert!(matches!(
            HaarConfig::new(100, eps),
            Err(RangeError::DomainNotPowerOfTwo(100))
        ));
        assert!(matches!(
            HaarConfig::new(1, eps),
            Err(RangeError::DomainTooSmall(1))
        ));
    }

    #[test]
    fn mechanism_names_match_paper() {
        assert_eq!(RangeMechanism::Flat(FrequencyOracle::Oue).name(), "FlatOUE");
        assert_eq!(
            RangeMechanism::Hierarchical {
                fanout: 4,
                oracle: FrequencyOracle::Oue,
                consistent: true
            }
            .name(),
            "TreeOUECI(B=4)"
        );
        assert_eq!(RangeMechanism::HaarHrr.name(), "HaarHRR");
    }
}
