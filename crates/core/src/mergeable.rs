//! Mergeable aggregator state — the substrate for sharded, distributed
//! aggregation.
//!
//! Every mechanism's server accumulates *sufficient statistics* that are
//! plain integer sums over user reports (noisy bit counts for OUE/SUE,
//! support counts for OLH, signed coefficient sums for HRR). Sums are
//! associative and commutative, so a population can be split across any
//! number of independent shards — each absorbing its own cohort — and the
//! shard states added together afterwards. The merged state is *identical*
//! (bit-for-bit, not just statistically) to what a single server absorbing
//! every report in sequence would hold, which is what makes the sharded
//! service in `ldp-service` a pure performance change with no accuracy
//! semantics of its own.
//!
//! [`MergeableServer`] captures that contract behind one trait so generic
//! infrastructure (shard pools, load generators, snapshot builders) can be
//! written once for all six mechanisms.

use crate::error::RangeError;
use crate::flat::FlatServer;
use crate::haar::calibration::{HaarOueReport, HaarOueServer};
use crate::haar::{HaarHrrReport, HaarHrrServer};
use crate::hh::split::{HhSplitReport, HhSplitServer};
use crate::hh::{HhReport, HhServer};
use crate::multidim::{Hh2dReport, Hh2dServer};
use ldp_freq_oracle::AnyReport;

/// An aggregator whose state from disjoint user cohorts can be combined
/// exactly.
///
/// # Contract
///
/// For any partition of a report sequence into shards, absorbing each
/// shard into its own fresh server and merging the results must leave the
/// same state as absorbing the full sequence into one server:
///
/// ```text
/// merge(absorb_all(s₁, A), absorb_all(s₂, B))  ==  absorb_all(s, A ++ B)
/// ```
///
/// In particular `merge` is associative and commutative, and the order in
/// which reports are absorbed never matters. Implementations uphold this
/// by keeping only integer sufficient statistics; the service crate's
/// property tests check it for every mechanism.
pub trait MergeableServer: Clone + Send {
    /// The per-user report type this server absorbs.
    type Report: Clone + Send + Sync;

    /// Accumulates one user report.
    ///
    /// # Errors
    ///
    /// Rejects reports whose shape does not match this server.
    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError>;

    /// Adds another shard's accumulated state into this one.
    ///
    /// # Errors
    ///
    /// Rejects shards built from a different configuration.
    fn merge(&mut self, other: &Self) -> Result<(), RangeError>;

    /// Total number of reports reflected in this state.
    fn num_reports(&self) -> u64;
}

/// A mergeable aggregator whose merges can also be *undone* exactly.
///
/// # Contract
///
/// `subtract` is the bit-identical inverse of [`MergeableServer::merge`]:
/// for any states `a` and `b` of the same shape,
///
/// ```text
/// merge(a, b).subtract(b)  ==  a        (bit-for-bit)
/// ```
///
/// This holds because every mechanism's state is a vector of integer
/// sufficient statistics — integer addition is exactly invertible, with
/// none of the rounding drift a float accumulator would pick up. The
/// capability is what makes sliding-window aggregation cheap: a window of
/// `K` epochs retires its oldest epoch with one `subtract` (`O(state)`)
/// instead of re-merging the surviving `K − 1` epochs from scratch.
///
/// Subtracting state that was never merged in is a contract violation;
/// implementations detect it where the integers can witness it (a count
/// would go negative, a report total would underflow) and reject with an
/// error, leaving the accumulator unchanged.
pub trait SubtractableServer: MergeableServer {
    /// Removes another accumulator's state from this one — the exact
    /// inverse of [`MergeableServer::merge`].
    ///
    /// # Errors
    ///
    /// Rejects accumulators built from a different configuration, and
    /// state that was detectably never merged into this one.
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError>;
}

impl MergeableServer for FlatServer {
    type Report = AnyReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        FlatServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        FlatServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        FlatServer::num_reports(self)
    }
}

impl MergeableServer for HhServer {
    type Report = HhReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HhServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HhServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HhServer::num_reports(self)
    }
}

impl MergeableServer for HhSplitServer {
    type Report = HhSplitReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HhSplitServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HhSplitServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HhSplitServer::num_reports(self)
    }
}

impl MergeableServer for HaarHrrServer {
    type Report = HaarHrrReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HaarHrrServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HaarHrrServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HaarHrrServer::num_reports(self)
    }
}

impl MergeableServer for HaarOueServer {
    type Report = HaarOueReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HaarOueServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HaarOueServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HaarOueServer::num_reports(self)
    }
}

impl MergeableServer for Hh2dServer {
    type Report = Hh2dReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        Hh2dServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        Hh2dServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        Hh2dServer::num_reports(self)
    }
}

impl SubtractableServer for FlatServer {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        FlatServer::subtract(self, other)
    }
}

impl SubtractableServer for HhServer {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        HhServer::subtract(self, other)
    }
}

impl SubtractableServer for HhSplitServer {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        HhSplitServer::subtract(self, other)
    }
}

impl SubtractableServer for HaarHrrServer {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        HaarHrrServer::subtract(self, other)
    }
}

impl SubtractableServer for HaarOueServer {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        HaarOueServer::subtract(self, other)
    }
}

impl SubtractableServer for Hh2dServer {
    fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        Hh2dServer::subtract(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlatConfig, HaarConfig, HhConfig};
    use crate::estimate::RangeEstimate;
    use crate::flat::FlatClient;
    use crate::haar::HaarHrrClient;
    use crate::hh::HhClient;
    use ldp_freq_oracle::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generic helper exercising the trait contract through a `dyn`-free
    /// generic path: shard-merge equals sequential absorb exactly.
    fn assert_sharded_equals_sequential<S, F, R>(
        make: F,
        reports: &[S::Report],
        shards: usize,
        estimate: R,
    ) where
        S: MergeableServer,
        F: Fn() -> S,
        R: Fn(&S) -> Vec<f64>,
    {
        let mut sequential = make();
        for r in reports {
            sequential.absorb(r).unwrap();
        }

        let mut pool: Vec<S> = (0..shards).map(|_| make()).collect();
        for (i, r) in reports.iter().enumerate() {
            pool[i % shards].absorb(r).unwrap();
        }
        let mut merged = pool.remove(0);
        for shard in &pool {
            merged.merge(shard).unwrap();
        }

        assert_eq!(sequential.num_reports(), merged.num_reports());
        let a = estimate(&sequential);
        let b = estimate(&merged);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.to_bits() == y.to_bits(),
                "merged estimate differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn flat_sharding_is_exact() {
        let eps = Epsilon::new(1.1);
        let config = FlatConfig::new(32, eps).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(301);
        let reports: Vec<_> = (0..500)
            .map(|i| client.report(i % 32, &mut rng).unwrap())
            .collect();
        assert_sharded_equals_sequential(
            || FlatServer::new(&config).unwrap(),
            &reports,
            4,
            |s: &FlatServer| s.estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn hh_sharding_is_exact() {
        let eps = Epsilon::new(1.1);
        let config = HhConfig::new(64, 4, eps).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(302);
        let reports: Vec<_> = (0..500)
            .map(|i| client.report(i % 64, &mut rng).unwrap())
            .collect();
        assert_sharded_equals_sequential(
            || HhServer::new(config.clone()).unwrap(),
            &reports,
            3,
            |s: &HhServer| s.estimate_consistent().to_frequency_estimate().cdf(),
        );
    }

    /// `merge(a, b).subtract(b) ≡ a` bit-for-bit, and subtracting the
    /// same state twice underflows rather than corrupting.
    fn assert_subtract_inverts_merge<S, F, R>(make: F, reports: &[S::Report], estimate: R)
    where
        S: SubtractableServer,
        F: Fn() -> S,
        R: Fn(&S) -> Vec<f64>,
    {
        let split = reports.len() / 2;
        let mut a = make();
        for r in &reports[..split] {
            a.absorb(r).unwrap();
        }
        let mut b = make();
        for r in &reports[split..] {
            b.absorb(r).unwrap();
        }
        let before = estimate(&a);
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        merged.subtract(&b).unwrap();
        assert_eq!(a.num_reports(), merged.num_reports());
        for (x, y) in before.iter().zip(&estimate(&merged)) {
            assert!(
                x.to_bits() == y.to_bits(),
                "subtract did not invert merge: {x} vs {y}"
            );
        }
        // `b` is gone from `merged`; removing it again must be rejected
        // (unless b is empty, in which case it is a no-op).
        if b.num_reports() > 0 {
            assert!(merged.subtract(&b).is_err(), "double subtraction allowed");
        }
    }

    #[test]
    fn flat_subtract_inverts_merge() {
        let eps = Epsilon::new(1.1);
        let config = FlatConfig::new(32, eps).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(311);
        let reports: Vec<_> = (0..400)
            .map(|i| client.report(i % 32, &mut rng).unwrap())
            .collect();
        assert_subtract_inverts_merge(
            || FlatServer::new(&config).unwrap(),
            &reports,
            |s: &FlatServer| s.estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn hh_subtract_inverts_merge() {
        let eps = Epsilon::new(1.1);
        let config = HhConfig::new(64, 4, eps).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(312);
        let reports: Vec<_> = (0..400)
            .map(|i| client.report(i % 64, &mut rng).unwrap())
            .collect();
        assert_subtract_inverts_merge(
            || HhServer::new(config.clone()).unwrap(),
            &reports,
            |s: &HhServer| s.estimate_consistent().to_frequency_estimate().cdf(),
        );
    }

    #[test]
    fn haar_subtract_inverts_merge() {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(64, eps).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(313);
        let reports: Vec<_> = (0..400)
            .map(|i| client.report(i % 64, &mut rng).unwrap())
            .collect();
        assert_subtract_inverts_merge(
            || HaarHrrServer::new(config.clone()).unwrap(),
            &reports,
            |s: &HaarHrrServer| s.estimate().to_frequency_estimate().cdf(),
        );
    }

    #[test]
    fn subtract_rejects_mismatched_shapes() {
        let eps = Epsilon::new(1.0);
        let mut a = HhServer::new(HhConfig::new(64, 2, eps).unwrap()).unwrap();
        let b = HhServer::new(HhConfig::new(64, 4, eps).unwrap()).unwrap();
        assert!(SubtractableServer::subtract(&mut a, &b).is_err());
    }

    #[test]
    fn haar_sharding_is_exact() {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(64, eps).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(303);
        let reports: Vec<_> = (0..500)
            .map(|i| client.report(i % 64, &mut rng).unwrap())
            .collect();
        assert_sharded_equals_sequential(
            || HaarHrrServer::new(config.clone()).unwrap(),
            &reports,
            5,
            |s: &HaarHrrServer| s.estimate().to_frequency_estimate().cdf(),
        );
    }
}
