//! Mergeable aggregator state — the substrate for sharded, distributed
//! aggregation.
//!
//! Every mechanism's server accumulates *sufficient statistics* that are
//! plain integer sums over user reports (noisy bit counts for OUE/SUE,
//! support counts for OLH, signed coefficient sums for HRR). Sums are
//! associative and commutative, so a population can be split across any
//! number of independent shards — each absorbing its own cohort — and the
//! shard states added together afterwards. The merged state is *identical*
//! (bit-for-bit, not just statistically) to what a single server absorbing
//! every report in sequence would hold, which is what makes the sharded
//! service in `ldp-service` a pure performance change with no accuracy
//! semantics of its own.
//!
//! [`MergeableServer`] captures that contract behind one trait so generic
//! infrastructure (shard pools, load generators, snapshot builders) can be
//! written once for all six mechanisms.

use crate::error::RangeError;
use crate::flat::FlatServer;
use crate::haar::calibration::{HaarOueReport, HaarOueServer};
use crate::haar::{HaarHrrReport, HaarHrrServer};
use crate::hh::split::{HhSplitReport, HhSplitServer};
use crate::hh::{HhReport, HhServer};
use crate::multidim::{Hh2dReport, Hh2dServer};
use ldp_freq_oracle::AnyReport;

/// An aggregator whose state from disjoint user cohorts can be combined
/// exactly.
///
/// # Contract
///
/// For any partition of a report sequence into shards, absorbing each
/// shard into its own fresh server and merging the results must leave the
/// same state as absorbing the full sequence into one server:
///
/// ```text
/// merge(absorb_all(s₁, A), absorb_all(s₂, B))  ==  absorb_all(s, A ++ B)
/// ```
///
/// In particular `merge` is associative and commutative, and the order in
/// which reports are absorbed never matters. Implementations uphold this
/// by keeping only integer sufficient statistics; the service crate's
/// property tests check it for every mechanism.
pub trait MergeableServer: Clone + Send {
    /// The per-user report type this server absorbs.
    type Report: Clone + Send + Sync;

    /// Accumulates one user report.
    ///
    /// # Errors
    ///
    /// Rejects reports whose shape does not match this server.
    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError>;

    /// Adds another shard's accumulated state into this one.
    ///
    /// # Errors
    ///
    /// Rejects shards built from a different configuration.
    fn merge(&mut self, other: &Self) -> Result<(), RangeError>;

    /// Total number of reports reflected in this state.
    fn num_reports(&self) -> u64;
}

impl MergeableServer for FlatServer {
    type Report = AnyReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        FlatServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        FlatServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        FlatServer::num_reports(self)
    }
}

impl MergeableServer for HhServer {
    type Report = HhReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HhServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HhServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HhServer::num_reports(self)
    }
}

impl MergeableServer for HhSplitServer {
    type Report = HhSplitReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HhSplitServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HhSplitServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HhSplitServer::num_reports(self)
    }
}

impl MergeableServer for HaarHrrServer {
    type Report = HaarHrrReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HaarHrrServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HaarHrrServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HaarHrrServer::num_reports(self)
    }
}

impl MergeableServer for HaarOueServer {
    type Report = HaarOueReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        HaarOueServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        HaarOueServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        HaarOueServer::num_reports(self)
    }
}

impl MergeableServer for Hh2dServer {
    type Report = Hh2dReport;

    fn absorb(&mut self, report: &Self::Report) -> Result<(), RangeError> {
        Hh2dServer::absorb(self, report)
    }

    fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        Hh2dServer::merge(self, other)
    }

    fn num_reports(&self) -> u64 {
        Hh2dServer::num_reports(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlatConfig, HaarConfig, HhConfig};
    use crate::estimate::RangeEstimate;
    use crate::flat::FlatClient;
    use crate::haar::HaarHrrClient;
    use crate::hh::HhClient;
    use ldp_freq_oracle::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generic helper exercising the trait contract through a `dyn`-free
    /// generic path: shard-merge equals sequential absorb exactly.
    fn assert_sharded_equals_sequential<S, F, R>(
        make: F,
        reports: &[S::Report],
        shards: usize,
        estimate: R,
    ) where
        S: MergeableServer,
        F: Fn() -> S,
        R: Fn(&S) -> Vec<f64>,
    {
        let mut sequential = make();
        for r in reports {
            sequential.absorb(r).unwrap();
        }

        let mut pool: Vec<S> = (0..shards).map(|_| make()).collect();
        for (i, r) in reports.iter().enumerate() {
            pool[i % shards].absorb(r).unwrap();
        }
        let mut merged = pool.remove(0);
        for shard in &pool {
            merged.merge(shard).unwrap();
        }

        assert_eq!(sequential.num_reports(), merged.num_reports());
        let a = estimate(&sequential);
        let b = estimate(&merged);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.to_bits() == y.to_bits(),
                "merged estimate differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn flat_sharding_is_exact() {
        let eps = Epsilon::new(1.1);
        let config = FlatConfig::new(32, eps).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(301);
        let reports: Vec<_> = (0..500)
            .map(|i| client.report(i % 32, &mut rng).unwrap())
            .collect();
        assert_sharded_equals_sequential(
            || FlatServer::new(&config).unwrap(),
            &reports,
            4,
            |s: &FlatServer| s.estimate().frequencies().to_vec(),
        );
    }

    #[test]
    fn hh_sharding_is_exact() {
        let eps = Epsilon::new(1.1);
        let config = HhConfig::new(64, 4, eps).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(302);
        let reports: Vec<_> = (0..500)
            .map(|i| client.report(i % 64, &mut rng).unwrap())
            .collect();
        assert_sharded_equals_sequential(
            || HhServer::new(config.clone()).unwrap(),
            &reports,
            3,
            |s: &HhServer| s.estimate_consistent().to_frequency_estimate().cdf(),
        );
    }

    #[test]
    fn haar_sharding_is_exact() {
        let eps = Epsilon::new(1.1);
        let config = HaarConfig::new(64, eps).unwrap();
        let client = HaarHrrClient::new(config.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(303);
        let reports: Vec<_> = (0..500)
            .map(|i| client.report(i % 64, &mut rng).unwrap())
            .collect();
        assert_sharded_equals_sequential(
            || HaarHrrServer::new(config.clone()).unwrap(),
            &reports,
            5,
            |s: &HaarHrrServer| s.estimate().to_frequency_estimate().cdf(),
        );
    }
}
