//! Quantile queries via prefix-query binary search (paper §4.7).
//!
//! The φ-quantile is the index `j` such that at most a φ-fraction of the
//! data lies below `j` and at most `1 − φ` lies above. Given a mechanism
//! that answers prefix queries, we binary search for the smallest `j` whose
//! estimated prefix mass reaches φ. "Errors arise when the noise in
//! answering prefix queries causes us to select a j that is either too
//! large or too small" — quantified in the evaluation by both *value error*
//! `(Q̂ − Q)²` and *quantile error* `|q − q̂|` (Definition 4.7).

use crate::estimate::RangeEstimate;

/// Finds the estimated φ-quantile: the smallest index `j` with
/// `prefix(j) ≥ φ`, by binary search over `O(log D)` prefix queries.
///
/// Noise can make the estimated prefix function locally non-monotone; the
/// binary search then still terminates with an index whose neighborhood
/// straddles φ, which is the behavior analyzed in the paper.
///
/// # Panics
///
/// Panics unless `0 ≤ phi ≤ 1`.
pub fn quantile<E: RangeEstimate + ?Sized>(estimate: &E, phi: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&phi),
        "phi must be in [0,1], got {phi}"
    );
    let d = estimate.domain();
    let mut lo = 0usize;
    let mut hi = d - 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if estimate.prefix(mid) >= phi {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// The nine deciles φ ∈ {0.1, …, 0.9} (the paper's Figure 9 workload).
#[must_use]
pub fn deciles<E: RangeEstimate + ?Sized>(estimate: &E) -> Vec<usize> {
    (1..=9)
        .map(|i| quantile(estimate, f64::from(i) / 10.0))
        .collect()
}

/// The φ-quantile of an *exact* distribution given as a CDF — ground truth
/// for quantile experiments.
///
/// # Panics
///
/// Panics on an empty CDF or φ outside `[0, 1]`.
#[must_use]
pub fn true_quantile(cdf: &[f64], phi: f64) -> usize {
    assert!(!cdf.is_empty());
    assert!((0.0..=1.0).contains(&phi));
    cdf.iter().position(|&c| c >= phi).unwrap_or(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::FrequencyEstimate;

    #[test]
    fn exact_quantiles_on_uniform() {
        let est = FrequencyEstimate::new(vec![0.1; 10]);
        // prefix(j) = (j+1)/10; the smallest j with prefix ≥ 0.5 is 4.
        assert_eq!(quantile(&est, 0.5), 4);
        assert_eq!(quantile(&est, 0.1), 0);
        assert_eq!(quantile(&est, 1.0), 9);
        assert_eq!(quantile(&est, 0.0), 0);
    }

    #[test]
    fn skewed_distribution() {
        let est = FrequencyEstimate::new(vec![0.7, 0.1, 0.1, 0.1]);
        assert_eq!(quantile(&est, 0.5), 0);
        assert_eq!(quantile(&est, 0.75), 1);
        assert_eq!(quantile(&est, 0.95), 3);
    }

    #[test]
    fn deciles_are_monotone() {
        let freqs: Vec<f64> = (0..64).map(|i| (i + 1) as f64).collect();
        let total: f64 = freqs.iter().sum();
        let est = FrequencyEstimate::new(freqs.iter().map(|f| f / total).collect());
        let ds = deciles(&est);
        assert_eq!(ds.len(), 9);
        for w in ds.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn matches_linear_scan() {
        let est = FrequencyEstimate::new(vec![0.05, 0.2, 0.0, 0.3, 0.15, 0.1, 0.05, 0.15]);
        for phi in [0.01, 0.1, 0.25, 0.5, 0.33, 0.9, 0.99] {
            let scan = (0..8).find(|&j| est.prefix(j) >= phi).unwrap();
            assert_eq!(quantile(&est, phi), scan, "phi={phi}");
        }
    }

    #[test]
    fn true_quantile_from_cdf() {
        let cdf = [0.1, 0.3, 0.6, 1.0];
        assert_eq!(true_quantile(&cdf, 0.5), 2);
        assert_eq!(true_quantile(&cdf, 0.05), 0);
        assert_eq!(true_quantile(&cdf, 1.0), 3);
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn rejects_bad_phi() {
        let est = FrequencyEstimate::new(vec![1.0]);
        quantile(&est, 1.5);
    }
}
