//! The flat (baseline) mechanism: answer ranges by summing point estimates
//! (paper §4.2).
//!
//! Every user releases her value through one frequency oracle over the full
//! domain; a range `[a, b]` is estimated as `Σ θ̂_i`. By Fact 1 the variance
//! grows linearly in the range length — the motivation for the hierarchical
//! and wavelet mechanisms — but for point queries and very short ranges the
//! flat method is the most accurate, since all of the population reports at
//! leaf granularity.

use rand::RngCore;

use ldp_freq_oracle::{AnyOracle, AnyReport, PointOracle};

use crate::config::FlatConfig;
use crate::error::RangeError;
use crate::estimate::FrequencyEstimate;

/// Client side of the flat mechanism: stateless per-user encoding.
#[derive(Debug, Clone)]
pub struct FlatClient {
    oracle: AnyOracle,
}

impl FlatClient {
    /// Builds the client from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates oracle construction failures.
    pub fn new(config: &FlatConfig) -> Result<Self, RangeError> {
        Ok(Self {
            oracle: AnyOracle::new(config.oracle, config.domain, config.epsilon)?,
        })
    }

    /// Perturbs one user's value into a report.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is outside the domain.
    pub fn report(&self, value: usize, rng: &mut dyn RngCore) -> Result<AnyReport, RangeError> {
        Ok(self.oracle.encode(value, rng)?)
    }
}

/// Aggregator side of the flat mechanism.
#[derive(Debug, Clone)]
pub struct FlatServer {
    oracle: AnyOracle,
}

impl FlatServer {
    /// Builds the server from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates oracle construction failures.
    pub fn new(config: &FlatConfig) -> Result<Self, RangeError> {
        Ok(Self {
            oracle: AnyOracle::new(config.oracle, config.domain, config.epsilon)?,
        })
    }

    /// Accumulates one user report.
    ///
    /// # Errors
    ///
    /// Rejects reports of mismatched shape.
    pub fn absorb(&mut self, report: &AnyReport) -> Result<(), RangeError> {
        Ok(self.oracle.absorb(report)?)
    }

    /// Absorbs a whole cohort at once from its true histogram (the paper's
    /// statistically-equivalent simulation, §5).
    ///
    /// # Errors
    ///
    /// Rejects histograms of mismatched length.
    pub fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), RangeError> {
        Ok(self.oracle.absorb_population(true_counts, rng)?)
    }

    /// Merges another shard's accumulator into this one.
    ///
    /// # Errors
    ///
    /// Rejects shards of mismatched shape or oracle kind.
    pub fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        Ok(self.oracle.merge(&other.oracle)?)
    }

    /// Removes a previously merged accumulator — the exact inverse of
    /// [`FlatServer::merge`].
    ///
    /// # Errors
    ///
    /// Rejects shards of mismatched shape, or state that was never merged
    /// into this one.
    pub fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        Ok(self.oracle.subtract(&other.oracle)?)
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.oracle.num_reports()
    }

    /// The underlying oracle accumulator (persistence codec access).
    pub(crate) fn oracle(&self) -> &AnyOracle {
        &self.oracle
    }

    /// Mutable oracle accumulator (persistence codec access).
    pub(crate) fn oracle_mut(&mut self) -> &mut AnyOracle {
        &mut self.oracle
    }

    /// Reconstructs per-item frequency estimates; ranges are answered by
    /// prefix-sum differences over them (identical to summing point
    /// estimates, but `O(1)` per query).
    #[must_use]
    pub fn estimate(&self) -> FrequencyEstimate {
        FrequencyEstimate::new(self.oracle.estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::RangeEstimate;
    use ldp_freq_oracle::{Epsilon, FrequencyOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_per_user() {
        let eps = Epsilon::from_exp(3.0);
        let config = FlatConfig::new(16, eps).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut server = FlatServer::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        // Uniform over items 4..8.
        let n = 20_000;
        for i in 0..n {
            let r = client.report(4 + (i % 4), &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        assert_eq!(server.num_reports(), n as u64);
        let est = server.estimate();
        assert!((est.range(4, 7) - 1.0).abs() < 0.05);
        assert!(est.range(0, 3).abs() < 0.05);
        assert!((est.point(5) - 0.25).abs() < 0.05);
    }

    #[test]
    fn end_to_end_population_simulation() {
        let eps = Epsilon::new(1.1);
        let config = FlatConfig::new(64, eps).unwrap();
        let mut server = FlatServer::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(62);
        // Population large enough that the 0.1 tolerance sits at several
        // standard deviations regardless of the RNG stream.
        let mut counts = vec![0u64; 64];
        for (z, c) in counts.iter_mut().enumerate() {
            *c = 1_000 + (z as u64 % 7) * 500;
        }
        let n: u64 = counts.iter().sum();
        server.absorb_population(&counts, &mut rng).unwrap();
        let est = server.estimate();
        let truth: f64 = counts[10..=30].iter().sum::<u64>() as f64 / n as f64;
        assert!((est.range(10, 30) - truth).abs() < 0.1);
    }

    #[test]
    fn hrr_flat_variant_works() {
        let eps = Epsilon::new(1.1);
        let config = FlatConfig::with_oracle(32, eps, FrequencyOracle::Hrr).unwrap();
        let client = FlatClient::new(&config).unwrap();
        let mut server = FlatServer::new(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(63);
        for _ in 0..30_000 {
            let r = client.report(9, &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        let est = server.estimate();
        assert!((est.point(9) - 1.0).abs() < 0.1, "est {}", est.point(9));
    }
}
