//! Range, prefix and quantile queries under Local Differential Privacy —
//! the primary contribution of *"Answering Range Queries Under Local
//! Differential Privacy"* (SIGMOD 2019).
//!
//! Three mechanism families estimate `R[a,b]`, the fraction of a population
//! of `N` users whose private value falls in a closed interval, from one
//! ε-LDP report per user:
//!
//! * [`flat`] — the baseline: a frequency oracle over the whole domain,
//!   summing point estimates. Variance grows linearly with range length
//!   (Fact 1).
//! * [`hh`] — hierarchical histograms `HH_B`: users sample one level of a
//!   complete B-ary tree and release their node one-hot vector through a
//!   frequency oracle; ranges decompose into `O(B·log_B r)` nodes, with
//!   variance `O(log² D)·VF` (Theorem 4.3). Constrained inference
//!   ([`hh::consistency`]) sharpens the constants (Lemma 4.6).
//! * [`haar`] — `HaarHRR`: users release one rescaled ±1 Haar coefficient
//!   via Hadamard randomized response; variance `log2(D)²·VF/2` (Eq. 3)
//!   with consistency by design.
//!
//! On top of any mechanism's [`RangeEstimate`]: prefix queries (§4.7),
//! quantile search ([`quantile()`]), and the two-dimensional extension
//! ([`multidim`], §6). The [`theory`] module carries the paper's
//! closed-form bounds for cross-checking; every server also offers an
//! `absorb_population` fast path — the statistically-equivalent simulation
//! the paper itself uses to evaluate populations of `N = 2^26`.

pub mod binomial_support;
pub mod config;
pub mod error;
pub mod estimate;
pub mod flat;
pub mod haar;
pub mod hh;
pub mod mergeable;
pub mod multidim;
pub mod persist;
pub mod postprocess;
pub mod quantile;
pub mod theory;

pub use config::{FlatConfig, HaarConfig, HhConfig, RangeMechanism};
pub use error::RangeError;
pub use estimate::{FrequencyEstimate, RangeEstimate};
pub use flat::{FlatClient, FlatServer};
pub use haar::calibration::{HaarOueClient, HaarOueReport, HaarOueServer};
pub use haar::{HaarEstimate, HaarHrrClient, HaarHrrReport, HaarHrrServer};
pub use hh::split::{HhSplitClient, HhSplitReport, HhSplitServer};
pub use hh::{HhClient, HhEstimate, HhReport, HhServer};
pub use mergeable::{MergeableServer, SubtractableServer};
pub use multidim::{Hh2dClient, Hh2dConfig, Hh2dEstimate, Hh2dReport, Hh2dServer};
pub use persist::{PersistableServer, StateReader};
pub use postprocess::{isotonic_cdf, isotonic_regression, project_nonnegative_simplex};
pub use quantile::{deciles, quantile, true_quantile};

// Re-export the privacy parameter so downstream users need only this crate.
pub use ldp_freq_oracle::{Epsilon, FrequencyOracle};
