//! Constrained inference ("CI"): least-squares post-processing of the
//! hierarchical estimate tree (paper §4.5, after Hay et al.).
//!
//! The raw tree is redundant — a node and its children independently
//! estimate the same mass — and noisy, so `parent ≠ Σ children`. Because
//! all per-node estimates share the same variance, the Gauss–Markov theorem
//! makes the least-squares solution the best linear unbiased estimator; it
//! reduces per-node variance by at least `B/(B+1)` (Lemma 4.6) and enforces
//! exact consistency, so every way of assembling a range answer agrees.
//!
//! The efficient two-stage linear-time procedure:
//!
//! 1. **Weighted averaging** (bottom-up): each internal node's estimate is
//!    blended with the sum of its children's adjusted estimates,
//!    `f̄(v) = (B^i − B^{i−1})/(B^i − 1)·f(v) + (B^{i−1} − 1)/(B^i − 1)·Σ f̄(u)`,
//!    where `i` is the number of tree levels in `v`'s subtree (leaves have
//!    `i = 1` and are left unchanged).
//! 2. **Mean consistency** (top-down): the residual between a parent and
//!    its children's total is split equally among the children,
//!    `f̂(v) = f̄(v) + (f̂(parent) − Σ_siblings f̄)/B`.
//!
//! One departure from the centralized literature: the root is not an
//! observed quantity here — users sample only levels 1..h, and the root
//! *fraction* is 1 by definition — so the root is pinned to exactly 1 and
//! every level is thereby renormalized to total mass 1 (the reason the
//! paper works "with the distribution of frequencies across each level,
//! rather than counts").

use ldp_transforms::FlatTree;

/// Applies the two-stage least-squares post-processing in place.
///
/// Expects per-level fraction estimates (each level summing to ≈ 1). Runs
/// in `O(total nodes)` — "the cost of this post-processing is relatively
/// low for the aggregator".
pub fn enforce_consistency(tree: &mut FlatTree<f64>) {
    let shape = tree.shape();
    let b = shape.fanout() as f64;
    let h = shape.height();

    // Stage 1: bottom-up weighted averaging over internal, non-root nodes.
    for d in (1..h).rev() {
        let subtree_levels = i32::try_from(h - d + 1).expect("height fits i32");
        let bi = b.powi(subtree_levels);
        let bim1 = b.powi(subtree_levels - 1);
        let w_self = (bi - bim1) / (bi - 1.0);
        let w_children = (bim1 - 1.0) / (bi - 1.0);
        for idx in 0..shape.nodes_at_depth(d) {
            let child_sum: f64 = shape.children(d, idx).map(|c| *tree.get(d + 1, c)).sum();
            let v = tree.get_mut(d, idx);
            *v = w_self * *v + w_children * child_sum;
        }
    }

    // The root holds the whole population by definition.
    *tree.get_mut(0, 0) = 1.0;

    // Stage 2: top-down mean consistency.
    for d in 0..h {
        for parent in 0..shape.nodes_at_depth(d) {
            let parent_val = *tree.get(d, parent);
            let child_sum: f64 = shape.children(d, parent).map(|c| *tree.get(d + 1, c)).sum();
            let adjust = (parent_val - child_sum) / b;
            for c in shape.children(d, parent) {
                *tree.get_mut(d + 1, c) += adjust;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_transforms::CompleteTree;

    fn max_violation(tree: &FlatTree<f64>) -> f64 {
        let shape = tree.shape();
        let mut worst = 0.0f64;
        for d in 0..shape.height() {
            for idx in 0..shape.nodes_at_depth(d) {
                let child_sum: f64 = shape.children(d, idx).map(|c| *tree.get(d + 1, c)).sum();
                worst = worst.max((tree.get(d, idx) - child_sum).abs());
            }
        }
        worst
    }

    fn noisy_tree(shape: CompleteTree, seed: u64) -> FlatTree<f64> {
        // Deterministic pseudo-noise around a uniform distribution, with
        // each level summing to ~1.
        let mut tree = FlatTree::new(shape);
        *tree.get_mut(0, 0) = 1.0;
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.01
        };
        for d in 1..=shape.height() {
            let n = shape.nodes_at_depth(d);
            for idx in 0..n {
                *tree.get_mut(d, idx) = 1.0 / n as f64 + next();
            }
        }
        tree
    }

    #[test]
    fn enforces_exact_consistency() {
        for (fanout, domain) in [(2usize, 64usize), (4, 256), (8, 64), (16, 256)] {
            let shape = CompleteTree::new(fanout, domain);
            let mut tree = noisy_tree(shape, 42);
            assert!(max_violation(&tree) > 1e-6);
            enforce_consistency(&mut tree);
            assert!(
                max_violation(&tree) < 1e-10,
                "B={fanout}, D={domain}: violation {}",
                max_violation(&tree)
            );
            assert!((tree.get(0, 0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn idempotent() {
        let shape = CompleteTree::new(4, 256);
        let mut tree = noisy_tree(shape, 7);
        enforce_consistency(&mut tree);
        let once = tree.clone();
        enforce_consistency(&mut tree);
        for d in 0..=shape.height() {
            for (a, b) in tree.level(d).iter().zip(once.level(d).iter()) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn already_consistent_tree_is_unchanged() {
        // Exact subtree sums: CI must be a no-op (it is the least-squares
        // projection, and the tree is already in the feasible subspace).
        let shape = CompleteTree::new(2, 16);
        let leaves: Vec<f64> = (0..16).map(|i| (i + 1) as f64 / 136.0).collect();
        let mut tree = FlatTree::from_leaf_sums(shape, &leaves);
        let before = tree.clone();
        enforce_consistency(&mut tree);
        for d in 0..=shape.height() {
            for (a, b) in tree.level(d).iter().zip(before.level(d).iter()) {
                assert!((a - b).abs() < 1e-10, "depth {d}");
            }
        }
    }

    #[test]
    fn preserves_unbiasedness_of_level_totals() {
        // Mean consistency with root = 1 forces every level to sum to 1.
        let shape = CompleteTree::new(4, 64);
        let mut tree = noisy_tree(shape, 99);
        enforce_consistency(&mut tree);
        for d in 0..=shape.height() {
            let s: f64 = tree.level(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "depth {d}: {s}");
        }
    }

    #[test]
    fn single_level_tree_averages_toward_root() {
        // B = D: one level below the root. Stage 1 has no internal
        // non-root nodes; stage 2 just redistributes the deficit equally.
        let shape = CompleteTree::new(4, 4);
        let mut tree = FlatTree::new(shape);
        *tree.get_mut(0, 0) = 1.0;
        for (i, v) in [0.3, 0.3, 0.3, 0.3].iter().enumerate() {
            *tree.get_mut(1, i) = *v;
        }
        enforce_consistency(&mut tree);
        for i in 0..4 {
            assert!((tree.get(1, i) - 0.25).abs() < 1e-12);
        }
    }
}
