//! Hierarchical Histograms (`HH_B`) — paper §4.3–4.5.
//!
//! The domain is organized as a complete B-ary tree (the B-adic
//! decomposition of Fact 2). Each user arranges her input as the root-to-
//! leaf path of weight 1 (Figure 2), samples **one** level uniformly — the
//! variance-optimal choice, Lemma 4.4, and the key departure from the
//! centralized model, which splits the budget instead — and releases her
//! one-hot node vector at that level through a frequency oracle `F`.
//!
//! The aggregator reconstructs per-level *fraction* histograms and answers
//! a range query by summing the ≤ `2(B−1)` nodes per level of the range's
//! B-adic decomposition (Fact 3). Optional constrained inference
//! ([`consistency`]) finds the least-squares tree, which both reduces
//! variance by at least `B/(B+1)` (Lemma 4.6) and makes every evaluation
//! strategy agree.

pub mod consistency;
pub mod split;

use rand::{Rng, RngCore};

use ldp_freq_oracle::{AnyOracle, AnyReport, PointOracle};
use ldp_transforms::{decompose_range, CompleteTree, FlatTree};

use crate::binomial_support::{scatter_item_over_levels, scatter_item_over_weighted_levels};
use crate::config::HhConfig;
use crate::error::RangeError;
use crate::estimate::{FrequencyEstimate, RangeEstimate};

/// Validates and normalizes per-level sampling weights (length `h`, all
/// positive).
fn normalize_level_weights(weights: &[f64], height: u32) -> Result<Vec<f64>, RangeError> {
    if weights.len() != height as usize || weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
        return Err(RangeError::ReportShapeMismatch);
    }
    let total: f64 = weights.iter().sum();
    Ok(weights.iter().map(|w| w / total).collect())
}

/// One user's `HH_B` report: the sampled level and the perturbed one-hot
/// node vector at that level.
#[derive(Debug, Clone)]
pub struct HhReport {
    depth: u32,
    inner: AnyReport,
}

impl HhReport {
    /// Tree depth the user reported at (1 = children of the root, `h` =
    /// leaves; the paper's level `l` counts the other way: `l = h − d + 1`).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The perturbed one-hot node vector (wire encoding).
    #[must_use]
    pub fn inner(&self) -> &AnyReport {
        &self.inner
    }

    /// Rebuilds a report from its transmitted parts (wire decoding).
    #[must_use]
    pub fn from_parts(depth: u32, inner: AnyReport) -> Self {
        Self { depth, inner }
    }
}

/// Client side of `HH_B`.
///
/// Holds one (stateless) oracle encoder per tree depth; `report` is a pure
/// function of the user's value and randomness.
#[derive(Debug, Clone)]
pub struct HhClient {
    config: HhConfig,
    shape: CompleteTree,
    encoders: Vec<AnyOracle>,
    /// Probability of sampling each depth 1..=h; uniform by default
    /// (Lemma 4.4 proves uniform minimizes the variance bound — the
    /// non-uniform constructor exists for ablating exactly that claim).
    level_probs: Vec<f64>,
}

fn build_level_oracles(config: &HhConfig) -> Result<Vec<AnyOracle>, RangeError> {
    let shape = config.shape();
    (1..=config.height)
        .map(|d| {
            AnyOracle::new(config.oracle, shape.nodes_at_depth(d), config.epsilon)
                .map_err(RangeError::from)
        })
        .collect()
}

impl HhClient {
    /// Builds the client from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates per-level oracle construction failures.
    pub fn new(config: HhConfig) -> Result<Self, RangeError> {
        let encoders = build_level_oracles(&config)?;
        let shape = config.shape();
        let level_probs = vec![1.0 / f64::from(config.height); config.height as usize];
        Ok(Self {
            config,
            shape,
            encoders,
            level_probs,
        })
    }

    /// Builds a client with a *non-uniform* level-sampling distribution
    /// (`weights[d-1]` ∝ probability of depth `d`) — an ablation hook for
    /// Lemma 4.4.
    ///
    /// # Errors
    ///
    /// Rejects weight vectors of the wrong length or with non-positive
    /// entries.
    pub fn with_level_weights(config: HhConfig, weights: &[f64]) -> Result<Self, RangeError> {
        let level_probs = normalize_level_weights(weights, config.height)?;
        let encoders = build_level_oracles(&config)?;
        let shape = config.shape();
        Ok(Self {
            config,
            shape,
            encoders,
            level_probs,
        })
    }

    /// Perturbs one user's value: samples a level (uniformly by default)
    /// and releases the one-hot node vector at that level through the
    /// configured oracle.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is outside the domain.
    pub fn report(&self, value: usize, rng: &mut dyn RngCore) -> Result<HhReport, RangeError> {
        if value >= self.config.domain {
            return Err(RangeError::Oracle(
                ldp_freq_oracle::OracleError::ValueOutOfDomain {
                    value,
                    domain: self.config.domain,
                },
            ));
        }
        let u: f64 = rng.random();
        let mut acc = 0.0;
        let mut depth = self.config.height;
        for (i, &p) in self.level_probs.iter().enumerate() {
            acc += p;
            if u < acc {
                depth = i as u32 + 1;
                break;
            }
        }
        let node = self.shape.ancestor_at_depth(value, depth);
        let inner = self.encoders[depth as usize - 1].encode(node, rng)?;
        Ok(HhReport { depth, inner })
    }
}

/// Aggregator side of `HH_B`.
#[derive(Debug, Clone)]
pub struct HhServer {
    config: HhConfig,
    shape: CompleteTree,
    levels: Vec<AnyOracle>,
    level_probs: Vec<f64>,
}

impl HhServer {
    /// Builds the server from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates per-level oracle construction failures.
    pub fn new(config: HhConfig) -> Result<Self, RangeError> {
        let levels = build_level_oracles(&config)?;
        let shape = config.shape();
        let level_probs = vec![1.0 / f64::from(config.height); config.height as usize];
        Ok(Self {
            config,
            shape,
            levels,
            level_probs,
        })
    }

    /// Builds a server whose population simulation scatters users over
    /// levels with the given (normalized) weights — must match the
    /// clients' distribution. Per-level estimates remain unbiased for any
    /// weights; only the variance allocation changes (Lemma 4.4 ablation).
    ///
    /// # Errors
    ///
    /// Rejects invalid weight vectors.
    pub fn with_level_weights(config: HhConfig, weights: &[f64]) -> Result<Self, RangeError> {
        let level_probs = normalize_level_weights(weights, config.height)?;
        let levels = build_level_oracles(&config)?;
        let shape = config.shape();
        Ok(Self {
            config,
            shape,
            levels,
            level_probs,
        })
    }

    /// The configuration this server was built from.
    #[must_use]
    pub fn config(&self) -> &HhConfig {
        &self.config
    }

    /// The per-level oracle accumulators (persistence codec access).
    pub(crate) fn oracles(&self) -> &[AnyOracle] {
        &self.levels
    }

    /// Mutable per-level accumulators (persistence codec access).
    pub(crate) fn oracles_mut(&mut self) -> &mut [AnyOracle] {
        &mut self.levels
    }

    /// Merges another shard's per-level accumulators into this one
    /// (distributed aggregation over disjoint user cohorts).
    ///
    /// # Errors
    ///
    /// Rejects shards with a different tree shape or oracle.
    pub fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain || other.config.fanout != self.config.fanout {
            return Err(RangeError::ReportShapeMismatch);
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Removes a previously merged shard's per-level accumulators — the
    /// exact inverse of [`HhServer::merge`]. Staged against a copy so an
    /// underflow at any level leaves this server untouched.
    ///
    /// # Errors
    ///
    /// Rejects shards of mismatched shape, or state that was never merged
    /// into this one.
    pub fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain || other.config.fanout != self.config.fanout {
            return Err(RangeError::ReportShapeMismatch);
        }
        let mut staged = self.levels.clone();
        for (a, b) in staged.iter_mut().zip(&other.levels) {
            a.subtract(b)?;
        }
        self.levels = staged;
        Ok(())
    }

    /// Accumulates one user report at its sampled level.
    ///
    /// # Errors
    ///
    /// Rejects reports whose depth or inner shape does not match.
    pub fn absorb(&mut self, report: &HhReport) -> Result<(), RangeError> {
        if report.depth == 0 || report.depth > self.config.height {
            return Err(RangeError::ReportShapeMismatch);
        }
        Ok(self.levels[report.depth as usize - 1].absorb(&report.inner)?)
    }

    /// Absorbs a whole cohort from its true histogram: every user samples
    /// a level and reports there, simulated exactly at population scale
    /// (per-item multinomial scatter over levels, then the level oracle's
    /// aggregate simulation).
    ///
    /// # Errors
    ///
    /// Rejects histograms whose length differs from the domain.
    pub fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), RangeError> {
        if true_counts.len() != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        let h = self.config.height as usize;
        let uniform = self
            .level_probs
            .iter()
            .all(|&p| (p - self.level_probs[0]).abs() < 1e-15);
        let mut level_counts: Vec<Vec<u64>> = (1..=self.config.height)
            .map(|d| vec![0; self.shape.nodes_at_depth(d)])
            .collect();
        let sink = |z: usize, level_idx: usize, count: u64| {
            let depth = level_idx as u32 + 1;
            let node = self.shape.ancestor_at_depth(z, depth);
            level_counts[level_idx][node] += count;
        };
        if uniform {
            scatter_item_over_levels(true_counts, h, rng, sink);
        } else {
            scatter_item_over_weighted_levels(true_counts, &self.level_probs, rng, sink);
        }
        for (oracle, counts) in self.levels.iter_mut().zip(level_counts.iter()) {
            oracle.absorb_population(counts, rng)?;
        }
        Ok(())
    }

    /// Total reports across all levels.
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.levels.iter().map(PointOracle::num_reports).sum()
    }

    /// Reports collected at one depth (1..=h).
    #[must_use]
    pub fn reports_at_depth(&self, depth: u32) -> u64 {
        self.levels[depth as usize - 1].num_reports()
    }

    /// Reconstructs the raw (inconsistent) estimate tree: per-level
    /// fraction histograms, root pinned at 1.
    #[must_use]
    pub fn estimate(&self) -> HhEstimate {
        let mut tree = FlatTree::new(self.shape);
        *tree.get_mut(0, 0) = 1.0;
        for (i, oracle) in self.levels.iter().enumerate() {
            let depth = i as u32 + 1;
            tree.level_mut(depth).copy_from_slice(&oracle.estimate());
        }
        HhEstimate {
            tree,
            consistent: false,
        }
    }

    /// Reconstructs the estimate tree and applies constrained inference
    /// (§4.5) — the paper's `CI` suffix.
    #[must_use]
    pub fn estimate_consistent(&self) -> HhEstimate {
        let mut est = self.estimate();
        consistency::enforce_consistency(&mut est.tree);
        est.consistent = true;
        est
    }
}

/// A reconstructed `HH_B` tree of per-node fraction estimates.
#[derive(Debug, Clone)]
pub struct HhEstimate {
    tree: FlatTree<f64>,
    consistent: bool,
}

impl HhEstimate {
    /// Whether constrained inference has been applied.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The underlying estimate tree.
    #[must_use]
    pub fn tree(&self) -> &FlatTree<f64> {
        &self.tree
    }

    /// Collapses to a per-item frequency vector with `O(1)` range queries.
    ///
    /// For a consistent tree this is exactly answer-preserving ("it does
    /// not matter how we try to answer a range query — we will obtain the
    /// same result", §4.5). For an inconsistent tree the collapsed answers
    /// generally *differ* from [`HhEstimate::range`], which uses the
    /// B-adic decomposition; prefer `range` there.
    #[must_use]
    pub fn to_frequency_estimate(&self) -> FrequencyEstimate {
        FrequencyEstimate::new(self.tree.leaves().to_vec())
    }

    /// Maximum over nodes of |node − Σ children| — zero (up to floating
    /// point) iff the tree is consistent.
    #[must_use]
    pub fn consistency_violation(&self) -> f64 {
        let shape = self.tree.shape();
        let mut worst = 0.0f64;
        for d in 0..shape.height() {
            for idx in 0..shape.nodes_at_depth(d) {
                let child_sum: f64 = shape
                    .children(d, idx)
                    .map(|c| *self.tree.get(d + 1, c))
                    .sum();
                worst = worst.max((self.tree.get(d, idx) - child_sum).abs());
            }
        }
        worst
    }
}

impl RangeEstimate for HhEstimate {
    fn domain(&self) -> usize {
        self.tree.shape().domain()
    }

    fn range(&self, a: usize, b: usize) -> f64 {
        let shape = self.tree.shape();
        decompose_range(&shape, a, b)
            .iter()
            .map(|n| *self.tree.get(n.depth, n.index))
            .sum()
    }

    fn point(&self, z: usize) -> f64 {
        *self.tree.get(self.tree.shape().height(), z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_freq_oracle::{Epsilon, FrequencyOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_counts(domain: usize, per_item: u64) -> Vec<u64> {
        vec![per_item; domain]
    }

    #[test]
    fn report_depths_are_uniform() {
        let config = HhConfig::new(256, 4, Epsilon::new(1.1)).unwrap();
        let client = HhClient::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        let mut per_depth = [0u32; 5];
        for _ in 0..8_000 {
            let r = client.report(100, &mut rng).unwrap();
            per_depth[r.depth() as usize] += 1;
        }
        assert_eq!(per_depth[0], 0);
        for (d, &count) in per_depth.iter().enumerate().skip(1) {
            let frac = f64::from(count) / 8_000.0;
            assert!((frac - 0.25).abs() < 0.03, "depth {d}: {frac}");
        }
    }

    #[test]
    fn per_user_end_to_end() {
        let eps = Epsilon::from_exp(3.0);
        let config = HhConfig::new(64, 2, eps).unwrap();
        let client = HhClient::new(config.clone()).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let n = 60_000usize;
        for i in 0..n {
            // Population concentrated on [16, 47].
            let v = 16 + (i % 32);
            let r = client.report(v, &mut rng).unwrap();
            server.absorb(&r).unwrap();
        }
        assert_eq!(server.num_reports(), n as u64);
        let est = server.estimate_consistent();
        assert!(
            (est.range(16, 47) - 1.0).abs() < 0.1,
            "got {}",
            est.range(16, 47)
        );
        assert!(est.range(48, 63).abs() < 0.1);
    }

    #[test]
    fn population_path_is_unbiased() {
        let eps = Epsilon::new(1.1);
        let config = HhConfig::new(256, 4, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(73);
        let counts = uniform_counts(256, 1_000);
        let mut mean_range = 0.0;
        let reps = 20;
        for _ in 0..reps {
            let mut server = HhServer::new(config.clone()).unwrap();
            server.absorb_population(&counts, &mut rng).unwrap();
            mean_range += server.estimate().range(64, 191) / f64::from(reps);
        }
        assert!((mean_range - 0.5).abs() < 0.02, "mean {mean_range}");
    }

    #[test]
    fn consistency_zeroes_violations_and_preserves_answer_paths() {
        let eps = Epsilon::new(1.1);
        let config = HhConfig::new(256, 4, eps).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(74);
        server
            .absorb_population(&uniform_counts(256, 500), &mut rng)
            .unwrap();

        let raw = server.estimate();
        assert!(!raw.is_consistent());
        assert!(
            raw.consistency_violation() > 1e-6,
            "noise should break consistency"
        );

        let ci = server.estimate_consistent();
        assert!(ci.is_consistent());
        assert!(ci.consistency_violation() < 1e-9);

        // After CI, decomposition answers equal leaf prefix-sum answers.
        let collapsed = ci.to_frequency_estimate();
        for (a, b) in [(0, 255), (3, 200), (17, 17), (128, 191)] {
            assert!(
                (ci.range(a, b) - collapsed.range(a, b)).abs() < 1e-9,
                "range [{a},{b}] mismatch"
            );
        }
    }

    #[test]
    fn consistent_levels_sum_to_one() {
        let eps = Epsilon::new(0.8);
        let config = HhConfig::new(64, 8, eps).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(75);
        server
            .absorb_population(&uniform_counts(64, 2_000), &mut rng)
            .unwrap();
        let ci = server.estimate_consistent();
        let shape = ci.tree().shape();
        for d in 0..=shape.height() {
            let s: f64 = ci.tree().level(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "depth {d} sums to {s}");
        }
    }

    #[test]
    fn hrr_level_oracle_variant() {
        let eps = Epsilon::new(1.1);
        let config = HhConfig::with_oracle(256, 4, eps, FrequencyOracle::Hrr).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(76);
        let mut counts = vec![0u64; 256];
        for (z, c) in counts.iter_mut().enumerate() {
            *c = if z < 128 { 1_500 } else { 500 };
        }
        server.absorb_population(&counts, &mut rng).unwrap();
        let est = server.estimate_consistent();
        assert!(
            (est.range(0, 127) - 0.75).abs() < 0.05,
            "got {}",
            est.range(0, 127)
        );
    }

    #[test]
    fn rejects_wrong_population_length() {
        let config = HhConfig::new(64, 2, Epsilon::new(1.0)).unwrap();
        let mut server = HhServer::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        assert!(matches!(
            server.absorb_population(&[1, 2, 3], &mut rng),
            Err(RangeError::ReportShapeMismatch)
        ));
    }

    #[test]
    fn rejects_out_of_domain_value() {
        let config = HhConfig::new(64, 2, Epsilon::new(1.0)).unwrap();
        let client = HhClient::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(78);
        assert!(client.report(64, &mut rng).is_err());
    }
}
