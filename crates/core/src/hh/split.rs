//! Budget-splitting ablation: the centralized-style alternative to level
//! sampling.
//!
//! §4.4's "key difference from the centralized case": centrally, "the norm
//! is to split the 'error budget' ε into h pieces, and report the count of
//! users in each node; in contrast, we have each user sample a single
//! level … splitting would lead to an error proportional to h², whereas
//! sampling gives an error which is at most proportional to h."
//!
//! This module implements the splitting strategy *locally* — each user
//! releases her node vector at **every** level, each perturbed with budget
//! `ε/h` (ε-LDP overall by sequential composition) — so the claim can be
//! measured head-to-head (see the `ablations` bench and the integration
//! tests): with `VF(ε) ≈ 4/ε²` for small ε, each split level carries
//! variance `≈ 4h²/(Nε²)`, an `h²` total versus sampling's
//! `h·VF(ε) ≈ 4h/(Nε²)`.

use rand::RngCore;

use ldp_freq_oracle::{AnyOracle, AnyReport, PointOracle};
use ldp_transforms::{CompleteTree, FlatTree};

use crate::config::HhConfig;
use crate::error::RangeError;
use crate::hh::{consistency, HhEstimate};

/// One user's split-budget report: a perturbed node vector for *every*
/// level of the tree.
#[derive(Debug, Clone)]
pub struct HhSplitReport {
    layers: Vec<AnyReport>,
}

impl HhSplitReport {
    /// Number of levels reported (always `h`).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.layers.len()
    }

    /// The per-level perturbed node vectors, shallowest level first.
    #[must_use]
    pub fn layers(&self) -> &[AnyReport] {
        &self.layers
    }

    /// Rebuilds a report from transmitted per-level layers (wire decoding).
    #[must_use]
    pub fn from_layers(layers: Vec<AnyReport>) -> Self {
        Self { layers }
    }
}

fn build_split_oracles(config: &HhConfig) -> Result<Vec<AnyOracle>, RangeError> {
    let shape = config.shape();
    let eps_per_level = config.epsilon.split(config.height);
    (1..=config.height)
        .map(|d| {
            AnyOracle::new(config.oracle, shape.nodes_at_depth(d), eps_per_level)
                .map_err(RangeError::from)
        })
        .collect()
}

/// Client side of the splitting ablation.
#[derive(Debug, Clone)]
pub struct HhSplitClient {
    config: HhConfig,
    shape: CompleteTree,
    encoders: Vec<AnyOracle>,
}

impl HhSplitClient {
    /// Builds the client; each level encoder carries `ε/h`.
    ///
    /// # Errors
    ///
    /// Propagates per-level oracle construction failures.
    pub fn new(config: HhConfig) -> Result<Self, RangeError> {
        let encoders = build_split_oracles(&config)?;
        let shape = config.shape();
        Ok(Self {
            config,
            shape,
            encoders,
        })
    }

    /// Perturbs one user's value at every level.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is outside the domain.
    pub fn report(&self, value: usize, rng: &mut dyn RngCore) -> Result<HhSplitReport, RangeError> {
        if value >= self.config.domain {
            return Err(RangeError::Oracle(
                ldp_freq_oracle::OracleError::ValueOutOfDomain {
                    value,
                    domain: self.config.domain,
                },
            ));
        }
        let layers = (1..=self.config.height)
            .map(|d| {
                let node = self.shape.ancestor_at_depth(value, d);
                self.encoders[d as usize - 1]
                    .encode(node, rng)
                    .map_err(RangeError::from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HhSplitReport { layers })
    }
}

/// Aggregator side of the splitting ablation.
#[derive(Debug, Clone)]
pub struct HhSplitServer {
    config: HhConfig,
    shape: CompleteTree,
    levels: Vec<AnyOracle>,
}

impl HhSplitServer {
    /// Builds the server.
    ///
    /// # Errors
    ///
    /// Propagates per-level oracle construction failures.
    pub fn new(config: HhConfig) -> Result<Self, RangeError> {
        let levels = build_split_oracles(&config)?;
        let shape = config.shape();
        Ok(Self {
            config,
            shape,
            levels,
        })
    }

    /// The per-level oracle accumulators (persistence codec access).
    pub(crate) fn oracles(&self) -> &[AnyOracle] {
        &self.levels
    }

    /// Mutable per-level accumulators (persistence codec access).
    pub(crate) fn oracles_mut(&mut self) -> &mut [AnyOracle] {
        &mut self.levels
    }

    /// Merges another shard's per-level accumulators into this one
    /// (distributed aggregation over disjoint user cohorts).
    ///
    /// # Errors
    ///
    /// Rejects shards with a different tree shape or oracle.
    pub fn merge(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain || other.config.fanout != self.config.fanout {
            return Err(RangeError::ReportShapeMismatch);
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Removes a previously merged shard's per-level accumulators — the
    /// exact inverse of [`HhSplitServer::merge`]. Staged against a copy so
    /// an underflow at any level leaves this server untouched.
    ///
    /// # Errors
    ///
    /// Rejects shards of mismatched shape, or state that was never merged
    /// into this one.
    pub fn subtract(&mut self, other: &Self) -> Result<(), RangeError> {
        if other.config.domain != self.config.domain || other.config.fanout != self.config.fanout {
            return Err(RangeError::ReportShapeMismatch);
        }
        let mut staged = self.levels.clone();
        for (a, b) in staged.iter_mut().zip(&other.levels) {
            a.subtract(b)?;
        }
        self.levels = staged;
        Ok(())
    }

    /// Accumulates one user's multi-level report.
    ///
    /// # Errors
    ///
    /// Rejects reports with the wrong number of layers or any layer of the
    /// wrong shape — validated up front, before any level accumulator is
    /// touched, so a rejected report never leaves partially absorbed state
    /// (a report counted at some levels but not others would corrupt the
    /// per-level normalization and break exact shard merging).
    pub fn absorb(&mut self, report: &HhSplitReport) -> Result<(), RangeError> {
        if report.layers.len() != self.config.height as usize {
            return Err(RangeError::ReportShapeMismatch);
        }
        for (oracle, layer) in self.levels.iter().zip(&report.layers) {
            oracle.validate(layer)?;
        }
        for (oracle, layer) in self.levels.iter_mut().zip(&report.layers) {
            oracle.absorb(layer)?;
        }
        Ok(())
    }

    /// Absorbs a cohort: every user contributes to every level, so each
    /// level oracle sees the *exact* node histogram (no level scatter).
    ///
    /// # Errors
    ///
    /// Rejects histograms whose length differs from the domain.
    pub fn absorb_population(
        &mut self,
        true_counts: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<(), RangeError> {
        if true_counts.len() != self.config.domain {
            return Err(RangeError::ReportShapeMismatch);
        }
        for d in 1..=self.config.height {
            let mut node_counts = vec![0u64; self.shape.nodes_at_depth(d)];
            for (z, &c) in true_counts.iter().enumerate() {
                node_counts[self.shape.ancestor_at_depth(z, d)] += c;
            }
            self.levels[d as usize - 1].absorb_population(&node_counts, rng)?;
        }
        Ok(())
    }

    /// Reports absorbed (each report spans all levels, so this equals the
    /// user count).
    #[must_use]
    pub fn num_reports(&self) -> u64 {
        self.levels.first().map_or(0, PointOracle::num_reports)
    }

    /// Reconstructs the (inconsistent) estimate tree.
    #[must_use]
    pub fn estimate(&self) -> HhEstimate {
        let mut tree = FlatTree::new(self.shape);
        *tree.get_mut(0, 0) = 1.0;
        for (i, oracle) in self.levels.iter().enumerate() {
            tree.level_mut(i as u32 + 1)
                .copy_from_slice(&oracle.estimate());
        }
        HhEstimate {
            tree,
            consistent: false,
        }
    }

    /// Reconstructs the estimate tree with constrained inference.
    #[must_use]
    pub fn estimate_consistent(&self) -> HhEstimate {
        let mut est = self.estimate();
        consistency::enforce_consistency(&mut est.tree);
        est.consistent = true;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::RangeEstimate;
    use crate::hh::HhServer;
    use ldp_freq_oracle::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn per_user_report_covers_all_levels() {
        let config = HhConfig::new(64, 2, Epsilon::new(1.1)).unwrap();
        let client = HhSplitClient::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(171);
        let r = client.report(10, &mut rng).unwrap();
        assert_eq!(r.num_levels(), 6);
    }

    #[test]
    fn split_estimates_are_unbiased() {
        let config = HhConfig::new(64, 4, Epsilon::new(1.1)).unwrap();
        let mut rng = StdRng::seed_from_u64(172);
        let counts = vec![500u64; 64];
        let mut mean = 0.0;
        let reps = 20;
        for _ in 0..reps {
            let mut server = HhSplitServer::new(config.clone()).unwrap();
            server.absorb_population(&counts, &mut rng).unwrap();
            mean += server.estimate().range(16, 47) / f64::from(reps);
        }
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn sampling_beats_splitting() {
        // The quantitative heart of §4.4: h² vs h error growth. At
        // D = 2^8, B = 2 (h = 8) the gap is pronounced.
        let eps = Epsilon::new(1.0);
        let config = HhConfig::new(256, 2, eps).unwrap();
        let counts = vec![400u64; 256];
        let ds_total: u64 = counts.iter().sum();
        assert!(ds_total > 0);
        let mut rng = StdRng::seed_from_u64(173);
        let reps = 12;
        let probe: Vec<(usize, usize)> = vec![(10, 100), (64, 191), (0, 255), (200, 230)];
        let truth: Vec<f64> = probe
            .iter()
            .map(|&(a, b)| (b - a + 1) as f64 / 256.0)
            .collect();

        let mse_of = |est: &dyn RangeEstimate| -> f64 {
            probe
                .iter()
                .zip(&truth)
                .map(|(&(a, b), &t)| (est.range(a, b) - t).powi(2))
                .sum::<f64>()
                / probe.len() as f64
        };

        let mut sampling_mse = 0.0;
        let mut splitting_mse = 0.0;
        for _ in 0..reps {
            let mut s = HhServer::new(config.clone()).unwrap();
            s.absorb_population(&counts, &mut rng).unwrap();
            sampling_mse += mse_of(&s.estimate_consistent());

            let mut p = HhSplitServer::new(config.clone()).unwrap();
            p.absorb_population(&counts, &mut rng).unwrap();
            splitting_mse += mse_of(&p.estimate_consistent());
        }
        assert!(
            splitting_mse > 2.0 * sampling_mse,
            "splitting {splitting_mse:.3e} should be well above sampling {sampling_mse:.3e}"
        );
    }

    #[test]
    fn poisoned_layer_leaves_no_partial_state() {
        // A report whose first layer is valid but whose second is not must
        // be rejected atomically: absorbing it cannot bump any level.
        let mut rng = StdRng::seed_from_u64(175);
        let config = HhConfig::new(16, 2, Epsilon::new(1.0)).unwrap();
        let client = HhSplitClient::new(config.clone()).unwrap();
        let mut server = HhSplitServer::new(config.clone()).unwrap();
        let good = client.report(3, &mut rng).unwrap();
        server.absorb(&good).unwrap();
        let before = server
            .estimate()
            .to_frequency_estimate()
            .frequencies()
            .to_vec();

        let mut layers = client.report(5, &mut rng).unwrap().layers().to_vec();
        // Replace the depth-2 layer with one from a mismatched (wider)
        // oracle — exactly what a hostile wire frame could carry.
        let alien = HhSplitClient::new(HhConfig::new(64, 2, Epsilon::new(1.0)).unwrap())
            .unwrap()
            .report(0, &mut rng)
            .unwrap();
        layers[1] = alien.layers()[3].clone();
        let poison = HhSplitReport::from_layers(layers);

        assert!(server.absorb(&poison).is_err());
        assert_eq!(server.num_reports(), 1, "poison report must not be counted");
        let after = server
            .estimate()
            .to_frequency_estimate()
            .frequencies()
            .to_vec();
        for (a, b) in before.iter().zip(&after) {
            assert!(
                a.to_bits() == b.to_bits(),
                "state changed by rejected report"
            );
        }
    }

    #[test]
    fn rejects_shape_mismatches() {
        let mut rng = StdRng::seed_from_u64(174);
        let c64 = HhConfig::new(64, 2, Epsilon::new(1.0)).unwrap();
        let c16 = HhConfig::new(16, 2, Epsilon::new(1.0)).unwrap();
        let client = HhSplitClient::new(c64).unwrap();
        let mut server = HhSplitServer::new(c16).unwrap();
        let r = client.report(3, &mut rng).unwrap();
        assert!(server.absorb(&r).is_err());
        assert!(server.absorb_population(&[1, 2], &mut rng).is_err());
    }
}
