//! Error type for mechanism configuration and protocol handling.

use std::fmt;

use ldp_freq_oracle::OracleError;

/// Errors raised when configuring or running a range-query mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeError {
    /// The domain size is not an exact power of the requested fanout.
    DomainNotPowerOfFanout {
        /// Configured domain size.
        domain: usize,
        /// Configured fanout.
        fanout: usize,
    },
    /// The domain must be a power of two (Haar / HRR-based mechanisms).
    DomainNotPowerOfTwo(usize),
    /// Fanout must be at least 2.
    FanoutTooSmall(usize),
    /// The domain must contain at least two items for range queries to be
    /// meaningful (and at least one level of the tree to exist).
    DomainTooSmall(usize),
    /// The chosen frequency oracle cannot operate at some tree level (e.g.
    /// HRR over a non-power-of-two level domain).
    Oracle(OracleError),
    /// A report was produced by a mechanism with a different shape.
    ReportShapeMismatch,
    /// Persisted server state could not be restored: the bytes are
    /// truncated, disagree with the prototype's configuration, or encode
    /// statistics no report sequence could have produced.
    CorruptState(&'static str),
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DomainNotPowerOfFanout { domain, fanout } => {
                write!(f, "domain {domain} is not a power of fanout {fanout}")
            }
            Self::DomainNotPowerOfTwo(d) => write!(f, "domain {d} must be a power of two"),
            Self::FanoutTooSmall(b) => write!(f, "fanout must be at least 2, got {b}"),
            Self::DomainTooSmall(d) => write!(f, "domain must have at least 2 items, got {d}"),
            Self::Oracle(e) => write!(f, "frequency oracle error: {e}"),
            Self::ReportShapeMismatch => write!(f, "report does not match mechanism shape"),
            Self::CorruptState(what) => write!(f, "corrupt persisted state: {what}"),
        }
    }
}

impl std::error::Error for RangeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Oracle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OracleError> for RangeError {
    fn from(e: OracleError) -> Self {
        Self::Oracle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(RangeError::DomainNotPowerOfFanout {
            domain: 100,
            fanout: 4
        }
        .to_string()
        .contains("100"));
        assert!(RangeError::DomainNotPowerOfTwo(6).to_string().contains('6'));
        assert!(RangeError::FanoutTooSmall(1).to_string().contains('1'));
        assert!(RangeError::DomainTooSmall(1)
            .to_string()
            .contains("at least 2"));
        assert!(RangeError::from(OracleError::EmptyDomain)
            .to_string()
            .contains("oracle"));
        assert!(RangeError::ReportShapeMismatch
            .to_string()
            .contains("shape"));
        assert!(RangeError::CorruptState("truncated")
            .to_string()
            .contains("corrupt"));
    }

    #[test]
    fn oracle_error_is_source() {
        use std::error::Error;
        let e = RangeError::from(OracleError::EmptyDomain);
        assert!(e.source().is_some());
    }
}
